"""Dining philosophers: synthesis of a non-free-choice, SM-coverable STG.

The shared-fork places make the net non-free-choice, the class the paper
handles through SM-covers (Table VII).  The example synthesizes the eating
controllers structurally, verifies them, and prints the per-signal logic.

Run with:  python examples/philosophers.py [philosophers]
"""

from __future__ import annotations

import sys

from repro.benchmarks.scalable import dining_philosophers
from repro.petri.properties import is_free_choice
from repro.petri.smcover import compute_sm_components, compute_sm_cover
from repro.synthesis import SynthesisOptions, synthesize
from repro.verify import verify_speed_independence


def main(philosophers: int = 3) -> None:
    stg = dining_philosophers(philosophers)
    print(stg.describe())
    print("free choice:", is_free_choice(stg.net))

    components = compute_sm_components(stg.net)
    cover = compute_sm_cover(stg.net, components)
    print(f"SM-components found: {len(components)}; SM-cover size: {len(cover)}")
    print()

    result = synthesize(stg, SynthesisOptions(level=5, assume_csc=True))
    print(result.circuit.describe())
    if len(stg.net.places) <= 60:
        report = verify_speed_independence(stg, result.circuit)
        print("speed independent:", report.speed_independent)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3)
