"""Dining philosophers: synthesis of a non-free-choice, SM-coverable STG.

The shared-fork places make the net non-free-choice, the class the paper
handles through SM-covers (Table VII).  The example synthesizes the eating
controllers through the unified API (the ``analyze`` artifact exposes the
SM-cover statistics), verifies them, and prints the per-signal logic.

Run with:  python examples/philosophers.py [philosophers]
"""

from __future__ import annotations

import sys

from repro.api import Pipeline, Spec, SynthesisOptions
from repro.benchmarks.scalable import dining_philosophers
from repro.petri.properties import is_free_choice


def main(philosophers: int = 3) -> None:
    spec = Spec.from_stg(
        dining_philosophers(philosophers), name=f"philosophers_{philosophers}"
    )
    print(spec.stg.describe())
    print("free choice:", is_free_choice(spec.stg.net))

    pipeline = Pipeline()
    options = SynthesisOptions(level=5, assume_csc=True)
    analysis = pipeline.analyze(spec, options)
    print(
        f"SM-components found: {analysis.sm_components}; "
        f"SM-cover size: {analysis.sm_cover_size}"
    )
    print()

    verify = spec.stg.net.num_places() <= 60
    report = pipeline.run(spec, options, verify=verify)
    print(report.describe())


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3)
