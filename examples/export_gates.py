"""Gate-level netlists: mapping, export, simulation, differential check.

The ``map`` stage of the pipeline lowers the behavioural circuit (set/reset
covers + C-latch semantics) into a typed gate netlist (:mod:`repro.gates`).
This example maps the Fig. 7 gated-latch benchmark with two different gate
libraries, exports the netlist in all four formats, and runs the
gate-level differential verification that checks the mapped gates against
the behaviour on every reachable state code.

Run with:  python examples/export_gates.py

The same flow is available without Python:

    python -m repro export glatch_3 --level 2 --format verilog
    python -m repro verify glatch_3 --level 2 --mapped
"""

from __future__ import annotations

from repro.api import Pipeline, Spec, SynthesisOptions
from repro.gates import EXPORT_FORMATS, export_netlist


def main() -> None:
    pipeline = Pipeline()
    spec = Spec.from_benchmark("glatch_3")
    options = SynthesisOptions(level=2)  # keep the set/reset C-latch

    for library in ("generic-cmos", "two-input-only", "latch-free"):
        mapping = pipeline.map(spec, options, library=library)
        stats = mapping.netlist.stats()
        print(
            f"{library:15s} {stats['gates']:3d} gates  "
            f"area {stats['area']:3d}  latches {stats['latches']}  "
            f"cells {stats['cells']}"
        )
    print()

    mapping = pipeline.map(spec, options)
    for fmt in EXPORT_FORMATS:
        text = export_netlist(mapping.netlist, fmt)
        print(f"--- {fmt} ({len(text.splitlines())} lines) ---")
    print()
    print(export_netlist(mapping.netlist, "verilog"))

    verdict = pipeline.verify_mapped(spec, options)
    print(
        f"mapped netlist equivalent to behaviour: {verdict.equivalent} "
        f"(checked {verdict.checked_codes} reachable state codes, "
        f"{verdict.gate_count} gates)"
    )


if __name__ == "__main__":
    main()
