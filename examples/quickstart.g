.model quickstart
.inputs req d1 d2
.outputs r1 r2 ack
.graph
req+ r1+ r2+
r1+ d1+
r2+ d2+
d1+ ack+
d2+ ack+
ack+ req-
req- r1- r2-
r1- d1-
r2- d2-
d1- ack-
d2- ack-
ack- req+
.marking { <ack-,req+> }
.end
