"""Quickstart: synthesize a speed-independent circuit from an STG.

The example parses a small handshake controller written in the astg ``.g``
format, runs the structural synthesis flow of Pastor et al., verifies the
result and prints the netlist and its cost.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.stg.parser import parse_g
from repro.synthesis import SynthesisOptions, map_circuit, synthesize
from repro.verify import verify_speed_independence

SPECIFICATION = """
.model quickstart
.inputs req d1 d2
.outputs r1 r2 ack
.graph
req+ r1+ r2+
r1+ d1+
r2+ d2+
d1+ ack+
d2+ ack+
ack+ req-
req- r1- r2-
r1- d1-
r2- d2-
d1- ack-
d2- ack-
ack- req+
.marking { <ack-,req+> }
.end
"""


def main() -> None:
    stg = parse_g(SPECIFICATION)
    print(stg.describe())
    print()

    result = synthesize(stg, SynthesisOptions(level=5))
    print(result.circuit.describe())
    print()

    report = verify_speed_independence(stg, result.circuit)
    print(
        f"speed independent: {report.speed_independent} "
        f"(checked {report.checked_markings} markings)"
    )

    mapped = map_circuit(result.circuit)
    print(f"mapped area: {mapped.total_area} (normalized transistor units)")
    for signal, area in sorted(mapped.per_signal_area.items()):
        print(f"  {signal}: {area}  cells: {', '.join(mapped.cells_used[signal])}")


if __name__ == "__main__":
    main()
