"""Quickstart: synthesize a speed-independent circuit from an STG.

The example parses a small handshake controller written in the astg ``.g``
format through the unified API (:mod:`repro.api`): one :class:`Spec`, one
:func:`run` call that drives the staged pipeline (analyze → refine →
synthesize → map → verify) and returns a typed report.

Run with:  python examples/quickstart.py

The same flow is available without Python:

    python -m repro synthesize examples/quickstart.g --map --verify
"""

from __future__ import annotations

from repro.api import Spec, run

SPECIFICATION = """
.model quickstart
.inputs req d1 d2
.outputs r1 r2 ack
.graph
req+ r1+ r2+
r1+ d1+
r2+ d2+
d1+ ack+
d2+ ack+
ack+ req-
req- r1- r2-
r1- d1-
r2- d2-
d1- ack-
d2- ack-
ack- req+
.marking { <ack-,req+> }
.end
"""


def main() -> None:
    spec = Spec.from_text(SPECIFICATION)
    print(spec.stg.describe())
    print(f"content hash: {spec.content_hash[:16]}…")
    print()

    report = run(spec, level=5, map_technology=True, verify=True, verify_mapped=True)
    print(report.describe())
    print()

    mapping = report.mapping
    for signal, area in sorted(mapping.per_signal_area.items()):
        print(f"  {signal}: {area}  cells: {', '.join(mapping.cells_used[signal])}")

    # the map stage constructs a real gate netlist (see examples/export_gates.py)
    print()
    print(report.netlist.describe())


if __name__ == "__main__":
    main()
