"""The durable workspace: store-backed pipelines, batches, and the daemon.

Demonstrates the PR 5 architecture end to end:

1. a store-backed pipeline persists every stage artifact;
2. a second pipeline (stands in for a second *process*) resolves the same
   spec purely from disk — zero computations;
3. a batch fans out over a process pool sharing the same store;
4. the same store served over HTTP through ``repro serve`` + ``Client``.

Run with:  python examples/workspace.py
"""

from __future__ import annotations

import tempfile
import threading

from repro.api import Client, EventLog, Pipeline, SynthesisOptions, synthesize_many
from repro.api.server import create_server


def main() -> None:
    store = tempfile.mkdtemp(prefix="repro-store-")
    options = SynthesisOptions(assume_csc=True)

    # 1. cold: compute and persist
    cold = Pipeline(store=store)
    report = cold.run("sequencer", options, map_technology=True, verify=True)
    print(f"cold run: {report.literals} literals, "
          f"computed stages: {sum(cold.stage_calls.values())}")

    # 2. warm: a fresh pipeline resolves everything from the store
    log = EventLog()
    warm = Pipeline(store=store, on_event=log)
    warm.run("sequencer", options, map_technology=True, verify=True)
    print(f"warm run: computed stages: {sum(warm.stage_calls.values())}, "
          f"store hits: {sum(warm.store_hits.values())}")
    for event in log.of_kind("stage"):
        print(f"  {event.describe()}")

    # 3. batch over a process pool, workers share the store
    reports = synthesize_many(
        ["fig1", "handshake_seq", "glatch_3"], options, jobs=2, store=store
    )
    print(f"batch: {[r.literals for r in reports]} literals")

    # 4. the same store behind the HTTP daemon
    server = create_server(port=0, store=store)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        client = Client(f"http://127.0.0.1:{server.server_address[1]}")
        result = client.synthesize("sequencer", assume_csc=True, verify=True)
        print(f"server: {result.report.literals} literals, cached: {result.cached}")
    finally:
        server.shutdown()
        server.server_close()

    print(f"store kept at {store}")


if __name__ == "__main__":
    main()
