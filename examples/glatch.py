"""The generalized C-latch of Fig. 7: structural analysis at work.

This example shows why the structural method scales: the STG of an n-input
C-latch closed through inverters has 2n+2-ish nodes but an exponential number
of markings, yet the cover-cube approximations of the excitation regions are
exact and the circuit falls out directly.  The analysis artifacts come from
the staged pipeline of :mod:`repro.api`.

Run with:  python examples/glatch.py [inputs]
"""

from __future__ import annotations

import sys

from repro.api import Pipeline, Spec, SynthesisOptions
from repro.benchmarks.figures import fig7_glatch_stg
from repro.petri.reachability import count_reachable_markings
from repro.structural.covercube import cover_cube_table


def main(inputs: int = 3) -> None:
    spec = Spec.from_stg(fig7_glatch_stg(inputs), name=f"glatch_{inputs}")
    stg = spec.stg
    print(stg.describe())
    markings = count_reachable_markings(stg.net)
    print(f"reachable markings: {markings}  (places: {stg.net.num_places()})")
    print()

    pipeline = Pipeline()
    analysis = pipeline.analyze(spec)
    approximation = analysis.approximation
    print("cover cubes of the marked regions (signal order:", stg.signal_names, ")")
    for place, cube in sorted(cover_cube_table(stg, approximation.place_cubes).items()):
        print(f"  {place:12s} {cube}")
    print()
    print("excitation-region cover of y+:", approximation.er_cover("y+").to_expression())
    print()

    report = pipeline.run(spec, SynthesisOptions(level=5), verify=True)
    print(report.describe())


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3)
