"""Scaling study: structural vs. state-based synthesis of Muller pipelines.

Reproduces the spirit of Tables VI/VII on one family through the unified
API: both backends run through the same :class:`repro.api.Pipeline`, the
state-based baseline enumerates the reachability graph (exponential in the
pipeline depth) while the structural flow stays polynomial.  The baseline is
skipped once the state space passes the enumeration limit.

Run with:  python examples/pipeline_scaling.py
"""

from __future__ import annotations

from repro.api import Pipeline, Spec, SynthesisOptions
from repro.benchmarks.scalable import muller_pipeline
from repro.experiments.reporting import format_table
from repro.petri.reachability import StateSpaceLimitExceeded

STAGES = (2, 4, 8, 16, 24)
BASELINE_LIMIT = 30_000


def main() -> None:
    rows = []
    for stages in STAGES:
        spec = Spec.from_stg(muller_pipeline(stages), name=f"muller_pipeline_{stages}")
        pipeline = Pipeline()
        structural = pipeline.run(spec, SynthesisOptions(level=3, assume_csc=True))

        try:
            baseline = pipeline.run(
                spec,
                SynthesisOptions(level=3),
                backend="statebased",
                max_markings=BASELINE_LIMIT,
            )
            baseline_seconds = f"{baseline.total_seconds:.3f}"
            markings = baseline.synthesis.markings
        except StateSpaceLimitExceeded:
            baseline_seconds = "blow-up"
            markings = f">{BASELINE_LIMIT}"
        rows.append(
            {
                "stages": stages,
                "places": spec.stg.net.num_places(),
                "markings": markings,
                "structural_s": round(structural.total_seconds, 3),
                "statebased_s": baseline_seconds,
                "literals": structural.literals,
            }
        )
    print(format_table(rows, title="Muller pipeline scaling (cf. Tables VI/VII)"))


if __name__ == "__main__":
    main()
