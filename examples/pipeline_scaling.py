"""Scaling study: structural vs. state-based synthesis of Muller pipelines.

Reproduces the spirit of Tables VI/VII on one family: the state-based
baseline enumerates the reachability graph (exponential in the pipeline
depth) while the structural flow stays polynomial.  The baseline is skipped
once the state space passes the enumeration limit.

Run with:  python examples/pipeline_scaling.py
"""

from __future__ import annotations

import time

from repro.benchmarks.scalable import muller_pipeline
from repro.experiments.reporting import format_table
from repro.petri.reachability import StateSpaceLimitExceeded
from repro.statebased.synthesis import synthesize_state_based
from repro.synthesis import SynthesisOptions, synthesize

STAGES = (2, 4, 8, 16, 24)
BASELINE_LIMIT = 30_000


def main() -> None:
    rows = []
    for stages in STAGES:
        stg = muller_pipeline(stages)
        start = time.perf_counter()
        structural = synthesize(stg, SynthesisOptions(level=3, assume_csc=True))
        structural_seconds = time.perf_counter() - start

        start = time.perf_counter()
        try:
            baseline = synthesize_state_based(stg, max_markings=BASELINE_LIMIT)
            baseline_seconds = f"{time.perf_counter() - start:.3f}"
            markings = baseline.statistics["markings"]
        except StateSpaceLimitExceeded:
            baseline_seconds = "blow-up"
            markings = f">{BASELINE_LIMIT}"
        rows.append(
            {
                "stages": stages,
                "places": stg.net.num_places(),
                "markings": markings,
                "structural_s": round(structural_seconds, 3),
                "statebased_s": baseline_seconds,
                "literals": structural.circuit.literal_count(),
            }
        )
    print(format_table(rows, title="Muller pipeline scaling (cf. Tables VI/VII)"))


if __name__ == "__main__":
    main()
