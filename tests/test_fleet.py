"""Tests of the supervised prefork serving fleet (``repro serve --workers``).

Three layers, bottom-up:

* :class:`~repro.api.fleet.SingleFlight` and the store's hot LRU tier as
  plain in-process units;
* pipeline-level coalescing: two pipelines racing the same cold spec over
  one shared store compute every stage exactly once between them;
* the real thing — a :class:`~repro.api.fleet.FleetSupervisor` running
  worker *subprocesses* on one ``SO_REUSEPORT`` port: respawn after
  SIGKILL, recycling after ``max_requests``, hung-worker detection,
  graceful drain of an in-flight request, and a seeded chaos campaign that
  must finish with zero client-visible failures.

The client-side fleet hardening (``Retry-After`` dates, retry budget,
circuit breaker, hedged reads) is tested against stub servers at the end.
"""

from __future__ import annotations

import io
import json
import socket
import threading
import time
import urllib.error
import urllib.request
from contextlib import contextmanager
from email.utils import formatdate
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import os
import signal

import pytest

from repro.api import SynthesisOptions
from repro.api.client import (
    CircuitOpenError,
    Client,
    ClientError,
    parse_retry_after,
)
from repro.api.events import EventLog
from repro.api.fleet import (
    EXIT_DRAINED,
    EXIT_RECYCLED,
    FleetConfig,
    FleetSupervisor,
    SingleFlight,
)
from repro.api.pipeline import Pipeline
from repro.api.server import create_server
from repro.api.store import ArtifactStore

OPTIONS = SynthesisOptions(level=5, assume_csc=True)


def poll_until(predicate, timeout: float = 15.0, interval: float = 0.05) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


# ---------------------------------------------------------------------- #
# SingleFlight
# ---------------------------------------------------------------------- #


class TestSingleFlight:
    def test_leader_election_is_exclusive_and_released(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        first = SingleFlight(store)
        second = SingleFlight(store)
        assert first.acquire("d1") is True
        assert second.acquire("d1") is False
        assert second.acquire("d2") is True  # other digests are independent
        first.release("d1")
        assert second.acquire("d1") is True
        assert first.led == 1 and second.led == 2

    def test_follower_returns_the_leaders_write(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        leader = SingleFlight(store)
        follower = SingleFlight(store, poll_interval=0.005)
        assert leader.acquire("d1")
        reads = iter([None, None, {"value": 42}])
        document = follower.wait("d1", lambda: next(reads))
        assert document == {"value": 42}
        assert follower.followed == 1 and follower.degraded == 0

    def test_absent_lock_resolves_with_one_final_read(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        flight = SingleFlight(store)
        # leader released and its write landed: coalesce on the final read
        # without ever sleeping
        reads = iter([None, {"v": 1}])
        assert flight.wait("gone", lambda: next(reads)) == {"v": 1}
        assert flight.followed == 1
        # no lock and nothing stored: degrade to local computation — but
        # never loop forever on an unlocked digest
        assert flight.wait("gone2", lambda: None) is None
        assert flight.degraded == 1

    def test_dead_leader_lock_is_stolen(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        flight = SingleFlight(store, poll_interval=0.005)
        store.flight_dir.mkdir(parents=True, exist_ok=True)
        lock = store.flight_dir / "d1.flight"
        # a pid far above any real pid space: certainly not alive
        lock.write_text(json.dumps({"pid": 2**31 - 19, "at": 0}))
        assert flight.wait("d1", lambda: None) is None
        assert flight.degraded == 1
        assert not lock.exists()  # stolen, so the next herd is not blocked
        assert flight.acquire("d1") is True

    def test_live_leader_and_deadline_degrade(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        leader = SingleFlight(store)
        assert leader.acquire("d1")  # our own pid: counts as alive
        follower = SingleFlight(store, wait_timeout=0.05, poll_interval=0.01)
        started = time.monotonic()
        assert follower.wait("d1", lambda: None) is None
        assert time.monotonic() - started < 2.0
        assert follower.degraded == 1
        assert (store.flight_dir / "d1.flight").exists()  # not stolen


# ---------------------------------------------------------------------- #
# Store hot tier
# ---------------------------------------------------------------------- #


class TestStoreHotTier:
    def test_hot_entries_are_served_without_disk(self, tmp_path):
        store = ArtifactStore(tmp_path / "store", lru_size=4)
        key = ("stage", "spec", 1)
        store.put(key, {"value": 1})
        # remove the backing file: the hot tier must still answer
        store.path_of(store.digest_of(key)).unlink()
        assert store.get(key) == {"value": 1}
        assert store.lru_hits == 1
        assert store.hits == 1 and store.misses == 0

    def test_hot_tier_is_bounded_lru(self, tmp_path):
        store = ArtifactStore(tmp_path / "store", lru_size=2)
        for index in range(3):
            store.put(("k", index), {"value": index})
        stats = store.stats()["session"]
        assert stats["lru_entries"] == 2
        assert stats["lru_size"] == 2
        # the oldest entry was evicted from the tier but survives on disk
        assert store.get(("k", 0)) == {"value": 0}

    def test_disk_reads_populate_the_hot_tier(self, tmp_path):
        root = tmp_path / "store"
        writer = ArtifactStore(root)
        writer.put(("k", 1), {"value": 1})
        reader = ArtifactStore(root, lru_size=4)
        assert reader.get(("k", 1)) == {"value": 1}  # disk read
        assert reader.lru_hits == 0
        assert reader.get(("k", 1)) == {"value": 1}  # hot now
        assert reader.lru_hits == 1

    def test_peek_does_not_move_the_counters(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        assert store.peek(("k", 1)) is None
        store.put(("k", 1), {"value": 1})
        assert store.peek(("k", 1)) == {"value": 1}
        assert store.hits == 0 and store.misses == 0

    def test_lru_disabled_by_default(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put(("k", 1), {"value": 1})
        assert store.stats()["session"]["lru_entries"] == 0
        assert store.lru_hits == 0

    def test_sweep_removes_stale_flight_locks(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.flight_dir.mkdir(parents=True, exist_ok=True)
        stale = store.flight_dir / "dead.flight"
        stale.write_text("{}")
        old = time.time() - 3600
        os.utime(stale, (old, old))
        fresh = store.flight_dir / "live.flight"
        fresh.write_text("{}")
        swept = store.sweep(tmp_older_than=60)
        assert swept["flight_removed"] == 1
        assert not stale.exists() and fresh.exists()


# ---------------------------------------------------------------------- #
# Pipeline coalescing
# ---------------------------------------------------------------------- #


class TestPipelineCoalescing:
    def test_racing_pipelines_compute_each_stage_once(self, tmp_path):
        root = tmp_path / "store"
        logs = [EventLog(), EventLog()]
        pipelines = []
        for log in logs:
            store = ArtifactStore(root)
            pipelines.append(
                Pipeline(
                    store=store,
                    flights=SingleFlight(store, poll_interval=0.005),
                    on_event=log,
                    # stretch analyze so the second runner reliably lands
                    # inside the first runner's flight
                    faults="stage.delay@analyze=1~0.3",
                )
            )
        reports = [None, None]
        errors = []

        def runner(index: int) -> None:
            try:
                if index:
                    time.sleep(0.08)
                reports[index] = pipelines[index].run("sequencer", OPTIONS)
            except Exception as error:  # noqa: BLE001 — surfaced below
                errors.append(error)

        threads = [threading.Thread(target=runner, args=(i,)) for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert reports[0].literals == reports[1].literals
        # the coalescing invariant: between the two pipelines every stage
        # was computed exactly once — the other side followed the flight
        events = [e for log in logs for e in log.events if e.kind == "stage"]
        computed = {}
        for event in events:
            if event.status == "computed":
                computed[event.stage] = computed.get(event.stage, 0) + 1
        assert computed and all(count == 1 for count in computed.values()), computed
        # the late runner coalesced the outermost stage it first needed
        # (stage memos nest: the synthesize key subsumes refine/analyze)
        assert sum(pipelines[1].coalesced.values()) >= 1
        assert "coalesced" in logs[1].stage_statuses("synthesize")
        total_flights = [p.flights for p in pipelines]
        assert sum(f.led for f in total_flights) == len(computed)
        assert sum(f.degraded for f in total_flights) == 0


# ---------------------------------------------------------------------- #
# The fleet itself (worker subprocesses)
# ---------------------------------------------------------------------- #


def _wait_http_ready(port: int, timeout: float = 20.0) -> None:
    def probe() -> bool:
        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/health", timeout=2
            ) as response:
                return response.status == 200
        except (urllib.error.URLError, ConnectionError, OSError):
            return False

    assert poll_until(probe, timeout=timeout), "fleet never became reachable"


@contextmanager
def running_fleet(tmp_path, log=None, client_retries: int = 8, **overrides):
    """A started fleet plus a supervision thread driving ``poll()``.

    ``run()`` installs signal handlers and so only works on the main
    thread; tests drive the public ``poll()`` from a plain loop instead —
    the same supervision semantics, minus the signals.
    """
    settings = dict(
        port=0,
        workers=2,
        store=str(tmp_path / "store"),
        run_dir=str(tmp_path / "run"),
        heartbeat_interval=0.1,
    )
    settings.update(overrides)
    config = FleetConfig(**settings)
    supervisor = FleetSupervisor(config, on_event=log, log_stream=io.StringIO())
    supervisor.start()
    stop = threading.Event()

    def supervise() -> None:
        while not stop.is_set():
            supervisor.poll()
            stop.wait(0.05)

    thread = threading.Thread(target=supervise, daemon=True)
    thread.start()
    try:
        _wait_http_ready(supervisor.port)
        client = Client(
            f"http://127.0.0.1:{supervisor.port}",
            retries=client_retries,
            backoff=0.1,
            timeout=60,
        )
        yield supervisor, client
    finally:
        stop.set()
        thread.join(timeout=5)
        supervisor.stop()


class TestFleet:
    def test_fleet_serves_shared_store_and_drains_gracefully(self, tmp_path):
        with running_fleet(tmp_path) as (supervisor, client):
            health = client.health()
            assert "worker" in health and "pid" in health
            first = client.synthesize("sequencer", level=5, assume_csc=True)
            assert first.report.speed_independent is not False
            assert first.resolution["computed"] > 0
            # any sibling serves the repeat from the shared store: nothing
            # is recomputed no matter which worker the kernel picks
            second = client.synthesize("sequencer", level=5, assume_csc=True)
            assert second.resolution["computed"] == 0
            stats = client.cache_stats()
            assert "flights" in stats and "worker" in stats
            handles = [w for w in supervisor.workers if w is not None]
            supervisor.stop()  # graceful drain
            assert all(h.process.returncode == EXIT_DRAINED for h in handles)
        assert supervisor.respawns == 0

    def test_sigkilled_worker_is_respawned_and_serving_continues(self, tmp_path):
        log = EventLog()
        with running_fleet(tmp_path, log=log) as (supervisor, client):
            assert client.synthesize("sequencer").report is not None
            victim = supervisor.workers[0]
            os.kill(victim.pid, signal.SIGKILL)
            assert poll_until(lambda: supervisor.respawns >= 1)
            replacement = supervisor.workers[0]
            assert replacement.pid != victim.pid
            assert replacement.generation == victim.generation + 1
            # the fleet kept serving throughout (shared store: no recompute)
            result = client.synthesize("sequencer")
            assert result.resolution["computed"] == 0
        respawn_events = [e for e in log.of_kind("worker") if e.status == "respawn"]
        assert len(respawn_events) >= 1
        assert respawn_events[0].index == 0

    def test_worker_recycles_after_its_request_budget(self, tmp_path):
        log = EventLog()
        with running_fleet(tmp_path, log=log, workers=1, max_requests=2) as (
            supervisor,
            client,
        ):
            client.synthesize("sequencer")
            client.synthesize("sequencer")
            assert poll_until(lambda: supervisor.recycles >= 1)
            # a fresh generation picks the load back up (client retries
            # cover the respawn window)
            result = client.synthesize("sequencer")
            assert result.resolution["computed"] == 0
            worker = supervisor.workers[0]
            assert worker.generation >= 2
        recycle_events = [e for e in log.of_kind("worker") if e.status == "recycle"]
        assert len(recycle_events) >= 1
        assert supervisor.respawns == 0  # planned retirement, not a crash

    def test_hung_worker_is_killed_and_respawned(self, tmp_path):
        with running_fleet(
            tmp_path, workers=1, heartbeat_timeout=2.5
        ) as (supervisor, client):
            assert client.health()["worker"] == "0.1"
            victim = supervisor.workers[0]
            os.kill(victim.pid, signal.SIGSTOP)  # alive but not beating
            assert poll_until(lambda: supervisor.hung_kills >= 1, timeout=20)
            assert supervisor.workers[0].pid != victim.pid
            assert client.health()["worker"] == "0.2"

    def test_graceful_drain_completes_the_in_flight_request(self, tmp_path):
        # the drain contract: SIGTERM while a request is mid-synthesis
        # (stretched to ~1s by an injected delay) must finish that request
        # and only then let the worker exit 0
        with running_fleet(
            tmp_path,
            workers=1,
            faults="stage.delay@synthesize=1~1.0",
            drain_timeout=15.0,
        ) as (supervisor, client):
            client.health()
            outcome = {}

            def request() -> None:
                solo = Client(client.base_url, retries=0, timeout=60)
                try:
                    outcome["result"] = solo.synthesize("sequencer")
                except Exception as error:  # noqa: BLE001 — asserted below
                    outcome["error"] = error

            thread = threading.Thread(target=request)
            thread.start()
            time.sleep(0.4)  # the request is now inside the stage delay
            handle = supervisor.workers[0]
            supervisor.stop(drain=True)
            thread.join(timeout=30)
            assert "error" not in outcome, outcome.get("error")
            assert outcome["result"].report is not None
            assert handle.process.returncode == EXIT_DRAINED

    def test_seeded_chaos_campaign_loses_no_request(self, tmp_path):
        # the PR's acceptance bar: kills + delays under concurrent load,
        # zero client-visible failures.  A deterministic SIGKILL guarantees
        # at least one respawn regardless of how the kernel spreads the
        # chaos opportunities across workers.
        log = EventLog()
        faults = "seed=11;worker.kill@synthesize=0.15;stage.delay@synthesize=0.2~0.05"
        with running_fleet(
            tmp_path, log=log, workers=3, faults=faults, client_retries=10
        ) as (supervisor, client):
            specs = ["sequencer", "fig1", "handshake_seq"]
            failures: list[str] = []
            served = [0]
            lock = threading.Lock()

            def hammer(worker_index: int) -> None:
                hammer_client = Client(
                    client.base_url, retries=10, backoff=0.05, timeout=60
                )
                for step in range(15):
                    spec = specs[(worker_index + step) % len(specs)]
                    try:
                        result = hammer_client.synthesize(
                            spec, level=5, assume_csc=True
                        )
                        assert result.report is not None
                        with lock:
                            served[0] += 1
                    except Exception as error:  # noqa: BLE001 — collected
                        with lock:
                            failures.append(f"{spec}: {type(error).__name__}: {error}")

            threads = [
                threading.Thread(target=hammer, args=(i,)) for i in range(3)
            ]
            for thread in threads:
                thread.start()
            time.sleep(0.5)
            try:
                os.kill(supervisor.workers[1].pid, signal.SIGKILL)
            except ProcessLookupError:
                pass  # chaos beat us to this worker; a respawn happened anyway
            for thread in threads:
                thread.join(timeout=120)
            assert failures == []
            assert served[0] == 45
            assert supervisor.respawns >= 1
        assert any(e.status == "respawn" for e in log.of_kind("worker"))


# ---------------------------------------------------------------------- #
# Client hardening: Retry-After dates, budget, breaker, hedging
# ---------------------------------------------------------------------- #


class TestParseRetryAfter:
    def test_delta_seconds(self):
        assert parse_retry_after("2.5") == 2.5
        assert parse_retry_after("0") == 0.0
        assert parse_retry_after("-3") == 0.0  # clamped

    def test_http_date(self):
        future = formatdate(time.time() + 5, usegmt=True)
        parsed = parse_retry_after(future)
        assert parsed is not None and 2.0 < parsed <= 6.0
        past = formatdate(time.time() - 60, usegmt=True)
        assert parse_retry_after(past) == 0.0

    def test_garbage_and_missing(self):
        assert parse_retry_after("soon-ish") is None
        assert parse_retry_after(None) is None
        assert parse_retry_after("") is None

    def test_malformed_dates_degrade_to_none(self):
        # shapes real proxies emit when misconfigured: almost-dates must
        # degrade to None (caller falls back to its own backoff), never raise
        for value in (
            "Fri, 99 Zan 2026 12:00:00 GMT",
            "Friday the 8th",
            "5 seconds",
            "2026-08-08T12:00:00Z",  # ISO 8601 is not an HTTP-date
            "   ",
        ):
            assert parse_retry_after(value) is None, value

    def test_naive_http_date_is_treated_as_utc(self):
        # some origins drop the zone; RFC 9110 says GMT is implied
        naive = formatdate(time.time() + 5, usegmt=True).replace(" GMT", "")
        parsed = parse_retry_after(naive)
        assert parsed is not None and 2.0 < parsed <= 6.0
        stale = formatdate(time.time() - 3600, usegmt=True).replace(" GMT", "")
        assert parse_retry_after(stale) == 0.0

    def test_distant_past_and_nonsense_numbers(self):
        assert parse_retry_after("Thu, 01 Jan 1970 00:00:00 GMT") == 0.0
        assert parse_retry_after("-0.0") == 0.0
        assert parse_retry_after("1e3") == 1000.0  # float grammar is fine


@pytest.fixture()
def overloaded_server(tmp_path):
    """A real server that sheds every locked request with 503 + Retry-After."""
    server = create_server(port=0, store=tmp_path / "store", max_queue=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


class TestClientHardening:
    def test_retry_budget_caps_the_waiting(self, overloaded_server):
        port = overloaded_server.server_address[1]
        client = Client(
            f"http://127.0.0.1:{port}", retries=5, backoff=0.05, retry_budget=0.3
        )
        started = time.monotonic()
        with pytest.raises(ClientError) as excinfo:
            client.synthesize("sequencer")
        # the server's Retry-After hint (1s) would blow the 0.3s budget:
        # the client surfaces the failure instead of sleeping past it
        assert excinfo.value.code == "overloaded"
        assert time.monotonic() - started < 1.0
        assert overloaded_server.service.shed == 1  # a single attempt went out

    def test_http_date_retry_after_exhausts_the_budget_mid_backoff(self):
        """A far-future HTTP-date hint must not be slept on past the budget."""
        attempts = [0]

        class _DatedShedder(BaseHTTPRequestHandler):
            def do_POST(self):  # noqa: N802 (stdlib naming)
                attempts[0] += 1
                self.rfile.read(int(self.headers.get("Content-Length") or 0))
                body = json.dumps(
                    {
                        "error": {
                            "code": "overloaded",
                            "message": "shedding",
                            "retryable": True,
                        }
                    }
                ).encode()
                self.send_response(503)
                # 30 s out: any attempt's backoff would blow a 0.5 s budget
                self.send_header(
                    "Retry-After", formatdate(time.time() + 30, usegmt=True)
                )
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):  # noqa: A002 (stdlib signature)
                pass

        server = ThreadingHTTPServer(("127.0.0.1", 0), _DatedShedder)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = Client(
                f"http://127.0.0.1:{server.server_address[1]}",
                retries=5,
                backoff=0.01,
                retry_budget=0.5,
            )
            started = time.monotonic()
            with pytest.raises(ClientError) as excinfo:
                client.synthesize("sequencer")
            elapsed = time.monotonic() - started
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
        assert excinfo.value.code == "overloaded"
        assert excinfo.value.retry_after == pytest.approx(30.0, abs=2.0)
        assert attempts[0] == 1  # the hinted delay never fit the budget
        assert elapsed < 2.0  # the client did not honour the 30 s hint

    def test_past_http_date_defers_to_exponential_backoff(self):
        """A stale date clamps to 0: the client's own backoff still applies."""
        attempts = [0]

        class _StaleShedder(BaseHTTPRequestHandler):
            def do_POST(self):  # noqa: N802 (stdlib naming)
                attempts[0] += 1
                self.rfile.read(int(self.headers.get("Content-Length") or 0))
                if attempts[0] >= 3:
                    body = json.dumps({"report": None, "ok": True}).encode()
                    self.send_response(200)
                else:
                    body = json.dumps(
                        {
                            "error": {
                                "code": "overloaded",
                                "message": "shedding",
                                "retryable": True,
                            }
                        }
                    ).encode()
                    self.send_response(503)
                    self.send_header(
                        "Retry-After", formatdate(time.time() - 60, usegmt=True)
                    )
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):  # noqa: A002 (stdlib signature)
                pass

        server = ThreadingHTTPServer(("127.0.0.1", 0), _StaleShedder)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = Client(
                f"http://127.0.0.1:{server.server_address[1]}",
                retries=5,
                backoff=0.01,
                retry_budget=5.0,
            )
            started = time.monotonic()
            payload = client._request("POST", "/anything", {})
            elapsed = time.monotonic() - started
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
        assert payload["ok"] is True
        assert attempts[0] == 3  # two shed attempts, then success
        assert elapsed < 2.0  # max(backoff, 0.0) kept the waits tiny

    def test_breaker_opens_after_consecutive_transport_failures(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()  # nothing listens there now
        client = Client(
            f"http://127.0.0.1:{dead_port}",
            retries=0,
            breaker_threshold=2,
            breaker_reset=60.0,
        )
        for _ in range(2):
            with pytest.raises(urllib.error.URLError):
                client.health()
        started = time.monotonic()
        with pytest.raises(CircuitOpenError) as excinfo:
            client.health()
        assert time.monotonic() - started < 0.1  # failed fast, no network
        assert excinfo.value.endpoint == "/health"
        assert excinfo.value.retry_in > 0

    def test_breaker_half_opens_after_the_reset_window(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        client = Client(
            f"http://127.0.0.1:{dead_port}",
            retries=0,
            breaker_threshold=1,
            breaker_reset=0.15,
        )
        with pytest.raises(urllib.error.URLError):
            client.health()
        with pytest.raises(CircuitOpenError):
            client.health()
        time.sleep(0.2)
        # half-open: the probe is admitted to the network again (and fails
        # there, re-opening the circuit for the next caller)
        with pytest.raises(urllib.error.URLError):
            client.health()
        with pytest.raises(CircuitOpenError):
            client.health()

    def test_breakers_are_per_endpoint(self, overloaded_server):
        port = overloaded_server.server_address[1]
        client = Client(
            f"http://127.0.0.1:{port}",
            retries=0,
            breaker_threshold=1,
            breaker_reset=60.0,
        )
        with pytest.raises(ClientError):
            client.synthesize("sequencer")  # trips /synthesize
        with pytest.raises(CircuitOpenError):
            client.synthesize("sequencer")
        # /health has its own (untripped) breaker and still goes through
        assert client.health()["status"] == "ok"

    def test_hedged_get_races_a_slow_primary(self):
        delays = [0.6, 0.0]
        lock = threading.Lock()

        class _SlowThenFast(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 (stdlib naming)
                with lock:
                    delay = delays.pop(0) if delays else 0.0
                time.sleep(delay)
                body = json.dumps({"ok": True, "delay": delay}).encode()
                self.send_response(200)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):  # noqa: A002 (stdlib signature)
                pass

        server = ThreadingHTTPServer(("127.0.0.1", 0), _SlowThenFast)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = Client(
                f"http://127.0.0.1:{server.server_address[1]}",
                retries=0,
                hedge_delay=0.05,
            )
            started = time.monotonic()
            payload = client.health()
            elapsed = time.monotonic() - started
            assert payload["ok"] is True
            assert payload["delay"] == 0.0  # the hedge's answer won
            assert elapsed < 0.5
            assert client.hedges == 1
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_hedging_is_off_for_posts(self, overloaded_server):
        port = overloaded_server.server_address[1]
        client = Client(f"http://127.0.0.1:{port}", retries=0, hedge_delay=0.01)
        with pytest.raises(ClientError):
            client.synthesize("sequencer")
        assert client.hedges == 0


# ---------------------------------------------------------------------- #
# Worker-facing server features (in-process)
# ---------------------------------------------------------------------- #


class TestWorkerServer:
    def _get(self, port: int, path: str):
        request = urllib.request.Request(f"http://127.0.0.1:{port}{path}")
        with urllib.request.urlopen(request, timeout=10) as response:
            return (
                response.status,
                dict(response.headers),
                json.loads(response.read().decode()),
            )

    def test_ready_probe_is_ttl_cached(self, tmp_path):
        server = create_server(port=0, store=tmp_path / "store", ready_ttl=30.0)
        service = server.service
        probes = [0]
        real_probe = service.pipeline.store.probe

        def counting_probe():
            probes[0] += 1
            return real_probe()

        service.pipeline.store.probe = counting_probe
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        port = server.server_address[1]
        try:
            for _ in range(3):
                status, _, body = self._get(port, "/ready")
                assert status == 200 and body["ready"] is True
            assert probes[0] == 1  # two of the three were TTL-cached
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_draining_worker_reports_not_ready(self, tmp_path):
        server = create_server(port=0, store=tmp_path / "store", worker_id="4.2")
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        port = server.server_address[1]
        try:
            status, _, body = self._get(port, "/ready")
            assert status == 200 and body["worker"] == "4.2"
            server.service.draining = True
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._get(port, "/ready")
            assert excinfo.value.code == 503
            payload = json.loads(excinfo.value.read().decode())
            assert payload["ready"] is False
            assert payload["reason"] == "draining"
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_worker_identity_header(self, tmp_path):
        server = create_server(port=0, store=tmp_path / "store", worker_id="7.3")
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        port = server.server_address[1]
        try:
            status, headers, body = self._get(port, "/health")
            assert status == 200
            assert headers.get("X-Repro-Worker") == "7.3"
            assert body["worker"] == "7.3"
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_plain_server_has_no_worker_header(self, tmp_path):
        server = create_server(port=0, store=tmp_path / "store")
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        port = server.server_address[1]
        try:
            _, headers, body = self._get(port, "/health")
            assert "X-Repro-Worker" not in headers
            assert "worker" not in body
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_recycle_budget_fires_exactly_once(self, tmp_path):
        recycles = []
        server = create_server(
            port=0,
            store=tmp_path / "store",
            worker_id="0.1",
            max_requests=2,
            on_recycle=lambda: recycles.append(time.monotonic()),
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        port = server.server_address[1]
        try:
            client = Client(f"http://127.0.0.1:{port}", retries=0)
            client.synthesize("sequencer")
            assert recycles == []
            client.synthesize("sequencer")
            assert len(recycles) == 1
            assert server.service.draining is True
            # the budget fires once even if more requests sneak in before
            # the worker's main loop reacts
            client.cache_stats()
            assert len(recycles) == 1
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
