"""Tests of the ``repro serve`` daemon and its Python client.

The server is driven in-process: ``create_server(port=0)`` binds an
ephemeral port and a background thread serves it — the same harness the CI
smoke job uses from a separate process.
"""

from __future__ import annotations

import threading
import urllib.error
import urllib.request

import pytest

from repro.api import Pipeline, SynthesisOptions
from repro.api.client import Client, ClientError
from repro.api.server import create_server
from repro.benchmarks.classic import load_classic
from repro.stg.writer import write_g


@pytest.fixture()
def served(tmp_path):
    """A serving (server, client) pair with a per-test store."""
    server = create_server(port=0, store=tmp_path / "store")
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    port = server.server_address[1]
    try:
        yield server, Client(f"http://127.0.0.1:{port}")
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


class TestEndpoints:
    def test_health_and_benchmarks(self, served):
        _, client = served
        health = client.health()
        assert health["status"] == "ok"
        assert "sequencer" in client.benchmarks()

    def test_synthesize_returns_a_typed_report(self, served):
        _, client = served
        result = client.synthesize(
            "sequencer", assume_csc=True, map_technology=True, verify=True
        )
        assert result.report.literals > 0
        assert result.report.mapping.total_area > 0
        assert result.report.verification.speed_independent is True
        assert not result.cached

    def test_repeated_request_is_served_from_cache(self, served):
        _, client = served
        first = client.synthesize("sequencer", assume_csc=True, verify=True)
        second = client.synthesize("sequencer", assume_csc=True, verify=True)
        assert not first.cached
        assert second.cached
        assert second.resolution["computed"] == 0
        assert second.report.literals == first.report.literals

    def test_warm_store_survives_a_server_restart(self, served, tmp_path):
        server, client = served
        client.synthesize("handshake_seq", assume_csc=True)
        # a brand-new service over the same store resolves from disk
        restarted = create_server(port=0, store=tmp_path / "store")
        thread = threading.Thread(target=restarted.serve_forever, daemon=True)
        thread.start()
        try:
            fresh = Client(f"http://127.0.0.1:{restarted.server_address[1]}")
            result = fresh.synthesize("handshake_seq", assume_csc=True)
            assert result.cached
            assert result.resolution["store"] > 0
        finally:
            restarted.shutdown()
            restarted.server_close()
            thread.join(timeout=5)

    def test_inline_g_text_spec(self, served):
        _, client = served
        text = write_g(load_classic("sequencer"))
        result = client.synthesize(text, assume_csc=True)
        assert result.report.spec_name == "sequencer"

    def test_verify_and_mapped(self, served):
        _, client = served
        payload = client.verify("sequencer", assume_csc=True, mapped=True)
        assert payload["verify"]["speed_independent"] is True
        assert payload["verify_mapped"]["equivalent"] is True

    def test_compare(self, served):
        _, client = served
        payload = client.compare("handshake_seq")
        assert payload["comparison"]["matching"] is True
        assert payload["comparison"]["checked_markings"] > 0

    def test_export(self, served):
        _, client = served
        text = client.export("sequencer", "verilog", assume_csc=True)
        assert "module" in text
        from repro.gates import validate_verilog

        validate_verilog(text)

    def test_cache_stats_and_clear(self, served):
        _, client = served
        client.synthesize("fig1", assume_csc=True)
        stats = client.cache_stats()
        assert stats["stage_calls"]["synthesize"] >= 1
        assert stats["store"]["entries"] > 0
        cleared = client.cache_clear(disk=True)
        assert cleared["cleared"] is True
        assert cleared["disk_entries_removed"] > 0
        assert client.cache_stats()["store"]["entries"] == 0


class TestErrors:
    def test_unknown_spec_is_a_400(self, served):
        _, client = served
        with pytest.raises(ClientError) as excinfo:
            client.synthesize("no_such_benchmark_at_all")
        assert excinfo.value.status == 400
        assert "no_such_benchmark_at_all" in excinfo.value.message

    def test_synthesis_error_is_a_400(self, served):
        _, client = served
        # fig5 has structural CSC conflicts; without assume_csc it must fail
        with pytest.raises(ClientError) as excinfo:
            client.synthesize("fig5")
        assert excinfo.value.status == 400
        assert "CSC" in excinfo.value.message

    def test_unknown_endpoint_is_a_404(self, served):
        _, client = served
        with pytest.raises(ClientError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_malformed_body_is_a_400(self, served):
        server, client = served
        request = urllib.request.Request(
            client.base_url + "/synthesize",
            data=b"{ not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_memory_cache_is_bounded_by_eviction(self, tmp_path):
        """A stream of distinct requests must not grow memory without bound."""
        from repro.api.server import SynthesisService

        service = SynthesisService(store=tmp_path / "store", max_cached_artifacts=3)
        for name in ("fig1", "sequencer", "handshake_seq", "glatch_3"):
            service.dispatch("POST", "/synthesize", {"spec": name, "assume_csc": True})
        assert service.evictions >= 1
        assert sum(service.pipeline.cache_info().values()) <= 3 + 6
        # evicted artifacts reload from the store, not recompute
        before = dict(service.pipeline.stage_calls)
        service.dispatch("POST", "/synthesize", {"spec": "fig1", "assume_csc": True})
        assert dict(service.pipeline.stage_calls) == before

    def test_caller_pipeline_event_callback_is_composed_not_replaced(self):
        from repro.api import EventLog

        log = EventLog()
        server = create_server(port=0, pipeline=Pipeline(on_event=log))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = Client(f"http://127.0.0.1:{server.server_address[1]}")
            result = client.synthesize("fig1", assume_csc=True)
            # both consumers saw the stage events: the caller's log...
            assert log.stage_statuses("synthesize") == ["computed"]
            # ...and the per-request resolution summary
            assert result.resolution["computed"] > 0
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_server_without_store_still_serves(self):
        server = create_server(port=0, store=None, pipeline=Pipeline())
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = Client(f"http://127.0.0.1:{server.server_address[1]}")
            result = client.synthesize("fig1", assume_csc=True)
            assert result.report.literals > 0
            assert "store" not in client.cache_stats()
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


def _post_json(port: int, path: str, body: dict) -> tuple[int, dict]:
    """Raw POST for asserting on the server-side response document."""
    import json

    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


class TestBatchEndpoint:
    def test_sequential_batch_preserves_order_and_resolutions(self, served):
        _, client = served
        names = ["sequencer", "handshake_seq", "sequencer"]
        results = client.synthesize_many(names, assume_csc=True)
        assert [r.raw["spec"] for r in results] == names
        assert all(r.report.literals > 0 for r in results)
        # sequential mode slices the per-item stage resolution: the first
        # sequencer computes, the repeat resolves from this worker's memory
        assert results[0].resolution["computed"] > 0
        assert not results[0].cached
        assert results[2].resolution["computed"] == 0
        assert results[2].resolution["memory"] > 0
        assert results[2].cached

    def test_batch_item_failure_is_reported_in_place(self, served):
        server, _ = served
        port = server.server_address[1]
        status, payload = _post_json(
            port,
            "/synthesize/batch",
            {
                "items": [
                    {"spec": "sequencer", "assume_csc": True},
                    {"spec": "no_such_benchmark_anywhere"},
                ]
            },
        )
        assert status == 200  # item failures never become a batch-wide error
        good, bad = payload["results"]
        assert good["ok"] and good["report"]["synthesize"]["literals"] > 0
        assert not bad["ok"] and "report" not in bad
        assert bad["error"]["code"] != "internal"
        assert "no_such_benchmark_anywhere" in bad["error"]["message"]

    def test_batch_validates_its_body(self, served):
        server, _ = served
        port = server.server_address[1]
        for body in ({}, {"items": []}, {"items": "sequencer"}, {"items": [7]}):
            status, payload = _post_json(port, "/synthesize/batch", body)
            assert status == 400
            assert payload["error"]["code"] == "bad_request"
        status, payload = _post_json(
            port, "/synthesize/batch", {"items": [{"spec": "sequencer"}], "jobs": "x"}
        )
        assert status == 400

    def test_pool_mode_fans_out_over_the_scheduler(self, served):
        server, _ = served
        port = server.server_address[1]
        status, payload = _post_json(
            port,
            "/synthesize/batch",
            {
                "items": [
                    {"spec": "sequencer", "assume_csc": True},
                    {"spec": "handshake_seq", "assume_csc": True},
                ],
                "jobs": 2,
            },
        )
        assert status == 200
        assert payload["pool"] is True
        assert all(entry["ok"] for entry in payload["results"])
        # pool items resolve in child processes: no per-item resolution
        assert all(entry["resolution"] is None for entry in payload["results"])
        # ...but the children warmed the shared store, so a follow-up
        # sequential request resolves from disk without recomputing
        status, payload = _post_json(
            port, "/synthesize", {"spec": "sequencer", "assume_csc": True}
        )
        assert status == 200
        assert payload["resolution"]["computed"] == 0

    def test_pool_without_a_store_degrades_to_sequential(self):
        server = create_server(port=0, store=None, pipeline=Pipeline())
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            port = server.server_address[1]
            status, payload = _post_json(
                port,
                "/synthesize/batch",
                {
                    "items": [
                        {"spec": "fig1", "assume_csc": True},
                        {"spec": "sequencer", "assume_csc": True},
                    ],
                    "jobs": 4,
                },
            )
            assert status == 200
            assert payload["pool"] is False
            assert all(e["ok"] and e["resolution"] for e in payload["results"])
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_synthesize_many_pool_results_are_typed(self, served):
        _, client = served
        results = client.synthesize_many(
            ["sequencer", "handshake_seq"], assume_csc=True, jobs=2
        )
        assert [type(r).__name__ for r in results] == ["SynthesisResult"] * 2
        assert all(r.report.literals > 0 for r in results)
        assert all(r.resolution == {} for r in results)  # pool: unknown, not zero

    def test_synthesize_many_partial_failure_carries_the_successes(self, served):
        _, client = served
        with pytest.raises(ClientError) as excinfo:
            client.synthesize_many(
                ["sequencer", "no_such_benchmark_anywhere"], assume_csc=True
            )
        error = excinfo.value
        assert error.code == "batch_partial_failure"
        assert "no_such_benchmark_anywhere" in str(error)
        assert len(error.results) == 2
        assert error.results[0].report.literals > 0
        assert error.results[1] is None
