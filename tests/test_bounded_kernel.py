"""Differential tests pinning the k-bounded packed kernel to the reference.

The dict-based ``_reference_*`` implementations are the oracle: every graph
built by :class:`~repro.petri.compiled.CompiledBoundedNet` must be
indistinguishable — same markings in the same discovery order, same edges,
same bulk-query results — from the reference multiset BFS.
"""

import random

import pytest

from repro.petri.compiled import (
    BOUNDED_BITS_LADDER,
    BoundExceededError,
    CompiledBoundedNet,
    CompiledNet,
    UnsafeNetError,
    compile_bounded_net,
)
from repro.petri.marking import Marking
from repro.petri.net import PetriNet
from repro.petri.reachability import (
    StateSpaceLimitExceeded,
    _reference_build_reachability_graph,
    _reference_concurrent_pairs_from_rg,
    _reference_count_reachable_markings,
    _reference_marking_sets_of_places,
    build_reachability_graph,
    concurrent_pairs_from_rg,
    count_reachable_markings,
    marking_sets_of_places,
)


def random_bounded_net(rng: random.Random, max_tokens: int = 3) -> PetriNet:
    """A random net whose initial marking may hold multiple tokens."""
    net = PetriNet()
    places = [f"p{i}" for i in range(rng.randint(3, 7))]
    transitions = [f"t{i}" for i in range(rng.randint(3, 7))]
    for place in places:
        net.add_place(place)
    for transition in transitions:
        net.add_transition(transition)
    for transition in transitions:
        for place in rng.sample(places, rng.randint(1, min(3, len(places)))):
            net.add_arc(place, transition)
        for place in rng.sample(places, rng.randint(1, min(3, len(places)))):
            net.add_arc(transition, place)
    any_token = False
    for place in places:
        count = rng.randint(0, max_tokens)
        if count:
            any_token = True
        net.set_initial_tokens(place, count)
    if not any_token:
        net.set_initial_tokens(places[0], 2)
    return net


def token_ring(tokens: int) -> PetriNet:
    """A two-place ring circulating ``tokens`` tokens (k-bounded, k=tokens)."""
    net = PetriNet()
    net.add_place("a", tokens=tokens)
    net.add_place("b")
    net.add_transition("go")
    net.add_transition("back")
    net.add_arc("a", "go")
    net.add_arc("go", "b")
    net.add_arc("b", "back")
    net.add_arc("back", "a")
    return net


class TestSemantics:
    def test_pack_unpack_round_trip(self):
        net = token_ring(3)
        compiled = compile_bounded_net(net, bits=2)
        marking = Marking({"a": 2, "b": 1})
        assert compiled.unpack(compiled.pack(marking)) == marking

    def test_pack_rejects_over_capacity(self):
        net = token_ring(3)
        compiled = compile_bounded_net(net, bits=2)
        with pytest.raises(BoundExceededError):
            compiled.pack(Marking({"a": 4}))

    def test_pack_rejects_unknown_place(self):
        net = token_ring(1)
        compiled = compile_bounded_net(net, bits=2)
        with pytest.raises(UnsafeNetError):
            compiled.pack(Marking({"ghost": 1}))

    def test_bound_exceeded_is_an_unsafe_net_error(self):
        # so generic UnsafeNetError handlers fall back to the reference path
        assert issubclass(BoundExceededError, UnsafeNetError)

    def test_fire_checked_detects_overflow(self):
        net = PetriNet()
        net.add_place("p", tokens=3)
        net.add_transition("t")
        net.add_arc("t", "p")  # pure producer: p grows without bound
        compiled = compile_bounded_net(net, bits=2)
        packed = compiled.pack(net.initial_marking)
        assert compiled.is_enabled(0, packed)
        with pytest.raises(BoundExceededError):
            compiled.fire_checked(0, packed)

    def test_enabled_and_fire_match_reference(self):
        rng = random.Random(5)
        for _ in range(30):
            net = random_bounded_net(rng)
            compiled = compile_bounded_net(net, bits=4)
            marking = net.initial_marking
            packed = compiled.pack(marking)
            for index, name in enumerate(compiled.transition_names):
                assert compiled.is_enabled(index, packed) == net.is_enabled(
                    name, marking
                )
                if net.is_enabled(name, marking):
                    fired = compiled.fire_checked(index, packed)
                    assert compiled.unpack(fired) == net.fire(name, marking)


class TestDifferentialExploration:
    def test_graphs_match_reference_on_random_bounded_nets(self):
        rng = random.Random(11)
        bounded_hits = 0
        for _ in range(120):
            net = random_bounded_net(rng, max_tokens=rng.choice([1, 2, 3, 5]))
            try:
                graph = build_reachability_graph(net, max_markings=1500)
            except StateSpaceLimitExceeded:
                with pytest.raises(StateSpaceLimitExceeded):
                    _reference_build_reachability_graph(
                        net, net.initial_marking, 1500
                    )
                continue
            reference = _reference_build_reachability_graph(
                net, net.initial_marking, 1500
            )
            assert graph.markings == reference.markings  # same discovery order
            assert list(graph.edges()) == list(reference.edges())
            assert count_reachable_markings(net, max_markings=1500) == len(
                reference
            )
            assert concurrent_pairs_from_rg(
                graph
            ) == _reference_concurrent_pairs_from_rg(reference)
            assert marking_sets_of_places(
                graph, net.places
            ) == _reference_marking_sets_of_places(reference, net.places)
            if isinstance(graph._compiled, CompiledBoundedNet):
                bounded_hits += 1
        assert bounded_hits > 20  # the corpus actually exercises the kernel

    def test_safe_nets_still_use_the_one_bit_kernel(self):
        net = token_ring(1)
        graph = build_reachability_graph(net)
        assert isinstance(graph._compiled, CompiledNet)
        assert not isinstance(graph._compiled, CompiledBoundedNet)

    def test_ladder_escalates_field_width(self):
        # 5 tokens exceed the 2-bit capacity (3) but fit 4 bits (15)
        graph = build_reachability_graph(token_ring(5))
        assert isinstance(graph._compiled, CompiledBoundedNet)
        assert graph._compiled.bits == 4
        # 20 tokens exceed 4 bits, fit 8 bits (255)
        graph = build_reachability_graph(token_ring(20))
        assert graph._compiled.bits == 8

    def test_unbounded_counts_fall_back_to_reference(self):
        # 300 tokens exceed every rung of the ladder; the dict-based
        # reference path keeps the exact multiset semantics
        tokens = 300
        assert tokens > (1 << BOUNDED_BITS_LADDER[-1]) - 1
        net = token_ring(tokens)
        graph = build_reachability_graph(net)
        assert graph._compiled is None and graph._packed is None
        assert len(graph) == tokens + 1
        assert count_reachable_markings(net) == tokens + 1

    def test_bounded_count_matches_reference(self):
        for tokens in (2, 3, 5, 9):
            net = token_ring(tokens)
            assert count_reachable_markings(net) == _reference_count_reachable_markings(
                net, net.initial_marking
            )

    def test_state_space_limit_enforced_on_bounded_path(self):
        net = token_ring(9)  # 10 reachable markings
        with pytest.raises(StateSpaceLimitExceeded):
            build_reachability_graph(net, max_markings=4)

    def test_indexed_view_works_on_bounded_graphs(self):
        net = token_ring(3)
        graph = build_reachability_graph(net)
        assert isinstance(graph._compiled, CompiledBoundedNet)
        view = graph.indexed()
        reference = _reference_build_reachability_graph(
            net, net.initial_marking, None
        ).indexed()
        assert view.transition_names == reference.transition_names
        assert view.edges == reference.edges
        assert view.enabled == reference.enabled
        assert view.marking_list == reference.marking_list
