"""Differential tests: compiled bit-packed kernel vs. reference semantics.

The bit-packed kernel (``repro.petri.compiled``, and the packed cube algebra
inside ``repro.boolean``) must be observationally identical to the dict-based
reference implementations.  These tests pin that equivalence on randomized
inputs:

* random (safe and unsafe) Petri nets: reachability graphs, marking counts,
  concurrency pairs and marked regions from the public API must match the
  ``_reference_*`` paths (unsafe nets exercise the automatic fallback);
* random cube pairs and covers: the packed algebra must agree with
  brute-force vertex-set semantics and with dict-based reference
  re-implementations of the seed algorithms.
"""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube
from repro.petri.compiled import CompiledNet, UnsafeNetError, compile_net
from repro.petri.marking import Marking
from repro.petri.net import PetriNet
from repro.petri.reachability import (
    StateSpaceLimitExceeded,
    _reference_build_reachability_graph,
    _reference_concurrent_pairs_from_rg,
    _reference_count_reachable_markings,
    _reference_marking_sets_of_places,
    build_reachability_graph,
    concurrent_pairs_from_rg,
    count_reachable_markings,
    marking_sets_of_places,
)

MAX_MARKINGS = 600


def random_net(rng: random.Random, allow_unsafe: bool = False) -> PetriNet:
    """A random connected-ish place/transition net."""
    net = PetriNet("random")
    num_places = rng.randint(2, 8)
    num_transitions = rng.randint(2, 6)
    places = [f"p{i}" for i in range(num_places)]
    transitions = [f"t{i}" for i in range(num_transitions)]
    for place in places:
        net.add_place(place)
    for transition in transitions:
        net.add_transition(transition)
    for transition in transitions:
        for place in rng.sample(places, rng.randint(1, min(3, num_places))):
            net.add_arc(place, transition)
        for place in rng.sample(places, rng.randint(1, min(3, num_places))):
            net.add_arc(transition, place)
    marked = rng.sample(places, rng.randint(1, num_places))
    for place in marked:
        tokens = 1
        if allow_unsafe and rng.random() < 0.3:
            tokens = rng.randint(2, 3)
        net.set_initial_tokens(place, tokens)
    return net


def graphs_for(net: PetriNet):
    """Public (kernel-backed) and reference graphs, or the common exception."""
    start = net.initial_marking
    try:
        reference = _reference_build_reachability_graph(net, start, MAX_MARKINGS)
    except StateSpaceLimitExceeded:
        with pytest.raises(StateSpaceLimitExceeded):
            build_reachability_graph(net, max_markings=MAX_MARKINGS)
        return None, None
    graph = build_reachability_graph(net, max_markings=MAX_MARKINGS)
    return graph, reference


class TestReachabilityDifferential:
    def test_random_nets_match_reference(self):
        rng = random.Random(20260730)
        compared = 0
        for case in range(60):
            net = random_net(rng, allow_unsafe=case % 3 == 0)
            graph, reference = graphs_for(net)
            if graph is None:
                continue
            compared += 1
            # identical vertex sets and discovery order
            assert graph.markings == reference.markings
            # identical edges, including per-source ordering
            for marking in reference:
                assert graph.successors(marking) == reference.successors(marking)
                assert Counter(graph.predecessors(marking)) == Counter(
                    reference.predecessors(marking)
                )
            assert graph.num_edges() == reference.num_edges()
        assert compared >= 30  # the generator must not blow up on everything

    def test_count_matches_reference(self):
        rng = random.Random(42)
        for case in range(40):
            net = random_net(rng, allow_unsafe=case % 4 == 0)
            try:
                expected = _reference_count_reachable_markings(
                    net, net.initial_marking, MAX_MARKINGS
                )
            except StateSpaceLimitExceeded:
                with pytest.raises(StateSpaceLimitExceeded):
                    count_reachable_markings(net, max_markings=MAX_MARKINGS)
                continue
            assert count_reachable_markings(net, max_markings=MAX_MARKINGS) == expected

    def test_concurrent_pairs_match_reference(self):
        rng = random.Random(7)
        for case in range(40):
            net = random_net(rng, allow_unsafe=case % 5 == 0)
            graph, reference = graphs_for(net)
            if graph is None:
                continue
            assert concurrent_pairs_from_rg(graph) == _reference_concurrent_pairs_from_rg(
                reference
            )

    def test_marked_regions_match_reference(self):
        rng = random.Random(99)
        for _ in range(30):
            net = random_net(rng)
            graph, reference = graphs_for(net)
            if graph is None:
                continue
            places = list(net.places) + ["not_a_place"]
            assert marking_sets_of_places(graph, places) == (
                _reference_marking_sets_of_places(reference, places)
            )

    def test_enabling_and_firing_match_reference(self):
        rng = random.Random(5)
        for _ in range(30):
            net = random_net(rng)
            graph, reference = graphs_for(net)
            if graph is None or graph._compiled is None:
                continue
            compiled = graph._compiled
            for marking in list(reference)[:50]:
                packed = compiled.pack(marking)
                enabled_names = [
                    compiled.transition_names[t]
                    for t in compiled.enabled_transitions(packed)
                ]
                assert enabled_names == net.enabled_transitions(marking)
                for index, name in zip(
                    compiled.enabled_transitions(packed), enabled_names
                ):
                    assert compiled.unpack(compiled.fire(index, packed)) == net.fire(
                        name, marking
                    )

    def test_unsafe_marking_is_rejected_by_pack(self):
        net = PetriNet()
        net.add_place("p", tokens=2)
        net.add_transition("t")
        net.add_arc("p", "t")
        compiled = CompiledNet(net)
        with pytest.raises(UnsafeNetError):
            compiled.pack(net.initial_marking)
        # the public API transparently falls back to multiset semantics
        assert count_reachable_markings(net) == 3

    def test_compile_cache_invalidated_on_mutation(self):
        net = PetriNet()
        net.add_place("p", tokens=1)
        net.add_transition("t")
        net.add_arc("p", "t")
        first = compile_net(net)
        assert compile_net(net) is first
        net.add_place("q")
        net.add_arc("t", "q")
        second = compile_net(net)
        assert second is not first
        assert "q" in second.place_index

    def test_preset_cache_invalidation(self):
        net = PetriNet()
        net.add_place("p")
        net.add_transition("t")
        net.add_arc("p", "t")
        assert net.preset("t") == frozenset({"p"})
        net.add_place("q")
        net.add_arc("q", "t")
        assert net.preset("t") == frozenset({"p", "q"})
        assert net.postset("p") == frozenset({"t"})
        net.remove_transition("t")
        assert net.postset("p") == frozenset()


# ---------------------------------------------------------------------- #
# Packed cube algebra vs. vertex-set semantics
# ---------------------------------------------------------------------- #

VARIABLES = ["a", "b", "c", "d", "e"]


def random_cube(rng: random.Random) -> Cube:
    literals = {
        var: rng.randint(0, 1)
        for var in VARIABLES
        if rng.random() < 0.55
    }
    return Cube(literals)


def vertex_set(cube: Cube) -> frozenset[tuple[int, ...]]:
    return frozenset(
        tuple(v[var] for var in VARIABLES) for v in cube.vertices(VARIABLES)
    )


def cover_vertex_set(cover: Cover) -> frozenset[tuple[int, ...]]:
    result: set[tuple[int, ...]] = set()
    for cube in cover:
        result |= vertex_set(cube)
    return frozenset(result)


def reference_distance(first: Cube, second: Cube) -> int:
    return sum(
        1
        for var, value in first.literals.items()
        if second.literals.get(var) not in (None, value)
    )


def reference_consensus(first: Cube, second: Cube):
    clash = None
    for var, value in first.literals.items():
        existing = second.literals.get(var)
        if existing is not None and existing != value:
            if clash is not None:
                return None
            clash = var
    if clash is None:
        return None
    merged = first.literals
    merged.update(second.literals)
    del merged[clash]
    return Cube(merged)


class TestPackedCubeDifferential:
    def test_pairwise_algebra_matches_vertex_semantics(self):
        rng = random.Random(123)
        for _ in range(300):
            first = random_cube(rng)
            second = random_cube(rng)
            va, vb = vertex_set(first), vertex_set(second)
            product = first.intersect(second)
            assert (va & vb) == (vertex_set(product) if product else frozenset())
            assert first.intersects(second) == bool(va & vb)
            assert first.covers(second) == (vb <= va)
            assert first.distance(second) == reference_distance(first, second)
            assert first.consensus(second) == reference_consensus(first, second)
            super_cube = first.supercube(second)
            assert vertex_set(super_cube) >= (va | vb)
            # minimality: dropping any literal of the supercube is not needed
            for var, value in super_cube.literals.items():
                assert first.value_of(var) == value and second.value_of(var) == value

    def test_cube_equality_and_hash_follow_literals(self):
        rng = random.Random(321)
        for _ in range(200):
            cube = random_cube(rng)
            clone = Cube(dict(cube.literals))
            assert cube == clone and hash(cube) == hash(clone)
            assert cube == dict(cube.literals)
            other = random_cube(rng)
            assert (cube == other) == (cube.literals == other.literals)

    def test_cofactors_match_vertex_semantics(self):
        rng = random.Random(77)
        for _ in range(200):
            cube = random_cube(rng)
            var = rng.choice(VARIABLES)
            value = rng.randint(0, 1)
            reduced = cube.cofactor(var, value)
            expected = {
                v for v in vertex_set(cube) if v[VARIABLES.index(var)] == value
            }
            if reduced is None:
                assert not expected
            else:
                # the cofactor no longer depends on the variable
                assert var not in reduced
                restricted = {
                    v for v in vertex_set(reduced) if v[VARIABLES.index(var)] == value
                }
                assert restricted == expected

    def test_cover_operations_match_vertex_semantics(self):
        rng = random.Random(555)
        for _ in range(120):
            left = Cover([random_cube(rng) for _ in range(rng.randint(0, 4))], VARIABLES)
            right = Cover([random_cube(rng) for _ in range(rng.randint(0, 4))], VARIABLES)
            vl, vr = cover_vertex_set(left), cover_vertex_set(right)
            assert cover_vertex_set(left.union(right)) == vl | vr
            assert cover_vertex_set(left.intersection(right)) == vl & vr
            assert cover_vertex_set(left.sharp(right)) == vl - vr
            assert left.intersects_cover(right) == bool(vl & vr)
            assert left.contains_cover(right) == (vr <= vl)
            assert left.count_minterms() == len(vl)
            assert left.is_tautology() == (len(vl) == 1 << len(VARIABLES))
            probe = random_cube(rng)
            assert left.covers_cube(probe) == (vertex_set(probe) <= vl)
            assert cover_vertex_set(left.complement()) == (
                frozenset(
                    tuple(bits) for bits in _all_vertices()
                ) - vl
            )


def _all_vertices():
    total = 1 << len(VARIABLES)
    for index in range(total):
        yield [(index >> bit) & 1 for bit in range(len(VARIABLES))]


# ---------------------------------------------------------------------- #
# Bitset concurrency relation: soundness against the exact oracle
# ---------------------------------------------------------------------- #


class TestConcurrencySoundness:
    def test_structural_relation_contains_exact_pairs(self):
        from repro.benchmarks import scalable
        from repro.structural.concurrency import compute_concurrency_relation

        for stg in (
            scalable.muller_pipeline(4),
            scalable.independent_cells(3),
            scalable.dining_philosophers(3),
        ):
            relation = compute_concurrency_relation(stg)
            graph = build_reachability_graph(stg.net)
            exact = concurrent_pairs_from_rg(graph)
            structural = relation.transition_pairs()
            missing = exact - structural
            assert not missing, f"structural relation misses exact pairs: {missing}"
