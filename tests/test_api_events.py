"""Tests of the structured event stream and the stage scheduler."""

from __future__ import annotations

import io

import pytest

from repro.api import (
    EventLog,
    Job,
    Pipeline,
    Scheduler,
    Spec,
    SpecError,
    SynthesisOptions,
    make_jobs,
    progress_printer,
    synthesize_many,
)
from repro.api.events import Event, fanout


class TestEvents:
    def test_pipeline_emits_stage_events(self):
        log = EventLog()
        pipeline = Pipeline(on_event=log)
        pipeline.synthesize("sequencer", SynthesisOptions(assume_csc=True))
        statuses = log.stage_statuses("synthesize")
        assert statuses == ["computed"]
        assert log.stage_statuses("analyze") == ["computed"]
        # a repeat resolves from memory
        pipeline.synthesize("sequencer", SynthesisOptions(assume_csc=True))
        assert log.stage_statuses("synthesize") == ["computed", "memory"]

    def test_store_hits_are_visible_in_events(self, tmp_path):
        options = SynthesisOptions(assume_csc=True)
        Pipeline(store=tmp_path / "store").synthesize("fig1", options)
        log = EventLog()
        pipeline = Pipeline(store=tmp_path / "store", on_event=log)
        pipeline.synthesize("fig1", options)
        assert log.stage_statuses("synthesize") == ["store"]
        # the store hit short-circuits the whole chain: the front-end
        # stages are never even consulted
        assert log.stage_statuses("analyze") == []

    def test_progress_printer_renders_one_line_per_event(self):
        stream = io.StringIO()
        callback = progress_printer(stream)
        callback(Event(kind="stage", spec="s", status="computed", stage="analyze", seconds=0.25))
        callback(Event(kind="job", spec="s", status="done", index=2, total=7))
        lines = stream.getvalue().splitlines()
        assert lines[0] == "s analyze computed 0.250s"
        assert lines[1] == "[2/7] s done"

    def test_fanout_combines_callbacks(self):
        first, second = EventLog(), EventLog()
        combined = fanout(first, None, second)
        combined(Event(kind="job", spec="x", status="start"))
        assert len(first) == 1 and len(second) == 1
        assert fanout(None, None) is None
        assert fanout(first) is first


class TestScheduler:
    def test_sequential_batch_emits_job_events(self):
        log = EventLog()
        scheduler = Scheduler(on_event=log)
        jobs = make_jobs(
            ["fig1", "sequencer"], SynthesisOptions(assume_csc=True)
        )
        reports = scheduler.run(jobs)
        assert [r.spec_name for r in reports] == ["fig1", "sequencer"]
        job_events = log.of_kind("job")
        assert [e.status for e in job_events] == ["start", "done", "start", "done"]
        assert job_events[0].index == 1 and job_events[0].total == 2
        # sequential mode also forwards the pipeline's stage events
        assert log.of_kind("stage")

    def test_pool_batch_shares_the_store(self, tmp_path):
        store = tmp_path / "store"
        names = ["fig1", "sequencer", "handshake_seq", "glatch_3"]
        options = SynthesisOptions(assume_csc=True)
        parallel = synthesize_many(names, options, jobs=2, store=store)
        sequential = synthesize_many(names, options)
        assert [r.literals for r in parallel] == [r.literals for r in sequential]

        # the workers persisted their artifacts: a fresh pipeline is warm
        fresh = Pipeline(store=store)
        for name in names:
            fresh.synthesize(name, options)
        assert fresh.stage_calls["synthesize"] == 0

    def test_iter_results_surfaces_errors_without_stopping(self):
        jobs = [
            Job.make("fig1", SynthesisOptions(assume_csc=True)),
            Job.make("fig5", SynthesisOptions()),  # CSC not certified: error
            Job.make("sequencer", SynthesisOptions(assume_csc=True)),
        ]
        log = EventLog()
        results = list(Scheduler(on_event=log).iter_results(jobs))
        assert [r.ok for r in results] == [True, False, True]
        assert results[1].error is not None
        assert "error" in [e.status for e in log.of_kind("job")]

    def test_run_fails_fast_on_the_first_error(self):
        """Matches the pre-scheduler batch loop: abort at the first failure."""
        log = EventLog()
        jobs = [
            Job.make("fig5", SynthesisOptions()),  # CSC not certified: error
            Job.make("fig1", SynthesisOptions(assume_csc=True)),
        ]
        with pytest.raises(Exception):
            Scheduler(on_event=log).run(jobs)
        # the second job never ran
        assert [e.status for e in log.of_kind("job")] == ["start", "error"]

    def test_job_make_rejects_unknown_specs(self):
        with pytest.raises(SpecError):
            Job.make("definitely_not_a_benchmark")

    def test_scheduler_reuses_a_shared_pipeline(self):
        pipeline = Pipeline()
        scheduler = Scheduler(pipeline=pipeline)
        spec = Spec.from_benchmark("sequencer")
        options = SynthesisOptions(assume_csc=True)
        scheduler.run(make_jobs([spec, spec], options))
        assert pipeline.stage_calls["synthesize"] == 1

    def test_run_with_pipeline_and_store_persists(self, tmp_path):
        """repro.api.run must honour store= even when reusing a pipeline."""
        from repro.api import run

        pipeline = Pipeline()
        store = tmp_path / "store"
        run("fig1", assume_csc=True, pipeline=pipeline, store=store)
        assert pipeline.store is not None
        assert pipeline.store.stats()["entries"] > 0

    def test_pool_workers_inherit_a_custom_code_version(self, tmp_path):
        """Workers must rebuild the parent's store stamp, not the default."""
        from repro.api import ArtifactStore

        store = ArtifactStore(tmp_path / "store", code_version="pinned-test-1")
        options = SynthesisOptions(assume_csc=True)
        Scheduler(jobs=2, store=store).run(make_jobs(["fig1", "sequencer"], options))
        # the parent handle (same stamp) sees the worker-written entries
        warm = Pipeline(store=ArtifactStore(tmp_path / "store", code_version="pinned-test-1"))
        warm.synthesize("fig1", options)
        assert warm.stage_calls["synthesize"] == 0

    def test_explicit_pipeline_with_store_still_persists(self, tmp_path):
        """An explicit store is attached to a reused pipeline, not dropped."""
        pipeline = Pipeline()
        store = tmp_path / "store"
        synthesize_many(
            ["fig1"], SynthesisOptions(assume_csc=True),
            pipeline=pipeline, store=store,
        )
        assert pipeline.store is not None
        assert pipeline.store.stats()["entries"] > 0
        fresh = Pipeline(store=store)
        fresh.synthesize("fig1", SynthesisOptions(assume_csc=True))
        assert fresh.stage_calls["synthesize"] == 0
