"""Tests of the unified Spec front door: constructors, hashing, errors."""

from __future__ import annotations

import pickle

import pytest

from repro.api import Spec, SpecError
from repro.benchmarks.classic import load_classic
from repro.stg.stg import STG
from repro.stg.writer import write_g


class TestConstructors:
    def test_from_benchmark(self):
        spec = Spec.from_benchmark("handshake_seq")
        assert spec.name == "handshake_seq"
        assert spec.origin == "benchmark"
        assert isinstance(spec.stg, STG)

    def test_from_stg_keeps_the_instance(self):
        stg = load_classic("sequencer")
        spec = Spec.from_stg(stg)
        assert spec.stg is stg

    def test_from_text(self):
        text = write_g(load_classic("handshake_seq"))
        spec = Spec.from_text(text)
        assert spec.stg.non_input_signals == ["ack"]
        assert spec.origin == "text"

    def test_from_file(self, tmp_path):
        path = tmp_path / "seq.g"
        path.write_text(write_g(load_classic("sequencer")))
        spec = Spec.from_file(path)
        # the .model directive takes precedence over the file name
        assert spec.name == "sequencer"
        assert spec.origin == "file"
        assert sorted(spec.stg.non_input_signals) == ["ack", "r1", "r2"]

    def test_load_dispatch(self, tmp_path):
        assert Spec.load("handshake_seq").origin == "benchmark"
        assert Spec.load(load_classic("sequencer")).origin == "stg"
        text = write_g(load_classic("handshake_seq"))
        assert Spec.load(text).origin == "text"
        path = tmp_path / "hs.g"
        path.write_text(text)
        assert Spec.load(str(path)).origin == "file"
        spec = Spec.load("fig1")
        assert Spec.load(spec) is spec

    def test_load_path_containing_dot_graph(self, tmp_path):
        """A file path with '.graph' in its name is a path, not inline text."""
        path = tmp_path / "my.graph.g"
        path.write_text(write_g(load_classic("handshake_seq")))
        spec = Spec.load(str(path))
        assert spec.origin == "file"
        assert spec.stg.non_input_signals == ["ack"]


class TestContentHash:
    def test_stable_across_load_paths(self, tmp_path):
        by_name = Spec.from_benchmark("sequencer")
        by_stg = Spec.from_stg(load_classic("sequencer"))
        by_text = Spec.from_text(by_name.text)
        assert by_name.content_hash == by_stg.content_hash == by_text.content_hash
        assert by_name == by_stg
        assert len({by_name, by_stg, by_text}) == 1

    def test_formatting_does_not_change_the_hash(self):
        base = Spec.from_benchmark("handshake_seq")
        noisy = base.text.replace("\n.graph", "\n# a comment\n.graph")
        assert Spec.from_text(noisy).content_hash == base.content_hash

    def test_different_specs_different_hash(self):
        assert (
            Spec.from_benchmark("handshake_seq").content_hash
            != Spec.from_benchmark("sequencer").content_hash
        )


class TestErrors:
    def test_unknown_benchmark(self):
        with pytest.raises(SpecError, match="neither an existing"):
            Spec.load("definitely_not_registered")

    def test_missing_file(self):
        with pytest.raises(SpecError, match="cannot read"):
            Spec.from_file("/nonexistent/path/spec.g")

    def test_malformed_text(self):
        with pytest.raises(SpecError, match="malformed"):
            Spec.from_text(".model broken\n.inputs a\n.outputs b\n.end\n")

    def test_wrong_type(self):
        with pytest.raises(SpecError):
            Spec.load(42)
        with pytest.raises(SpecError):
            Spec.from_stg("not an stg")


class TestPickle:
    def test_round_trip_drops_and_rebuilds_the_stg(self):
        spec = Spec.from_benchmark("sequencer")
        _ = spec.stg  # force the parsed handle
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.content_hash == spec.content_hash
        assert clone.name == spec.name
        # the STG is re-parsed lazily in the unpickling process
        assert clone.stg.non_input_signals == spec.stg.non_input_signals
