"""Differential verification of mapped netlists across the registry.

The acceptance gate of the gate-level flow: for every registry benchmark
with an enumerable state space, the event simulation of the mapped netlist
must agree with ``Circuit.next_values`` on all reachable state codes, for
every built-in gate library.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.api import Pipeline, run
from repro.api.spec import Spec
from repro.benchmarks.registry import get_benchmark, list_benchmarks
from repro.gates import GateKind, verify_mapped_netlist
from repro.petri.reachability import (
    StateSpaceLimitExceeded,
    count_reachable_markings,
)
from repro.synthesis import SynthesisOptions, map_circuit, synthesize

#: benchmarks beyond this marking count are excluded from exhaustive
#: simulation (the state-based verify stage has the same practical bound)
ENUMERATION_LIMIT = 5_000


def _enumerable_benchmarks() -> list[str]:
    names = []
    for name in list_benchmarks():
        try:
            count_reachable_markings(get_benchmark(name).net, max_markings=ENUMERATION_LIMIT)
        except StateSpaceLimitExceeded:
            continue
        names.append(name)
    return names


ENUMERABLE = _enumerable_benchmarks()

_pipeline = Pipeline()


class TestRegistryDifferential:
    @pytest.mark.parametrize("name", ENUMERABLE)
    def test_mapped_netlist_matches_behaviour_on_all_reachable_codes(self, name):
        spec = Spec.from_benchmark(name)
        options = SynthesisOptions(level=5, assume_csc=True)
        artifact = _pipeline.verify_mapped(spec, options)
        assert artifact.equivalent, (name, artifact.mismatches[:3])
        assert artifact.checked_codes > 0

    @pytest.mark.parametrize("library", ["two-input-only", "latch-free"])
    def test_alternative_libraries_stay_equivalent(self, library):
        for name in ("glatch_3", "sequencer", "parallelizer", "muller_pipeline_4"):
            spec = Spec.from_benchmark(name)
            options = SynthesisOptions(level=5, assume_csc=True)
            artifact = _pipeline.verify_mapped(spec, options, library=library)
            assert artifact.equivalent, (name, library, artifact.mismatches[:3])

    def test_level_one_region_architecture_is_equivalent(self):
        for name in ("fig1", "sequencer", "rw_port"):
            spec = Spec.from_benchmark(name)
            options = SynthesisOptions(level=1, assume_csc=True)
            artifact = _pipeline.verify_mapped(spec, options)
            assert artifact.equivalent, (name, artifact.mismatches[:3])


class TestVerifierCatchesBrokenNetlists:
    def test_swapped_latch_inputs_are_detected(self):
        stg = get_benchmark("glatch_3")
        result = synthesize(stg, SynthesisOptions(level=2))
        mapped = map_circuit(result.circuit)
        netlist = mapped.netlist
        latches = [g for g in netlist.gates if g.kind is not GateKind.SOP]
        if not latches:
            pytest.skip("no memory element at this level")
        broken = latches[0]
        swapped = dataclasses.replace(
            broken, inputs=(broken.inputs[1], broken.inputs[0])
        )
        netlist.gates[netlist.gates.index(broken)] = swapped
        report = verify_mapped_netlist(stg, result.circuit, netlist)
        assert not report.equivalent
        assert report.mismatch_count > 0

    def test_dropped_term_is_detected(self):
        stg = get_benchmark("sequencer")
        result = synthesize(stg, SynthesisOptions(level=5))
        mapped = map_circuit(result.circuit)
        netlist = mapped.netlist
        for index, gate in enumerate(netlist.gates):
            if gate.kind is GateKind.SOP and gate.terms:
                # invert the first literal of the first term
                (pin, polarity), *rest = gate.terms[0]
                terms = ((pin, 1 - polarity), *rest), *gate.terms[1:]
                netlist.gates[index] = dataclasses.replace(gate, terms=terms)
                break
        report = verify_mapped_netlist(stg, result.circuit, netlist)
        assert not report.equivalent


class TestPipelineStage:
    def test_verify_mapped_reuses_the_map_stage(self):
        pipeline = Pipeline()
        spec = Spec.from_benchmark("sequencer")
        pipeline.verify_mapped(spec)
        assert pipeline.stage_calls["map"] == 1
        assert pipeline.stage_calls["verify_mapped"] == 1
        # a second call is fully cached
        pipeline.verify_mapped(spec)
        assert pipeline.stage_calls["verify_mapped"] == 1
        # mapping with the same (default) library is shared
        pipeline.map(spec)
        assert pipeline.stage_calls["map"] == 1

    def test_run_with_verify_mapped_populates_the_report(self):
        report = run("glatch_3", level=2, verify=True, verify_mapped=True)
        assert report.mapping is not None
        assert report.netlist is not None
        assert report.mapped_verification.equivalent
        data = report.to_dict()
        assert data["verify_mapped"]["equivalent"] is True
        assert data["map"]["gates"] == report.mapping.gate_count
        assert "equivalent: True" in report.describe()

    def test_bounded_call_is_not_served_from_the_unbounded_cache(self):
        # the differential check enumerates the state space itself, so the
        # marking bound must stay in the memo key even for the structural
        # backend (unlike `verify`, whose compute ignores the bound)
        pipeline = Pipeline()
        spec = Spec.from_benchmark("glatch_3")
        assert pipeline.verify_mapped(spec).equivalent
        with pytest.raises(StateSpaceLimitExceeded):
            pipeline.verify_mapped(spec, max_markings=1)

    def test_artifact_to_dict_is_json_clean(self):
        spec = Spec.from_benchmark("handshake_seq")
        artifact = _pipeline.verify_mapped(spec)
        data = artifact.to_dict()
        assert data["stage"] == "verify_mapped"
        assert data["library"] == "generic-cmos"
        assert isinstance(data["checked_codes"], int)
