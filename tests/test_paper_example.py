"""The running example of the paper, end to end (Tables I–IV narrative).

The Fig. 1 STG of the paper is re-created (not copied — see DESIGN.md); these
tests walk the same story the paper tells about it: regions, cover cubes,
structural conflicts corresponding to a USC-but-not-CSC code sharing, and a
speed-independent implementation of the output signals.
"""

from __future__ import annotations

from repro.petri.properties import is_free_choice, is_live, is_safe
from repro.petri.reachability import build_reachability_graph
from repro.petri.smcover import compute_sm_components, compute_sm_cover
from repro.statebased.coding import check_csc, check_usc
from repro.statebased.regions import compute_signal_regions
from repro.stg.consistency import check_consistency_state_based
from repro.structural.approximation import approximate_signal_regions
from repro.structural.consistency import check_consistency_structural
from repro.structural.covercube import cover_cube_table
from repro.synthesis import SynthesisOptions, synthesize
from repro.verify import verify_speed_independence


class TestRunningExample:
    def test_specification_class(self, fig1):
        graph = build_reachability_graph(fig1.net)
        assert is_free_choice(fig1.net)
        assert is_safe(fig1.net, graph)
        assert is_live(fig1.net, graph)
        assert len(graph) == 11

    def test_consistency_both_ways(self, fig1):
        assert check_consistency_state_based(fig1).consistent
        assert check_consistency_structural(fig1).consistent

    def test_usc_conflict_but_csc_holds(self, fig1):
        """Section II-D: the example violates USC but satisfies CSC."""
        assert not check_usc(fig1)
        assert check_csc(fig1)

    def test_signal_regions_table(self, fig1):
        """Table I analogue: excitation/quiescent regions of output d."""
        regions = compute_signal_regions(fig1)
        assert len(fig1.rising_transitions("d")) == 2  # two rising ERs
        assert len(regions.er("d+/1")) == 1
        assert len(regions.er("d+/2")) == 2  # the concurrent c pulse doubles it
        assert len(regions.ger("d", "-")) == 1
        assert regions.gqr("d", 1)
        # ER(d-) is the single marking of the merge place
        er_minus = regions.er("d-")
        assert len(er_minus) == 1
        assert next(iter(er_minus)).marked_places == frozenset({"pm"})

    def test_cover_cube_table(self, fig1):
        """Table III analogue: single-cube approximations per place."""
        approximation = approximate_signal_regions(fig1)
        table = cover_cube_table(fig1, approximation.place_cubes)
        assert table["p0"] == "0000"
        assert table["pa2"] == "1010"
        assert table["pm"] == "0001"
        # concurrent branch places leave the concurrent signal unconstrained
        assert table["pb1"].count("-") == 1

    def test_sm_cover_exists(self, fig1):
        cover = compute_sm_cover(fig1.net, compute_sm_components(fig1.net))
        covered = set()
        for component in cover:
            covered |= component.places
        assert covered == set(fig1.places)

    def test_region_approximations_match_exact_regions(self, fig1):
        approximation = approximate_signal_regions(fig1)
        regions = compute_signal_regions(fig1)
        for transition in fig1.transitions_of_signal("d"):
            exact = regions.er_codes(transition)
            assert approximation.er_cover(transition).contains_cover(exact)

    def test_synthesis_and_verification(self, fig1):
        result = synthesize(fig1, SynthesisOptions(level=5))
        report = verify_speed_independence(fig1, result.circuit)
        assert report.speed_independent
        assert report.checked_markings == 11
        # structural statistics record the certified CSC
        assert result.statistics["csc_certified"]
