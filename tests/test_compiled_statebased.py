"""Differential tests: compiled state-based engine vs. reference oracles.

PR 4 ports the state-based back end (encoding, regions, next-state, coding,
consistency, QPS walks, gate-netlist evaluation) onto machine integers.  The
dict/set-based implementations are retained as ``_reference_*`` oracles;
these tests pin the compiled paths to them on randomized STGs (including
nets that force the unsafe-net fallback of the reachability builder) and on
registry benchmarks, mirroring the pattern of ``test_compiled_kernel.py``.
"""

from __future__ import annotations

import random

import pytest

from repro.benchmarks.registry import get_benchmark
from repro.gates import GateLevelSimulator, GateNetlist
from repro.gates.verify import (
    _reference_verify_mapped_netlist,
    verify_mapped_netlist,
)
from repro.petri.invariants import place_invariants
from repro.petri.reachability import (
    StateSpaceLimitExceeded,
    build_reachability_graph,
)
from repro.statebased.coding import (
    _reference_analyze_state_coding,
    analyze_state_coding,
)
from repro.statebased.nextstate import next_state_value
from repro.statebased.regions import (
    _reference_signal_region_sets,
    compute_signal_regions,
)
from repro.stg.consistency import (
    _reference_adjacent_transition_pairs,
    _reference_find_autoconcurrent_pairs,
    _reference_find_semimodularity_violations,
    adjacent_transition_pairs,
    find_autoconcurrent_pairs,
    find_semimodularity_violations,
)
from repro.stg.encoding import (
    EncodingError,
    _reference_encode_reachability_graph,
    _reference_infer_initial_values,
    encode_reachability_graph,
    infer_initial_values,
)
from repro.stg.signals import SignalType
from repro.stg.stg import STG
from repro.structural.qps import (
    _directional_place_walk,
    compute_backward_place_sets,
    compute_qps,
)
from repro.synthesis import SynthesisOptions, map_circuit, synthesize

MAX_MARKINGS = 400

#: registry benchmarks with enumerable graphs and consistent encodings
CONSISTENT_BENCHMARKS = (
    "fig1",
    "fig6",
    "glatch_3",
    "sequencer",
    "muller_pipeline_4",
    "philosophers_3",
)


# the randomized-STG machinery now lives in the corpus generator; these
# differential tests and the fuzzing farm draw from one implementation
from repro.corpus.generator import random_stg  # noqa: E402


def graph_for(stg: STG):
    """Bounded reachability graph, or None when the state space blows up."""
    try:
        return build_reachability_graph(stg.net, max_markings=MAX_MARKINGS)
    except StateSpaceLimitExceeded:
        return None


def usable_cases(rng: random.Random, count: int, unsafe_every: int = 4):
    """Yield ``count`` random (stg, graph) pairs with enumerable graphs."""
    produced = 0
    for attempt in range(count * 20):
        stg = random_stg(rng, allow_unsafe=attempt % unsafe_every == 0)
        graph = graph_for(stg)
        if graph is None:
            continue
        yield stg, graph
        produced += 1
        if produced >= count:
            return
    raise AssertionError(f"generator produced only {produced}/{count} cases")


def encoded_pair(stg: STG, graph):
    """Compiled and reference encodings (non-strict) over the same graph."""
    compiled = encode_reachability_graph(stg, graph, strict=False)
    reference = _reference_encode_reachability_graph(stg, graph, strict=False)
    return compiled, reference


# ---------------------------------------------------------------------- #
# Encoding
# ---------------------------------------------------------------------- #


class TestEncodingDifferential:
    def test_random_codes_match_reference(self):
        rng = random.Random(20260731)
        for stg, graph in usable_cases(rng, 30):
            assert infer_initial_values(stg, graph) == (
                _reference_infer_initial_values(stg, graph)
            )
            compiled, reference = encoded_pair(stg, graph)
            assert compiled.codes() == reference.codes()
            assert compiled.used_codes() == reference.used_codes()
            for marking in graph.markings:
                assert compiled.code_of(marking) == reference.code_of(marking)
                assert compiled.code_string(marking) == reference.code_string(marking)
            # strict mode: both raise, or both agree
            try:
                strict_reference = _reference_encode_reachability_graph(stg, graph)
            except EncodingError:
                with pytest.raises(EncodingError):
                    encode_reachability_graph(stg, graph)
            else:
                strict_compiled = encode_reachability_graph(stg, graph)
                assert strict_compiled.codes() == strict_reference.codes()

    def test_registry_codes_match_reference(self):
        for name in CONSISTENT_BENCHMARKS:
            stg = get_benchmark(name)
            graph = build_reachability_graph(stg.net)
            compiled = encode_reachability_graph(stg, graph)
            reference = _reference_encode_reachability_graph(stg, graph)
            assert compiled.codes() == reference.codes()

    def test_noncopying_accessors_share_state(self):
        stg = get_benchmark("fig1")
        encoded = encode_reachability_graph(stg)
        assert encoded.packed_codes is encoded.packed_codes
        marking = encoded.markings[0]
        assert encoded.code_view(marking) is encoded.code_view(marking)
        # code_of stays a defensive copy
        assert encoded.code_of(marking) is not encoded.code_view(marking)
        code = encoded.code_of(marking)
        assert encoded.markings_with_code(code)
        partial = {stg.signal_names[0]: code[stg.signal_names[0]]}
        expected = [
            m for m in encoded.markings
            if encoded.code_of(m)[stg.signal_names[0]] == partial[stg.signal_names[0]]
        ]
        assert encoded.markings_with_code(partial) == expected


# ---------------------------------------------------------------------- #
# Regions and next-state functions
# ---------------------------------------------------------------------- #


def _region_sets_match(stg, regions, reference):
    for transition in reference["er"]:
        assert regions.er(transition) == reference["er"][transition], transition
        assert regions.qr(transition) == reference["qr"][transition], transition
        assert regions.rqr(transition) == reference["rqr"][transition], transition
        assert regions.br(transition) == reference["br"][transition], transition
    for signal in stg.signal_names:
        for direction, value in (("+", 1), ("-", 0)):
            ger = set()
            gqr = set()
            for transition in stg.transitions_by_direction(signal, direction):
                if transition in reference["er"]:
                    ger |= reference["er"][transition]
                    gqr |= reference["qr"][transition]
            assert regions.ger(signal, direction) == ger
            assert regions.gqr(signal, value) == gqr


class TestRegionsDifferential:
    def test_random_regions_match_reference(self):
        rng = random.Random(42)
        for stg, graph in usable_cases(rng, 25, unsafe_every=5):
            encoded = encode_reachability_graph(stg, graph, strict=False)
            regions = compute_signal_regions(stg, encoded)
            reference = _reference_signal_region_sets(stg, encoded)
            _region_sets_match(stg, regions, reference)

    def test_registry_regions_match_reference(self):
        for name in CONSISTENT_BENCHMARKS:
            stg = get_benchmark(name)
            encoded = encode_reachability_graph(stg)
            regions = compute_signal_regions(stg, encoded)
            reference = _reference_signal_region_sets(stg, encoded)
            _region_sets_match(stg, regions, reference)

    def test_region_covers_match_region_codes(self):
        for name in ("fig1", "glatch_3", "sequencer"):
            stg = get_benchmark(name)
            encoded = encode_reachability_graph(stg)
            regions = compute_signal_regions(stg, encoded)
            order = stg.signal_names
            for transition in stg.transitions:
                cover = regions.er_codes(transition)
                expected = {
                    tuple(encoded.code_of(m)[s] for s in order)
                    for m in regions.er(transition)
                }
                actual = set()
                for cube in cover:
                    for vertex in cube.vertices(order):
                        actual.add(tuple(vertex[s] for s in order))
                assert actual == expected, transition

    def test_next_state_values_match_region_membership(self):
        for name in CONSISTENT_BENCHMARKS:
            stg = get_benchmark(name)
            encoded = encode_reachability_graph(stg)
            regions = compute_signal_regions(stg, encoded)
            reference = _reference_signal_region_sets(stg, encoded)
            for signal in stg.non_input_signals:
                on = set()
                off = set()
                for transition in stg.transitions_by_direction(signal, "+"):
                    on |= reference["er"][transition]
                    on |= reference["qr"][transition]
                for transition in stg.transitions_by_direction(signal, "-"):
                    off |= reference["er"][transition]
                    off |= reference["qr"][transition]
                for marking in encoded.markings:
                    expected = 1 if marking in on else (0 if marking in off else None)
                    assert next_state_value(stg, regions, signal, marking) == expected
                    index = encoded.index(marking)
                    assert next_state_value(stg, regions, signal, index) == expected

    def test_noncopying_region_accessors(self):
        stg = get_benchmark("fig1")
        regions = compute_signal_regions(stg)
        transition = stg.transitions[0]
        assert isinstance(regions.er_bits(transition), int)
        # set accessors materialise fresh sets (the historical contract)
        assert regions.er(transition) is not regions.er(transition)
        assert regions.er(transition) == regions.excitation[transition]


# ---------------------------------------------------------------------- #
# State coding (USC / CSC)
# ---------------------------------------------------------------------- #


def _conflict_key(conflict):
    return (
        conflict.code,
        frozenset((conflict.first, conflict.second)),
        conflict.conflicting_signals,
    )


class TestCodingDifferential:
    def test_random_coding_matches_reference(self):
        rng = random.Random(7)
        for stg, graph in usable_cases(rng, 25, unsafe_every=5):
            encoded = encode_reachability_graph(stg, graph, strict=False)
            compiled = analyze_state_coding(stg, encoded)
            reference = _reference_analyze_state_coding(stg, encoded)
            assert compiled.satisfies_usc == reference.satisfies_usc
            assert compiled.satisfies_csc == reference.satisfies_csc
            assert (
                [_conflict_key(c) for c in compiled.usc_conflicts]
                == [_conflict_key(c) for c in reference.usc_conflicts]
            )
            assert (
                [_conflict_key(c) for c in compiled.csc_conflicts]
                == [_conflict_key(c) for c in reference.csc_conflicts]
            )

    def test_registry_coding_matches_reference(self):
        for name in ("fig1", "fig5", "fig6", "latch_ctrl", "glatch_3"):
            stg = get_benchmark(name)
            encoded = encode_reachability_graph(stg)
            compiled = analyze_state_coding(stg, encoded)
            reference = _reference_analyze_state_coding(stg, encoded)
            assert compiled.satisfies_usc == reference.satisfies_usc
            assert compiled.satisfies_csc == reference.satisfies_csc
            assert (
                [_conflict_key(c) for c in compiled.csc_conflicts]
                == [_conflict_key(c) for c in reference.csc_conflicts]
            )


# ---------------------------------------------------------------------- #
# Consistency / semimodularity / next relation
# ---------------------------------------------------------------------- #


class TestConsistencyDifferential:
    def test_random_checks_match_reference(self):
        rng = random.Random(99)
        for stg, graph in usable_cases(rng, 25):
            assert find_autoconcurrent_pairs(stg, graph) == (
                _reference_find_autoconcurrent_pairs(stg, graph)
            )
            assert find_semimodularity_violations(stg, graph) == (
                _reference_find_semimodularity_violations(stg, graph)
            )
            assert adjacent_transition_pairs(stg, graph) == (
                _reference_adjacent_transition_pairs(stg, graph)
            )

    def test_registry_checks_match_reference(self):
        for name in CONSISTENT_BENCHMARKS:
            stg = get_benchmark(name)
            graph = build_reachability_graph(stg.net)
            assert find_autoconcurrent_pairs(stg, graph) == (
                _reference_find_autoconcurrent_pairs(stg, graph)
            )
            assert find_semimodularity_violations(stg, graph) == (
                _reference_find_semimodularity_violations(stg, graph)
            )
            assert adjacent_transition_pairs(stg, graph) == (
                _reference_adjacent_transition_pairs(stg, graph)
            )


# ---------------------------------------------------------------------- #
# QPS / BPS mask walks
# ---------------------------------------------------------------------- #


def _reference_qps(stg, next_relation=None):
    result = {}
    for transition in stg.transitions:
        forward, boundary = _directional_place_walk(stg, transition, forward=True)
        successors = (
            next_relation.get(transition, set())
            if next_relation is not None
            else boundary
        )
        reach_back = set()
        for successor in successors:
            places, _ = _directional_place_walk(stg, successor, forward=False)
            reach_back |= places
        result[transition] = forward & reach_back
    return result


def _reference_bps(stg, next_relation=None):
    predecessors_of: dict[str, set[str]] = {}
    if next_relation is not None:
        for source, successors in next_relation.items():
            for successor in successors:
                predecessors_of.setdefault(successor, set()).add(source)
    result = {}
    for transition in stg.transitions:
        backward, boundary = _directional_place_walk(stg, transition, forward=False)
        predecessors = (
            predecessors_of.get(transition, set())
            if next_relation is not None
            else boundary
        )
        reach_forward = set()
        for predecessor in predecessors:
            places, _ = _directional_place_walk(stg, predecessor, forward=True)
            reach_forward |= places
        result[transition] = backward & reach_forward
    return result


class TestQpsDifferential:
    def test_random_walks_match_reference(self):
        rng = random.Random(555)
        for case in range(40):
            stg = random_stg(rng)
            assert compute_qps(stg) == _reference_qps(stg)
            assert compute_backward_place_sets(stg) == _reference_bps(stg)

    def test_registry_walks_match_reference(self):
        for name in CONSISTENT_BENCHMARKS:
            stg = get_benchmark(name)
            graph = build_reachability_graph(stg.net)
            next_relation = adjacent_transition_pairs(stg, graph)
            assert compute_qps(stg, next_relation=next_relation) == (
                _reference_qps(stg, next_relation)
            )
            assert compute_backward_place_sets(stg, next_relation=next_relation) == (
                _reference_bps(stg, next_relation)
            )


# ---------------------------------------------------------------------- #
# Compiled gate-netlist evaluation
# ---------------------------------------------------------------------- #


def _random_code(rng, stg):
    return {signal: rng.randint(0, 1) for signal in stg.signal_names}


class TestNetlistEvaluatorDifferential:
    def test_settle_matches_event_driven_reference(self):
        rng = random.Random(123)
        for name in ("sequencer", "glatch_3", "parallelizer"):
            for library in ("generic-cmos", "two-input-only", "latch-free"):
                stg = get_benchmark(name)
                result = synthesize(stg, SynthesisOptions(level=5, assume_csc=True))
                netlist = map_circuit(result.circuit, library).netlist
                simulator = GateLevelSimulator(netlist)
                for _ in range(40):
                    code = _random_code(rng, stg)
                    assert simulator.settle(code) == simulator._reference_settle(code)

    def test_verify_mapped_matches_reference(self):
        for name in ("sequencer", "glatch_3", "muller_pipeline_4"):
            stg = get_benchmark(name)
            result = synthesize(stg, SynthesisOptions(level=5, assume_csc=True))
            netlist = map_circuit(result.circuit).netlist
            compiled = verify_mapped_netlist(stg, result.circuit, netlist)
            reference = _reference_verify_mapped_netlist(stg, result.circuit, netlist)
            assert compiled.equivalent and reference.equivalent
            assert compiled.checked_codes == reference.checked_codes
            assert compiled.checked_markings == reference.checked_markings

    def test_verify_mismatch_parity_on_corrupted_netlist(self):
        stg = get_benchmark("sequencer")
        result = synthesize(stg, SynthesisOptions(level=5, assume_csc=True))
        netlist = map_circuit(result.circuit).netlist
        data = netlist.to_json()
        corrupted = None
        for gate in data["gates"]:
            if gate["kind"] == "sop" and gate["terms"] and gate["terms"][0]:
                gate["terms"][0][0][1] = 1 - gate["terms"][0][0][1]
                corrupted = GateNetlist.from_json(data)
                break
        assert corrupted is not None
        compiled = verify_mapped_netlist(stg, result.circuit, corrupted)
        reference = _reference_verify_mapped_netlist(stg, result.circuit, corrupted)
        assert not compiled.equivalent
        assert compiled.mismatch_count == reference.mismatch_count
        assert compiled.mismatches == reference.mismatches


# ---------------------------------------------------------------------- #
# Unsafe-net fallback: the whole compiled chain on a reference-built graph
# ---------------------------------------------------------------------- #


def unsafe_stg() -> STG:
    stg = STG("unsafe")
    stg.add_signal("a", SignalType.OUTPUT)
    stg.add_transition("a+")
    stg.add_transition("a-")
    for place in ("p", "q"):
        stg.add_place(place)
    stg.add_arc("p", "a+")
    stg.add_arc("a+", "q")
    stg.add_arc("q", "a-")
    stg.add_arc("a-", "p")
    stg.set_marking(["p"])
    stg.net.set_initial_tokens("p", 2)
    return stg


class TestUnsafeFallback:
    def test_compiled_chain_on_fallback_graph(self):
        stg = unsafe_stg()
        graph = build_reachability_graph(stg.net)
        # the safe kernel refused the net; the k-bounded kernel took over
        # and the graph still carries a packed payload
        from repro.petri.compiled import CompiledBoundedNet

        assert isinstance(graph._compiled, CompiledBoundedNet)
        assert graph._packed is not None
        compiled, reference = encoded_pair(stg, graph)
        assert compiled.codes() == reference.codes()
        regions = compute_signal_regions(stg, compiled)
        oracle = _reference_signal_region_sets(stg, compiled)
        _region_sets_match(stg, regions, oracle)
        report = analyze_state_coding(stg, compiled)
        oracle_report = _reference_analyze_state_coding(stg, compiled)
        assert report.satisfies_usc == oracle_report.satisfies_usc
        assert report.satisfies_csc == oracle_report.satisfies_csc
        assert find_autoconcurrent_pairs(stg, graph) == (
            _reference_find_autoconcurrent_pairs(stg, graph)
        )
        assert find_semimodularity_violations(stg, graph) == (
            _reference_find_semimodularity_violations(stg, graph)
        )


# ---------------------------------------------------------------------- #
# place_invariants memoisation
# ---------------------------------------------------------------------- #


class TestInvariantMemoisation:
    def test_cache_hits_and_invalidates(self):
        stg = get_benchmark("fig1")
        net = stg.net
        first = place_invariants(net)
        assert net._invariants_cache[0][0] == getattr(net, "_version", None)
        second = place_invariants(net)
        assert first == second
        # results are defensive copies
        second[0]["__mutated__"] = 1
        assert place_invariants(net) == first
        # structural mutation invalidates the cache
        net.add_place("fresh_place")
        net.add_transition("fresh_t")
        net.add_arc("fresh_place", "fresh_t")
        net.add_arc("fresh_t", "fresh_place")
        third = place_invariants(net)
        assert any("fresh_place" in invariant for invariant in third)
