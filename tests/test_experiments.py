"""Smoke tests of the experiment harness (small configurations).

The full sweeps live under ``benchmarks/``; these tests run reduced versions
so that the table/figure code paths are exercised by the unit-test run.
"""

from __future__ import annotations

from repro.api import Pipeline
from repro.benchmarks import scalable
from repro.benchmarks.classic import classic_names
from repro.experiments.fig13 import LEVELS, fig13_per_benchmark, fig13_rows
from repro.experiments.reporting import format_table
from repro.experiments.table5 import table5_rows
from repro.experiments.table6 import table6_rows
from repro.experiments.table7 import table7_rows


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 222, "b": "z"}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "222" in text and "xy" in text

    def test_format_empty(self):
        assert "(no rows)" in format_table([], title="t")


#: benchmarks where M3's complete-cover detection trades literals for the
#: C-latch removal (the pre-mapping literal count rises; TM recovers the
#: area).  Pinned exactly below so any behaviour change is caught.
FIG13_NON_MONOTONIC = {"completion": [4, 4, 6, 6, 6]}


class TestFig13:
    def test_levels_improve_on_a_small_set(self):
        rows = fig13_rows(["handshake_seq", "sequencer", "converter_2to4"])
        assert [row["level"] for row in rows] == list(LEVELS)
        literals = {row["level"]: row["avg_literals"] for row in rows}
        # the full minimization never loses against the initial covers
        assert literals["M5"] <= literals["M1"] + 1e-9
        assert literals["M3"] <= literals["M2"] + 1e-9
        assert rows[0]["normalized_area"] == 1.0
        assert all(row["avg_area"] > 0 for row in rows)

    def test_per_benchmark_literals_monotonic_m1_to_m5(self):
        """The level sweep never grows the circuits on the paper examples.

        Pins the cached-pipeline sweep to the historical per-level results:
        every extra minimization step is literal-count non-increasing, with
        the single known exception of ``completion`` (see
        ``FIG13_NON_MONOTONIC``), whose exact progression is asserted so a
        silent behaviour change cannot hide behind the exemption.
        """
        names = classic_names(synthesizable_only=True) + ["fig1", "glatch_3"]
        per_benchmark = fig13_per_benchmark(names)
        sweep = ("M1", "M2", "M3", "M4", "M5")
        for name, levels in per_benchmark.items():
            literals = [levels[level]["literals"] for level in sweep]
            if name in FIG13_NON_MONOTONIC:
                assert literals == FIG13_NON_MONOTONIC[name], name
                continue
            for earlier, later in zip(literals, literals[1:]):
                assert later <= earlier, (name, literals)

    def test_sweep_reuses_the_analysis_front_end(self):
        """One analyze/refine per benchmark across all six level points."""
        pipeline = Pipeline()
        names = ["handshake_seq", "sequencer"]
        fig13_per_benchmark(names, pipeline)
        assert pipeline.stage_calls["analyze"] == len(names)
        assert pipeline.stage_calls["refine"] == len(names)
        # five distinct numeric levels per benchmark (M5 and TM share level 5)
        assert pipeline.stage_calls["synthesize"] == 5 * len(names)
        # a second sweep through the same pipeline is fully cached
        fig13_per_benchmark(names, pipeline)
        assert pipeline.stage_calls["analyze"] == len(names)
        assert pipeline.stage_calls["synthesize"] == 5 * len(names)


class TestTable5:
    def test_rows_include_totals_and_verification(self):
        rows = table5_rows(["handshake_seq", "completion"], verify=True)
        assert rows[-1]["benchmark"] == "TOTAL"
        assert all(row["s3c_SI"] for row in rows[:-1])
        assert all(row["base_SI"] for row in rows[:-1])


class TestTables6And7:
    def test_structural_completes_where_baseline_blows_up(self):
        cases = [
            ("independent_cells_4", lambda: scalable.independent_cells(4), 4 ** 4),
            ("independent_cells_10", lambda: scalable.independent_cells(10), 4 ** 10),
        ]
        rows = table6_rows(cases, baseline_limit=1000)
        assert isinstance(rows[0]["statebased_s"], float)
        assert rows[1]["statebased_s"] == "blow-up"
        assert all(isinstance(row["structural_s"], float) for row in rows)

    def test_table7_small_sweep(self):
        rows = table7_rows(philosophers=(3,), pipelines=(4,), baseline_limit=5000)
        assert len(rows) == 2
        assert all(isinstance(row["structural_s"], float) for row in rows)
