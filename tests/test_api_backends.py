"""Tests of the pluggable backends and the differential comparison mode."""

from __future__ import annotations

import json

import pytest

from repro.api import (
    Pipeline,
    StateBasedBackend,
    StructuralBackend,
    SynthesisOptions,
    compare,
    get_backend,
    register_backend,
)

#: small registry benchmarks with enumerable state spaces and certified CSC
DIFFERENTIAL_NAMES = [
    "handshake_seq",
    "sequencer",
    "converter_2to4",
    "rw_port",
    "muller_pipeline_2",
]


class TestBackendResolution:
    def test_names_resolve(self):
        assert isinstance(get_backend("structural"), StructuralBackend)
        assert isinstance(get_backend("statebased"), StateBasedBackend)

    def test_instances_pass_through(self):
        backend = StructuralBackend()
        assert get_backend(backend) is backend

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("quantum")
        with pytest.raises(TypeError):
            get_backend(42)

    def test_custom_backend_registration(self):
        class EchoBackend(StructuralBackend):
            name = "echo"

        register_backend("echo", EchoBackend)
        try:
            artifact = Pipeline().synthesize(
                "handshake_seq", SynthesisOptions(assume_csc=True), backend="echo"
            )
            assert artifact.backend == "echo"
        finally:
            from repro.api.backends import _BACKENDS

            _BACKENDS.pop("echo", None)


class TestDifferentialMode:
    @pytest.mark.parametrize("name", DIFFERENTIAL_NAMES)
    def test_backends_agree_on_next_state_functions(self, name):
        """The paper's central claim as an API call: same circuits, both flows."""
        report = compare(name, SynthesisOptions(level=5, assume_csc=True))
        assert report.matching, report.mismatches
        assert bool(report)
        assert report.checked_markings > 0
        assert report.structural.backend == "structural"
        assert report.statebased.backend == "statebased"

    def test_comparison_report_serializes(self):
        report = compare("handshake_seq", SynthesisOptions(level=3, assume_csc=True))
        data = report.to_dict()
        json.dumps(data)
        assert data["matching"] is True
        assert data["checked_markings"] == report.checked_markings
        assert "structural" in data and "statebased" in data

    def test_comparison_shares_the_pipeline_cache(self):
        pipeline = Pipeline()
        options = SynthesisOptions(level=5, assume_csc=True)
        compare("sequencer", options, pipeline=pipeline)
        calls = pipeline.stage_calls["synthesize"]
        assert calls == 2  # one per backend
        compare("sequencer", options, pipeline=pipeline)
        assert pipeline.stage_calls["synthesize"] == calls  # all cached

    def test_mismatch_detection(self):
        """A deliberately broken circuit must be flagged, not rubber-stamped."""
        from repro.api import Spec
        from repro.api.backends import ComparisonReport, compare as run_compare
        from repro.boolean.cover import Cover

        pipeline = Pipeline()
        options = SynthesisOptions(level=5, assume_csc=True)
        report = run_compare("handshake_seq", options, pipeline=pipeline)
        assert report.matching
        # corrupt the cached structural circuit: force the output to constant 0
        artifact = pipeline.synthesize("handshake_seq", options)
        impl = artifact.circuit.implementations["ack"]
        impl.set_cover = Cover.empty(impl.set_cover.variables)
        impl.uses_latch = False
        broken = run_compare("handshake_seq", options, pipeline=pipeline)
        assert isinstance(broken, ComparisonReport)
        assert not broken.matching
        assert broken.mismatches
        # the verdict keys on the mismatch count, not the capped detail list
        still_broken = run_compare(
            "handshake_seq", options, pipeline=pipeline, max_mismatches=0
        )
        assert not still_broken.matching
        assert still_broken.mismatches == []
