"""Tests of the structural engine, cross-checked against the state-based oracle."""

from __future__ import annotations

import pytest

from repro.benchmarks.classic import classic_names, load_classic
from repro.benchmarks.figures import fig7_glatch_stg
from repro.benchmarks.scalable import muller_pipeline
from repro.petri.smcover import compute_sm_components, compute_sm_cover
from repro.statebased.coding import analyze_state_coding
from repro.statebased.regions import compute_signal_regions
from repro.stg.consistency import adjacent_transition_pairs, check_consistency_state_based
from repro.stg.encoding import encode_reachability_graph, infer_initial_values
from repro.structural.adjacency import forward_reduction, structural_next_relation
from repro.structural.approximation import approximate_signal_regions
from repro.structural.concurrency import (
    compute_concurrency_relation,
    concurrency_from_reachability,
)
from repro.structural.conflicts import find_structural_conflicts
from repro.structural.consistency import check_consistency_structural
from repro.structural.covercube import compute_cover_cubes, structural_initial_values
from repro.structural.csc import check_csc_structural
from repro.structural.qps import compute_qps
from repro.structural.refinement import refine_cover_functions

ORACLE_NAMES = classic_names(synthesizable_only=True) + ["latch_ctrl"]


def _oracle_stgs():
    for name in ORACLE_NAMES:
        yield name, load_classic(name)


class TestConcurrencyRelation:
    @pytest.mark.parametrize("name", ORACLE_NAMES)
    def test_matches_reachability_oracle_on_free_choice(self, name):
        stg = load_classic(name)
        structural = compute_concurrency_relation(stg)
        oracle = concurrency_from_reachability(stg)
        # exact for live and safe free-choice STGs
        assert structural.pairs() == oracle.pairs()

    def test_fig1_signal_concurrency(self, fig1):
        relation = compute_concurrency_relation(fig1)
        # mode-B fork: c+/2 and d+/2 run concurrently
        assert relation.are_concurrent("c+/2", "d+/2")
        # mode-A is sequential
        assert not relation.are_concurrent("c+", "d+/1")
        assert relation.node_concurrent_with_signal("pb1", "d")
        assert not relation.node_concurrent_with_signal("pa1", "d")

    def test_glatch_concurrency_scales(self):
        stg = fig7_glatch_stg(4)
        relation = compute_concurrency_relation(stg)
        oracle = concurrency_from_reachability(stg)
        assert relation.pairs() == oracle.pairs()


class TestStructuralConsistency:
    @pytest.mark.parametrize("name", ORACLE_NAMES)
    def test_agrees_with_state_based_check(self, name):
        stg = load_classic(name)
        structural = check_consistency_structural(stg)
        state_based = check_consistency_state_based(stg, check_semimodularity=False)
        assert structural.consistent == state_based.consistent

    @pytest.mark.parametrize("name", ["fig1"])
    def test_next_relation_is_a_safe_over_approximation(self, name, fig1):
        stg = fig1
        relation = compute_concurrency_relation(stg)
        structural = structural_next_relation(stg, relation)
        oracle = adjacent_transition_pairs(stg)
        for transition, successors in oracle.items():
            assert successors <= structural[transition], transition

    def test_autoconcurrency_detected(self):
        # two concurrent transitions of the same signal
        from repro.stg.parser import parse_g

        source = """
.model auto
.inputs a
.outputs x
.graph
a+ x+/1 x+/2
x+/1 a-
x+/2 a-
a- x-/1
x-/1 a+
.marking { <x-/1,a+> }
.end
"""
        stg = parse_g(source)
        report = check_consistency_structural(stg)
        assert not report.consistent
        assert report.autoconcurrent_transitions

    def test_forward_reduction_removes_dependent_nodes(self, fig1):
        reduced = forward_reduction(fig1.net, {"a+"})
        # everything that can only be reached through a+ disappears
        assert not reduced.is_transition("a+")
        assert not reduced.is_place("pa1")
        # the initially marked choice place stays
        assert reduced.is_place("p0")


class TestCoverCubes:
    def test_structural_initial_values(self, fig1):
        structural = structural_initial_values(fig1)
        oracle = infer_initial_values(fig1)
        assert structural == oracle

    @pytest.mark.parametrize("name", ORACLE_NAMES)
    def test_cubes_cover_their_marked_regions(self, name):
        """Lemma 10 safety: every marking of MR(p) is covered by c_p."""
        stg = load_classic(name)
        relation = compute_concurrency_relation(stg)
        cubes = compute_cover_cubes(stg, relation)
        encoded = encode_reachability_graph(stg)
        for marking in encoded.markings:
            code = encoded.code_of(marking)
            for place in marking.marked_places:
                assert cubes[place].covers_vertex(code), (place, marking)

    def test_fig1_cubes_are_tight(self, fig1):
        relation = compute_concurrency_relation(fig1)
        cubes = compute_cover_cubes(fig1, relation)
        order = fig1.signal_names
        assert cubes["pa1"].to_string(order) == "1000"
        assert cubes["pa3"].to_string(order) == "1011"
        assert cubes["pm"].to_string(order) == "0001"
        # places of the concurrent mode-B branch leave the other branch's
        # signal unconstrained
        assert cubes["pb1"].to_string(order) == "010-"

    def test_glatch_er_cubes_are_exact(self):
        """Section IV: the cover cubes of the generalized C-latch are exact."""
        stg = fig7_glatch_stg(3)
        approximation = approximate_signal_regions(stg)
        encoded = encode_reachability_graph(stg)
        regions = compute_signal_regions(stg, encoded)
        for transition in stg.transitions:
            exact = regions.er_codes(transition)
            approx = approximation.er_cover(transition)
            assert approx.contains_cover(exact)
            assert exact.contains_cover(approx.sharp(regions.dc_codes()))


class TestRegionApproximations:
    # Quiescent-region safety relies on CSC (the approximation subtracts the
    # successor excitation codes), so the CSC-violating benchmark is excluded.
    @pytest.mark.parametrize("name", classic_names(synthesizable_only=True))
    def test_er_and_qr_covers_are_safe_over_approximations(self, name):
        stg = load_classic(name)
        approximation = approximate_signal_regions(stg)
        encoded = encode_reachability_graph(stg)
        regions = compute_signal_regions(stg, encoded)
        for transition in stg.transitions:
            assert approximation.er_cover(transition).contains_cover(
                regions.er_codes(transition)
            ), f"ER({transition}) underestimated"
        for signal in stg.non_input_signals:
            for value in (0, 1):
                exact = regions.gqr_codes(signal, value)
                approx = approximation.gqr_cover(signal, value)
                assert approx.contains_cover(exact), f"GQR({signal}={value}) underestimated"

    def test_qps_domain_of_fig1(self, fig1):
        relation = compute_concurrency_relation(fig1)
        next_relation = structural_next_relation(fig1, relation)
        qps = compute_qps(fig1, next_relation=next_relation)
        # the quiescent place set of d+/1 reaches up to (and including) the
        # merge place feeding d-
        assert "pa3" in qps["d+/1"]
        assert "pm" in qps["d+/1"]
        # places of the other mode are not part of it
        assert "pb1" not in qps["d+/1"]


class TestConflictsRefinementCSC:
    def test_fig1_conflicts_reflect_the_usc_violation(self, fig1):
        approximation = approximate_signal_regions(fig1)
        sm_cover = compute_sm_cover(fig1.net, compute_sm_components(fig1.net))
        conflicts = find_structural_conflicts(
            fig1, approximation.cover_functions, sm_cover
        )
        conflicting = {place for c in conflicts for place in c.places}
        assert {"pa4", "pb5"} <= conflicting

    @pytest.mark.parametrize("name", ORACLE_NAMES)
    def test_structural_csc_never_accepts_a_real_violation(self, name):
        stg = load_classic(name)
        approximation = approximate_signal_regions(stg)
        relation = approximation.concurrency
        sm_cover = compute_sm_cover(stg.net, compute_sm_components(stg.net))
        refinement = refine_cover_functions(
            stg, approximation.cover_functions, sm_cover, relation
        )
        report = check_csc_structural(stg, refinement.cover_functions, sm_cover)
        oracle = analyze_state_coding(stg)
        if report.satisfied:
            assert oracle.satisfies_csc, (
                f"{name}: structural check certified CSC but the oracle found "
                f"{len(oracle.csc_conflicts)} conflicts"
            )

    def test_refinement_removes_fake_conflicts_on_pipeline(self):
        stg = muller_pipeline(2)
        approximation = approximate_signal_regions(stg)
        sm_cover = compute_sm_cover(stg.net, compute_sm_components(stg.net))
        refinement = refine_cover_functions(
            stg, approximation.cover_functions, sm_cover, approximation.concurrency
        )
        assert refinement.conflict_free
        report = check_csc_structural(stg, refinement.cover_functions, sm_cover)
        assert report.satisfied
