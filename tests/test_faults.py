"""Chaos suite: the fault-tolerant execution layer under injected faults.

Deterministic fault injection (:mod:`repro.api.faults`) drives every
hardened layer — the store's quarantine/sweep paths, the pipeline's
stage-fault hooks, the scheduler's retry/timeout/crash recovery, and the
serve daemon's shedding and readiness split — and the batch-level
invariant the hardening exists for: a faulted pool batch drains with
reports *identical* (timing aside) to a fault-free run, reproducibly by
seed.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api import Pipeline, SynthesisOptions
from repro.api.client import Client, ClientError
from repro.api.events import EventLog
from repro.api.faults import (
    FaultInjector,
    FaultRule,
    InjectedIOError,
    InjectedStageError,
    get_injector,
)
from repro.api.scheduler import (
    NO_RETRY,
    JobTimeoutError,
    PoisonJobError,
    RetryPolicy,
    Scheduler,
    make_jobs,
)
from repro.api.server import create_server
from repro.api.spec import Spec
from repro.api.store import ArtifactStore
from repro.benchmarks.classic import classic_names, load_classic
from repro.synthesis.engine import SynthesisError

#: the 13-spec batch of the acceptance criterion: every synthesizable
#: classic benchmark plus four structured generators
SUITE = classic_names(synthesizable_only=True) + [
    "glatch_3",
    "glatch_5",
    "muller_pipeline_2",
    "philosophers_3",
]

OPTIONS = SynthesisOptions(level=5, assume_csc=True)


def fingerprint(report) -> str:
    """Timing-free identity of a report: circuit, literals, verdicts."""
    return json.dumps(
        [
            report.spec_name,
            report.literals,
            report.circuit.to_json() if report.circuit is not None else None,
            report.speed_independent,
        ],
        sort_keys=True,
    )


def unsafe_sequencer() -> Spec:
    """A synthesizable spec whose underlying net is *unsafe*.

    A shadow place holding two tokens self-looped on one transition forces
    the reachability layer onto the dict-based ``_reference_*`` fallback
    (the packed kernel only handles 1-safe nets) without changing the
    sequencer's behaviour — the synthesized circuit stays identical.
    """
    stg = load_classic("sequencer")
    stg.add_place("shadow")
    stg.add_arc("shadow", "req+")
    stg.add_arc("req+", "shadow")
    stg.net.set_initial_tokens("shadow", 2)
    return Spec.load(stg)


# ---------------------------------------------------------------------- #
# Grammar and determinism
# ---------------------------------------------------------------------- #


class TestGrammar:
    def test_parse_round_trips_through_to_text(self):
        text = "seed=7;worker.kill@sequencer=1x1;stage.error@synthesize=0.5;store.read=0.25;stage.delay@analyze=1x2~0.05"
        injector = FaultInjector.parse(text)
        again = FaultInjector.parse(injector.to_text())
        assert again.seed == 7
        assert again.rules == injector.rules

    def test_unknown_site_and_bad_rate_are_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultInjector.parse("disk.melt=1")
        with pytest.raises(ValueError, match="rate"):
            FaultRule(site="store.read", rate=1.5)
        with pytest.raises(ValueError, match="malformed"):
            FaultInjector.parse("store.read")

    def test_decisions_are_deterministic_by_seed(self):
        def schedule(seed: int) -> list[bool]:
            injector = FaultInjector.parse(f"seed={seed};store.read=0.5")
            return [injector.fire("store.read") is not None for _ in range(64)]

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)
        fired = sum(schedule(7))
        assert 10 < fired < 54  # a rate, not a constant

    def test_limit_caps_firings_in_counter_mode(self):
        injector = FaultInjector.parse("stage.error@synthesize=1x2")
        fired = [injector.fire("stage.error", "synthesize") is not None for _ in range(5)]
        assert fired == [True, True, False, False, False]
        assert injector.fire("stage.error", "analyze") is None  # scoped

    def test_limit_bounds_the_attempt_token_in_token_mode(self):
        injector = FaultInjector.parse("worker.kill@sequencer=1x1")
        assert injector.bind(1).fire("worker.kill", "sequencer") is not None
        assert injector.bind(2).fire("worker.kill", "sequencer") is None

    def test_get_injector_resolves_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "seed=3;store.read=1")
        injector = get_injector(None)
        assert injector is not None and injector.seed == 3
        monkeypatch.delenv("REPRO_FAULTS")
        assert get_injector(None) is None


# ---------------------------------------------------------------------- #
# Store faults: degraded reads, dropped writes, corruption quarantine
# ---------------------------------------------------------------------- #


class TestStoreFaults:
    def test_read_fault_degrades_to_recomputation(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        Pipeline(store=store).run("sequencer", OPTIONS)  # warm the store
        faulted = Pipeline(store=store, faults="store.read=1")
        report = faulted.run("sequencer", OPTIONS)
        assert report.literals > 0
        assert faulted.stage_calls["synthesize"] == 1  # recomputed, not served

    def test_write_fault_keeps_the_computed_result(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        pipeline = Pipeline(store=store, faults="store.write=1")
        report = pipeline.run("sequencer", OPTIONS)
        assert report.literals > 0
        assert store.stats()["entries"] == 0  # nothing landed on disk

    def test_corrupt_write_is_quarantined_then_recomputed_and_repersisted(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        # exactly one entry lands truncated on disk
        writer = Pipeline(store=store, faults="store.corrupt=1x1")
        baseline = writer.run("sequencer", OPTIONS)

        reader_store = ArtifactStore(tmp_path / "store")
        reader = Pipeline(store=reader_store)
        report = reader.run("sequencer", OPTIONS)
        assert fingerprint(report) == fingerprint(baseline)
        assert reader_store.quarantined == 1
        quarantined = [
            path
            for path in reader_store.quarantine_dir.iterdir()
            if not path.name.endswith(".reason.json")
        ]
        assert len(quarantined) == 1
        reasons = list(reader_store.quarantine_dir.glob("*.reason.json"))
        assert len(reasons) == 1
        record = json.loads(reasons[0].read_text())
        assert record["reason"] == "undecodable JSON"
        # the recomputation re-persisted a good entry at the same address
        fresh = ArtifactStore(tmp_path / "store")
        warm = Pipeline(store=fresh)
        again = warm.run("sequencer", OPTIONS)
        assert fingerprint(again) == fingerprint(baseline)
        assert warm.stage_calls["synthesize"] == 0  # served from the store
        assert fresh.quarantined == 0

    def test_orphaned_tempfiles_are_swept(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put(("k",), {"v": 1}, stage="analyze")
        bucket = next(iter(store._entry_paths())).parent
        orphan = bucket / ".deadbeef-kill.tmp"
        orphan.write_text("partial")
        old = time.time() - 7200
        import os

        os.utime(orphan, (old, old))
        fresh = bucket / ".cafe-live.tmp"
        fresh.write_text("live writer")
        stats = store.stats()
        assert stats["tmp_swept"] == 1  # only the old orphan
        assert stats["tmp_files"] == 1  # the young one survived
        assert not orphan.exists() and fresh.exists()
        swept = store.sweep()  # explicit sweep takes everything
        assert swept["tmp_removed"] == 1
        assert not fresh.exists()

    def test_sweep_quarantines_stale_code_versions(self, tmp_path):
        old = ArtifactStore(tmp_path / "store", code_version="repro-0.1")
        old.put(("k",), {"v": 1}, stage="analyze")
        store = ArtifactStore(tmp_path / "store")
        assert store.stats()["stale_entries"] == 1
        swept = store.sweep()
        assert swept["stale_quarantined"] == 1
        assert store.stats()["stale_entries"] == 0
        assert store.stats()["quarantined_entries"] == 1

    def test_fsync_mode_round_trips(self, tmp_path):
        store = ArtifactStore(tmp_path / "store", fsync=True)
        store.put(("k",), {"v": 42}, stage="analyze")
        assert store.get(("k",)) == {"v": 42}

    def test_injected_errors_are_typed(self):
        injector = FaultInjector.parse("store.read=1")
        with pytest.raises(InjectedIOError):
            injector.raise_io("store.read")
        assert isinstance(InjectedIOError("x"), OSError)
        with pytest.raises(InjectedStageError):
            FaultInjector.parse("stage.error=1").stage_enter("synthesize")


# ---------------------------------------------------------------------- #
# Scheduler: retry policy, sequential mode
# ---------------------------------------------------------------------- #

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.001, max_delay=0.01)


class TestRetryPolicy:
    def test_classification(self):
        policy = RetryPolicy()
        assert policy.is_retryable(OSError("disk"))
        assert policy.is_retryable(InjectedStageError("x"))
        assert policy.is_retryable(JobTimeoutError("slow"))
        assert not policy.is_retryable(SynthesisError("no CSC"))
        assert not policy.is_retryable(KeyError("bug"))
        assert policy.classify(OSError("d")) == "retryable"
        assert policy.classify(SynthesisError("n")) == "fatal"

    def test_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.35, seed=5)
        delays = [policy.delay_for(attempt, key="job") for attempt in (1, 2, 3, 4)]
        assert delays == [policy.delay_for(a, key="job") for a in (1, 2, 3, 4)]
        assert all(d <= 0.35 * 1.25 for d in delays)  # cap + jitter margin
        assert delays[0] != policy.delay_for(1, key="other")  # jitter varies


class TestSequentialRetry:
    def test_transient_stage_fault_is_retried_to_success(self):
        log = EventLog()
        scheduler = Scheduler(
            on_event=log,
            retry=FAST_RETRY,
            faults="stage.error@synthesize=1x2",
        )
        results = list(scheduler.iter_results(make_jobs(["sequencer"], OPTIONS)))
        assert len(results) == 1 and results[0].ok
        assert results[0].attempts == 3  # two injected failures, then success
        statuses = [e.status for e in log.of_kind("job")]
        assert statuses == ["start", "retry", "retry", "done"]
        assert [e.attempt for e in log.of_kind("job")] == [None, 1, 2, 3]

    def test_fatal_error_is_not_retried(self):
        log = EventLog()
        scheduler = Scheduler(on_event=log, retry=FAST_RETRY)
        # fig5 has structural CSC conflicts: a deterministic SynthesisError
        results = list(
            scheduler.iter_results(make_jobs(["fig5"], SynthesisOptions(level=5)))
        )
        assert not results[0].ok
        assert isinstance(results[0].error, SynthesisError)
        assert results[0].attempts == 1
        assert [e.status for e in log.of_kind("job")] == ["start", "error"]

    def test_retry_budget_exhaustion_surfaces_the_fault(self):
        scheduler = Scheduler(retry=FAST_RETRY, faults="stage.error@synthesize=1")
        results = list(scheduler.iter_results(make_jobs(["sequencer"], OPTIONS)))
        assert not results[0].ok
        assert isinstance(results[0].error, InjectedStageError)
        assert results[0].attempts == FAST_RETRY.max_attempts

    def test_no_retry_policy_restores_single_shot(self):
        scheduler = Scheduler(retry=NO_RETRY, faults="stage.error@synthesize=1x1")
        results = list(scheduler.iter_results(make_jobs(["sequencer"], OPTIONS)))
        assert not results[0].ok and results[0].attempts == 1

    def test_run_fail_fast_keeps_harvested_results(self):
        scheduler = Scheduler(retry=NO_RETRY)
        jobs = make_jobs(["sequencer", "fig5", "handshake_seq"], SynthesisOptions())
        with pytest.raises(SynthesisError):
            scheduler.run(jobs)
        harvested = {r.job.spec.name: r for r in scheduler.last_results}
        assert harvested["sequencer"].ok
        assert not harvested["fig5"].ok and not harvested["fig5"].cancelled
        assert "handshake_seq" not in harvested  # never started sequentially


# ---------------------------------------------------------------------- #
# Scheduler: pool mode under chaos
# ---------------------------------------------------------------------- #


class TestPoolChaos:
    CHAOS = (
        "seed=7;worker.kill@sequencer=1x1;"
        "stage.error@synthesize=0.4x2;store.read=0.2"
    )

    def _run(self, tmp_path, name, faults=None, jobs=4):
        scheduler = Scheduler(
            jobs=jobs,
            store=ArtifactStore(tmp_path / name),
            retry=FAST_RETRY,
            faults=faults,
        )
        job_list = make_jobs(SUITE, OPTIONS, verify=True)
        results = list(scheduler.iter_results(job_list))
        assert len(results) == len(SUITE)
        return results

    def test_faulted_batch_drains_identical_to_fault_free(self, tmp_path):
        clean = self._run(tmp_path, "clean")
        chaos = self._run(tmp_path, "chaos", faults=self.CHAOS)
        assert all(r.ok for r in clean)
        assert all(r.ok for r in chaos), [
            f"{r.job.spec.name}: {r.error}" for r in chaos if not r.ok
        ]
        by_name = lambda rs: {r.job.spec.name: fingerprint(r.report) for r in rs}
        assert by_name(chaos) == by_name(clean)
        # the worker kill really happened: sequencer needed a second attempt
        attempts = {r.job.spec.name: r.attempts for r in chaos}
        assert attempts["sequencer"] >= 2

    def test_chaos_run_is_deterministic_by_seed(self, tmp_path):
        # no worker.kill here: a pool crash resubmits whichever innocent
        # jobs were in flight, so *their* attempt counts are scheduling
        # noise — stage/store decisions are pure functions of the seed
        faults = "seed=7;stage.error@synthesize=0.4x2;store.read=0.2"
        first = self._run(tmp_path, "a", faults=faults)
        second = self._run(tmp_path, "b", faults=faults)
        key = lambda rs: {r.job.spec.name: (r.ok, r.attempts) for r in rs}
        assert key(first) == key(second)
        other_seed = self._run(
            tmp_path, "c", faults="seed=8;stage.error@synthesize=0.4x2;store.read=0.2"
        )
        assert key(other_seed) != key(first)  # the seed is load-bearing

    def test_unlimited_killer_is_quarantined_as_poison(self, tmp_path):
        results = self._run(
            tmp_path, "poison", faults="worker.kill@sequencer=1", jobs=2
        )
        by_name = {r.job.spec.name: r for r in results}
        poisoned = by_name["sequencer"]
        assert isinstance(poisoned.error, PoisonJobError)
        assert "quarantined" in str(poisoned.error)
        innocents = [r for r in results if r.job.spec.name != "sequencer"]
        assert all(r.ok for r in innocents), [
            f"{r.job.spec.name}: {r.error}" for r in innocents if not r.ok
        ]

    def test_deadline_abandons_and_retries_a_slow_attempt(self, tmp_path):
        log = EventLog()
        # 4 workers for 2 jobs: an abandoned (still-sleeping) attempt keeps
        # occupying its worker, so the retry needs a free one to run on
        scheduler = Scheduler(
            jobs=4,
            on_event=log,
            retry=FAST_RETRY,
            timeout=0.6,
            faults="stage.delay@synthesize=1x1~2.0",
        )
        jobs = make_jobs(["sequencer", "handshake_seq"], OPTIONS)
        results = list(scheduler.iter_results(jobs))
        assert all(r.ok for r in results), [str(r.error) for r in results if not r.ok]
        assert all(r.attempts == 2 for r in results)  # attempt 1 timed out
        statuses = [e.status for e in log.of_kind("job")]
        assert statuses.count("timeout") == 2
        assert statuses.count("retry") == 2

    def test_pool_run_fail_fast_distinguishes_cancelled_from_failed(self):
        scheduler = Scheduler(jobs=2, retry=NO_RETRY)
        names = ["fig5", "glatch_3", "glatch_5", "muller_pipeline_2", "philosophers_3"]
        with pytest.raises(SynthesisError):
            scheduler.run(make_jobs(names, SynthesisOptions()))
        by_name = {r.job.spec.name: r for r in scheduler.last_results}
        failed = by_name["fig5"]
        assert failed.error is not None and not failed.cancelled
        cancelled = [r for r in scheduler.last_results if r.cancelled]
        drained = [r for r in scheduler.last_results if r.ok]
        # queued work was cancelled, in-flight work drained — and the two
        # outcomes are distinguishable on the records
        assert all(r.error is None for r in cancelled)
        assert len(cancelled) + len(drained) + 1 <= len(names)


class TestDeadlineCrashRace:
    """The deadline × retry interplay when a pool crash races a timeout.

    Two invariants the crash-recovery path must hold: a resubmitted
    attempt runs against a *fresh* deadline (the dead attempt's deadline
    died with its future — the clock does not keep ticking across the
    respawn), and a job quarantined as poison is terminal (no later crash,
    deadline or retry may resubmit it or touch its attempt count again).
    """

    def test_crash_resubmission_resets_the_deadline_clock(self):
        # topology: a 2-worker pool runs the victim (slow: 1.0s injected
        # verify delay, 1.3s deadline) next to a 0.6s filler; the killer is
        # *queued*, so its attempt-1 kill lands ~0.65s in — mid-victim.
        # The victim's attempt 2 then runs entirely *after* its original
        # t0+1.3s deadline has passed; only a per-submission deadline
        # lets it finish.  A stale clock would fire a spurious timeout,
        # burn an attempt and emit timeout/retry events.
        log = EventLog()
        scheduler = Scheduler(
            jobs=2,
            on_event=log,
            retry=FAST_RETRY,
            faults=(
                "worker.kill@sequencer=1x1;"
                "stage.delay@verify=1~1.0;stage.delay@map=1~0.6"
            ),
        )
        victim = make_jobs(["handshake_seq"], OPTIONS, verify=True, timeout=1.3)
        filler = make_jobs(["glatch_3"], OPTIONS, map_technology=True)
        killer = make_jobs(["sequencer"], OPTIONS)
        results = list(scheduler.iter_results(victim + filler + killer))
        by_name = {r.job.spec.name: r for r in results}
        assert all(r.ok for r in results), [
            f"{r.job.spec.name}: {r.error}" for r in results if not r.ok
        ]
        struck = by_name["handshake_seq"]
        # exactly one resubmission — the crash did not double-count
        assert struck.attempts == 2
        assert by_name["sequencer"].attempts == 2
        assert by_name["glatch_3"].attempts == 1
        # the victim's total wall clock exceeded its 1.3s deadline, yet no
        # timeout fired: the deadline is per-attempt, not per-job
        assert struck.seconds > 1.3
        statuses = [event.status for event in log.of_kind("job")]
        assert "timeout" not in statuses
        assert "retry" not in statuses  # crash resubmission is silent
        victim_events = [
            event for event in log.of_kind("job") if event.spec == "handshake_seq"
        ]
        assert [event.status for event in victim_events] == ["start", "done"]
        assert victim_events[-1].attempt == 2

    def test_poison_quarantine_is_terminal_across_later_crashes(self):
        # sequencer kills every attempt (poison); handshake_seq kills only
        # its first (innocent-looking accomplice); glatch_3 is bystander.
        # Crash 1 exposes all three, crash 2 sends all three to isolation:
        # the poison job's isolation crash quarantines it, and nothing —
        # not the 30s deadline still armed, not the bystanders' later
        # results — may resubmit it or emit further events for it.
        log = EventLog()
        scheduler = Scheduler(
            jobs=2,
            on_event=log,
            retry=FAST_RETRY,
            timeout=30.0,
            faults="worker.kill@sequencer=1;worker.kill@handshake_seq=1x1",
        )
        jobs = make_jobs(["sequencer", "handshake_seq", "glatch_3"], OPTIONS)
        results = list(scheduler.iter_results(jobs))
        by_name = {r.job.spec.name: r for r in results}
        poison = by_name["sequencer"]
        assert isinstance(poison.error, PoisonJobError)
        # initial + one crash resubmission + isolation: exactly 3 attempts
        assert poison.attempts == 3
        # the accomplice and the bystander ride the same two crashes into
        # isolation and succeed there — attempts counted once per run
        assert by_name["handshake_seq"].ok
        assert by_name["handshake_seq"].attempts == 3
        assert by_name["glatch_3"].ok
        assert by_name["glatch_3"].attempts == 3
        events = log.of_kind("job")
        poison_statuses = [e.status for e in events if e.spec == "sequencer"]
        assert poison_statuses == ["start", "error"]
        # terminal: the error is the poison job's final event
        last_poison = max(i for i, e in enumerate(events) if e.spec == "sequencer")
        assert events[last_poison].status == "error"
        # the armed deadlines died with their crashed futures
        assert "timeout" not in [e.status for e in events]


# ---------------------------------------------------------------------- #
# Unsafe-net fallback under faults (satellite 4)
# ---------------------------------------------------------------------- #


class TestUnsafeFallbackUnderFaults:
    def test_reference_fallback_survives_stage_faults_with_retry(self):
        spec = unsafe_sequencer()
        from repro.petri.reachability import build_reachability_graph

        graph = build_reachability_graph(spec.stg.net)
        from repro.petri.compiled import CompiledBoundedNet

        # the safe kernel refuses the net; the k-bounded kernel handles it
        assert isinstance(graph._compiled, CompiledBoundedNet)

        baseline = Pipeline().run(spec, OPTIONS, backend="statebased")
        scheduler = Scheduler(retry=FAST_RETRY, faults="stage.error@synthesize=1x2")
        jobs = make_jobs([spec], OPTIONS, backend="statebased")
        results = list(scheduler.iter_results(jobs))
        assert results[0].ok and results[0].attempts == 3
        assert results[0].report.literals == baseline.literals
        # the unsafe net costs nothing in behaviour: same circuit as the
        # plain sequencer through the same backend
        plain = Pipeline().run("sequencer", OPTIONS, backend="statebased")
        assert results[0].report.literals == plain.literals

    def test_store_quarantine_round_trip_on_the_fallback_path(self, tmp_path):
        spec = unsafe_sequencer()
        store = ArtifactStore(tmp_path / "store")
        writer = Pipeline(store=store, faults="store.corrupt=1x1")
        baseline = writer.run(spec, OPTIONS, backend="statebased")
        reader_store = ArtifactStore(tmp_path / "store")
        reader = Pipeline(store=reader_store)
        report = reader.run(spec, OPTIONS, backend="statebased")
        assert report.literals == baseline.literals
        assert reader_store.quarantined == 1


# ---------------------------------------------------------------------- #
# Server: readiness, shedding, deadlines, structured errors
# ---------------------------------------------------------------------- #


@pytest.fixture()
def served(tmp_path):
    server = create_server(port=0, store=tmp_path / "store")
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    port = server.server_address[1]
    try:
        yield server, Client(f"http://127.0.0.1:{port}", retries=0)
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def _serve(server):
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return thread, server.server_address[1]


class TestServerResilience:
    def test_ready_is_green_with_a_writable_store(self, served):
        _, client = served
        payload = client._request("GET", "/ready")
        assert payload["ready"] is True
        assert payload["max_queue"] == 8

    def test_ready_goes_red_when_the_store_is_unreachable(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the store root should be")
        server = create_server(port=0, store=blocker / "store")
        thread, port = _serve(server)
        try:
            client = Client(f"http://127.0.0.1:{port}", retries=0)
            assert client.health()["status"] == "ok"  # liveness stays green
            with pytest.raises(ClientError) as excinfo:
                client._request("GET", "/ready")
            assert excinfo.value.status == 503
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_overload_is_shed_with_503_and_retry_after(self, tmp_path):
        server = create_server(port=0, store=tmp_path / "store", max_queue=0)
        thread, port = _serve(server)
        try:
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/synthesize",
                data=json.dumps({"spec": "sequencer", "assume_csc": True}).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=30)
            assert excinfo.value.code == 503
            assert excinfo.value.headers.get("Retry-After") is not None
            body = json.loads(excinfo.value.read().decode())
            assert body["error"]["code"] == "overloaded"
            assert body["error"]["retryable"] is True
            assert server.service.shed == 1
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_deadline_miss_is_a_504_and_client_retry_recovers(self, tmp_path):
        server = create_server(
            port=0, store=tmp_path / "store", request_timeout=0.1
        )
        thread, port = _serve(server)
        service = server.service
        try:
            service.lock.acquire()  # wedge the service
            single = Client(f"http://127.0.0.1:{port}", retries=0)
            with pytest.raises(ClientError) as excinfo:
                single.synthesize("sequencer", assume_csc=True)
            assert excinfo.value.status == 504
            assert excinfo.value.code == "deadline_exceeded"
            assert excinfo.value.retryable is True

            releaser = threading.Timer(0.3, service.lock.release)
            releaser.start()
            retrying = Client(
                f"http://127.0.0.1:{port}", retries=3, backoff=0.2
            )
            result = retrying.synthesize("sequencer", assume_csc=True)
            assert result.report.literals > 0
            releaser.join()
        finally:
            if service.lock.locked():
                service.lock.release()
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_structured_error_bodies_carry_stable_codes(self, served):
        _, client = served
        with pytest.raises(ClientError) as excinfo:
            client.synthesize("no_such_benchmark_at_all")
        assert excinfo.value.status == 400
        assert excinfo.value.code == "spec_error"
        assert excinfo.value.retryable is False
        with pytest.raises(ClientError) as excinfo:
            client.synthesize("fig5")  # CSC conflict: a synthesis error
        assert excinfo.value.code == "synthesis_error"
        with pytest.raises(ClientError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404
        assert excinfo.value.code == "not_found"

    def test_requests_survive_injected_store_read_faults(self, tmp_path):
        pipeline = Pipeline(
            store=ArtifactStore(tmp_path / "store"), faults="store.read=1"
        )
        server = create_server(port=0, pipeline=pipeline)
        thread, port = _serve(server)
        try:
            client = Client(f"http://127.0.0.1:{port}", retries=0)
            first = client.synthesize("sequencer", assume_csc=True)
            assert first.report.literals > 0
            server.service.pipeline.evict_cache()
            second = client.synthesize("sequencer", assume_csc=True)
            # the store is unreadable, so nothing resolves from it — the
            # request recomputes and still answers 200
            assert second.report.literals == first.report.literals
            assert second.resolution["store"] == 0
            assert second.resolution["computed"] > 0
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
