"""Tests of the pure-python CDCL solver (:mod:`repro.sat.solver`).

The solver is the trust anchor of the exact backend, so it gets the same
treatment as the compiled kernels: hand-built formulas with known
answers, structured hard instances (pigeonhole), and a randomized
differential sweep against the naive DPLL ``_reference_dpll`` oracle.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.sat.solver import (
    CDCLSolver,
    _luby,
    _reference_dpll,
    new_solver,
    pysat_available,
)


def satisfies(clauses, model: dict[int, bool]) -> bool:
    """Check a model against a CNF (every clause has a true literal)."""
    return all(
        any(model.get(abs(lit), False) == (lit > 0) for lit in clause)
        for clause in clauses
    )


def pigeonhole(holes: int) -> list[list[int]]:
    """PHP(holes+1, holes): unsatisfiable for every ``holes`` >= 1."""
    pigeons = holes + 1
    var = lambda p, h: p * holes + h + 1  # noqa: E731
    clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
    for h in range(holes):
        for p1, p2 in itertools.combinations(range(pigeons), 2):
            clauses.append([-var(p1, h), -var(p2, h)])
    return clauses


class TestBasics:
    def test_empty_formula_is_sat(self):
        assert CDCLSolver().solve() is True

    def test_single_unit(self):
        solver = CDCLSolver()
        solver.add_clause([1])
        assert solver.solve() is True
        assert solver.value_of(1) is True

    def test_contradictory_units(self):
        solver = CDCLSolver()
        solver.add_clause([1])
        assert solver.add_clause([-1]) is False
        assert solver.solve() is False

    def test_empty_clause_is_unsat(self):
        solver = CDCLSolver()
        assert solver.add_clause([]) is False
        assert solver.solve() is False

    def test_unit_propagation_chain(self):
        # 1, 1->2, 2->3, 3->4: all forced true without any decision
        solver = CDCLSolver()
        solver.add_clauses([[1], [-1, 2], [-2, 3], [-3, 4]])
        assert solver.solve() is True
        assert all(solver.value_of(v) is True for v in (1, 2, 3, 4))
        assert solver.stats["decisions"] == 0

    def test_conflict_learning_small_unsat(self):
        # all eight clauses over three variables: classically unsat
        solver = CDCLSolver()
        for bits in itertools.product((1, -1), repeat=3):
            solver.add_clause([sign * var for sign, var in zip(bits, (1, 2, 3))])
        assert solver.solve() is False

    def test_model_satisfies_formula(self):
        clauses = [[1, 2], [-1, 3], [-2, -3], [2, 3]]
        solver = CDCLSolver()
        solver.add_clauses(clauses)
        assert solver.solve() is True
        assert satisfies(clauses, solver.model())

    def test_default_phase_is_negative(self):
        # phase saving starts negative so selection variables in the
        # synthesis encodings default to "unselected"
        solver = CDCLSolver()
        solver.ensure_vars(3)
        solver.add_clause([1, 2, 3])
        assert solver.solve() is True
        assert sum(1 for v in (1, 2, 3) if solver.value_of(v)) == 1


class TestPigeonhole:
    @pytest.mark.parametrize("holes", [1, 2, 3, 4])
    def test_unsat(self, holes):
        solver = CDCLSolver()
        solver.add_clauses(pigeonhole(holes))
        assert solver.solve() is False
        if holes >= 3:
            assert solver.stats["conflicts"] > 0  # genuinely needed search

    def test_conflict_budget_returns_none(self):
        solver = CDCLSolver()
        solver.add_clauses(pigeonhole(5))
        verdict = solver.solve(max_conflicts=1)
        assert verdict is None
        # the budget is a pause, not a corruption: solving on works
        assert solver.solve() is False


class TestAssumptions:
    def test_sat_and_refuted_assumptions(self):
        solver = CDCLSolver()
        solver.add_clauses([[1, 2], [-1, -2]])
        assert solver.solve(assumptions=[1]) is True
        assert solver.value_of(1) is True and solver.value_of(2) is False
        assert solver.solve(assumptions=[1, 2]) is False
        # assumptions do not persist: the plain formula stays satisfiable
        assert solver.solve() is True

    def test_incremental_clause_addition(self):
        solver = CDCLSolver()
        solver.add_clause([1, 2])
        assert solver.solve() is True
        solver.add_clause([-1])
        assert solver.solve() is True
        assert solver.value_of(2) is True
        solver.add_clause([-2])
        assert solver.solve() is False

    def test_model_enumeration_via_blocking(self):
        # x1+x2+x3 >= 1 has exactly 7 models
        clauses = [[1, 2, 3]]
        solver = CDCLSolver()
        solver.add_clauses(clauses)
        seen = set()
        while solver.solve() is True:
            model = tuple(bool(solver.value_of(v)) for v in (1, 2, 3))
            assert model not in seen
            seen.add(model)
            solver.add_clause(
                [-v if solver.value_of(v) else v for v in (1, 2, 3)]
            )
        assert len(seen) == 7


class TestDeterminism:
    def test_same_seed_same_model(self):
        clauses = [[1, 2, 5], [-2, 3], [-5, -3, 4], [2, -4], [1, -5]]
        models = []
        for _ in range(2):
            solver = CDCLSolver(seed=7)
            solver.add_clauses(clauses)
            assert solver.solve() is True
            models.append(tuple(sorted(solver.model().items())))
        assert models[0] == models[1]

    def test_luby_sequence(self):
        assert [_luby(i) for i in range(1, 16)] == [
            1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, 1,
        ]
        # every power of two appears, and the sequence never explodes
        assert max(_luby(i) for i in range(1, 64)) == 32


class TestDifferential:
    """Randomized 3-CNF sweep: CDCL vs the naive DPLL oracle."""

    def random_cnf(self, rng, num_vars, num_clauses):
        clauses = []
        for _ in range(num_clauses):
            size = rng.randint(1, 3)
            chosen = rng.sample(range(1, num_vars + 1), size)
            clauses.append([v if rng.random() < 0.5 else -v for v in chosen])
        return clauses

    @pytest.mark.parametrize("seed", range(8))
    def test_agrees_with_reference(self, seed):
        rng = random.Random(seed)
        for _ in range(25):
            num_vars = rng.randint(3, 8)
            clauses = self.random_cnf(rng, num_vars, rng.randint(2, 4 * num_vars))
            expected, _model = _reference_dpll(clauses, num_vars)
            solver = CDCLSolver(seed=seed)
            solver.add_clauses(clauses)
            verdict = solver.solve()
            assert verdict is expected, f"divergence on {clauses}"
            if verdict:
                assert satisfies(clauses, solver.model())

    def test_reference_oracle_basics(self):
        assert _reference_dpll([[1], [-1]], 1) == (False, None)
        sat, model = _reference_dpll([[1, 2], [-1]], 2)
        assert sat is True and model[2] is True


class TestSolverFactory:
    def test_default_is_cdcl(self):
        assert isinstance(new_solver(), CDCLSolver)

    def test_explicit_cdcl(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAT_SOLVER", "pysat")
        # an explicit prefer= wins over the environment
        assert isinstance(new_solver(prefer="cdcl"), CDCLSolver)

    def test_unknown_preference(self):
        with pytest.raises(ValueError, match="unknown SAT solver"):
            new_solver(prefer="quantum")

    @pytest.mark.skipif(pysat_available(), reason="pysat installed")
    def test_pysat_absent_is_explicit_error(self):
        with pytest.raises(RuntimeError, match="pysat"):
            new_solver(prefer="pysat")

    @pytest.mark.skipif(pysat_available(), reason="pysat installed")
    def test_auto_degrades_to_cdcl(self):
        assert isinstance(new_solver(prefer="auto"), CDCLSolver)
