"""Tests of the durable workspace: lossless artifact JSON and the store.

Pins the PR 5 acceptance criteria:

* every stage artifact round-trips ``to_json``/``from_json`` losslessly
  over the benchmark registry (the enumerable part of it);
* a second ``Pipeline.run`` of the same spec in a **fresh process** with
  the same store performs zero analyze/refine/synthesize computations and
  produces the same results as a no-store run (differential check);
* cache keys separate gate libraries differing only in ``latch_area`` /
  ``allow_latch``, and a store written by a different code version is
  ignored, not crashed on.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api import Pipeline, Report, Spec, SynthesisOptions
from repro.api.artifacts import (
    AnalysisArtifact,
    MappingArtifact,
    RefinementArtifact,
    SynthesisArtifact,
    VerificationArtifact,
)
from repro.api.store import ArtifactStore, default_store_path
from repro.gates.library import default_library
from dataclasses import replace as dc_replace

#: specs covering every registry family that stays enumerable in a test run
ROUNDTRIP_SPECS = [
    "fig1",
    "fig5",
    "glatch_3",
    "sequencer",
    "handshake_seq",
    "muller_pipeline_2",
    "philosophers_3",
    "independent_cells_5",
]


def _registry_specs():
    """Every registry benchmark small enough for a full verified run."""
    from repro.benchmarks.classic import classic_names

    names = set(ROUNDTRIP_SPECS)
    names.update(classic_names(synthesizable_only=True))
    return sorted(names)


class TestArtifactRoundTrip:
    @pytest.mark.parametrize("name", _registry_specs())
    def test_every_stage_artifact_round_trips(self, name):
        """to_json → JSON text → from_json → to_json is the identity."""
        pipeline = Pipeline()
        report = pipeline.run(
            name,
            SynthesisOptions(assume_csc=True),
            map_technology=True,
            verify=True,
        )
        for artifact, cls in (
            (report.analysis, AnalysisArtifact),
            (report.refinement, RefinementArtifact),
            (report.synthesis, SynthesisArtifact),
            (report.mapping, MappingArtifact),
            (report.verification, VerificationArtifact),
        ):
            document = artifact.to_json()
            text = json.dumps(document)  # must be pure JSON
            reloaded = cls.from_json(json.loads(text))
            assert reloaded.to_json() == document, f"{cls.__name__} on {name}"
        document = report.to_json()
        reloaded = Report.from_json(json.loads(json.dumps(document)))
        assert reloaded.to_json() == document

    def test_reloaded_circuit_behaves_identically(self):
        report = Pipeline().run("sequencer", SynthesisOptions(assume_csc=True))
        reloaded = Report.from_json(report.to_json())
        stg = Spec.load("sequencer").stg
        signals = stg.signal_names
        for code in range(1 << len(signals)):
            vector = {s: (code >> i) & 1 for i, s in enumerate(signals)}
            assert report.circuit.next_values(vector) == reloaded.circuit.next_values(
                vector
            )

    def test_rehydrated_refinement_feeds_synthesis(self, tmp_path):
        """A store-loaded refinement must support a *new* level's synthesis."""
        options = SynthesisOptions(level=5, assume_csc=True)
        warm = Pipeline(store=tmp_path / "store")
        warm.run("sequencer", options)

        fresh = Pipeline(store=tmp_path / "store")
        artifact = fresh.synthesize("sequencer", SynthesisOptions(level=2, assume_csc=True))
        assert fresh.stage_calls["analyze"] == 0
        assert fresh.stage_calls["refine"] == 0
        assert fresh.stage_calls["synthesize"] == 1
        cold = Pipeline().synthesize(
            "sequencer", SynthesisOptions(level=2, assume_csc=True)
        )
        assert artifact.circuit.to_json() == cold.circuit.to_json()

    def test_refine_document_does_not_nest_the_analysis(self):
        """The analysis has its own document; refine must not duplicate it."""
        report = Pipeline().run("sequencer", SynthesisOptions(assume_csc=True))
        refine_doc = report.refinement.to_json()
        assert "analysis" not in refine_doc
        # a standalone refine document still rehydrates (scaffolding rebuilt
        # from the STG around the frozen refined covers)
        from repro.api.artifacts import RefinementArtifact

        standalone = RefinementArtifact.from_json(refine_doc)
        assert standalone.analysis is None
        stg = Spec.load("sequencer").stg
        standalone.ensure_handles(stg)
        original = report.refinement.approximation.cover_functions
        rebuilt = standalone.approximation.cover_functions
        assert set(original) == set(rebuilt)
        for place in original:
            assert original[place].to_json() == rebuilt[place].to_json()

    def test_wrong_stage_and_version_are_rejected(self):
        report = Pipeline().run("fig1", SynthesisOptions(assume_csc=True))
        document = report.synthesis.to_json()
        with pytest.raises(ValueError):
            AnalysisArtifact.from_json(document)
        stale = dict(document)
        stale["version"] = 999
        with pytest.raises(ValueError):
            SynthesisArtifact.from_json(stale)


class TestStoreBasics:
    def test_put_get_and_stats(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        key = ("analyze", "hash", (True, False))
        assert store.get(key) is None
        store.put(key, {"stage": "analyze", "x": 1}, stage="analyze", spec_name="s")
        assert store.get(key) == {"stage": "analyze", "x": 1}
        stats = store.stats()
        assert stats["entries"] == 1
        assert stats["per_stage"] == {"analyze": 1}
        assert stats["bytes"] > 0
        assert stats["session"]["hits"] == 1
        assert stats["session"]["misses"] == 1
        assert stats["session"]["writes"] == 1

    def test_corrupted_entry_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        key = ("map", "h", None)
        path = store.put(key, {"ok": True})
        path.write_text("{ not json")
        assert store.get(key) is None

    def test_clear_removes_entries(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        for index in range(3):
            store.put(("stage", index), {"index": index})
        assert store.clear() == 3
        assert store.stats()["entries"] == 0

    def test_clear_scoped_by_spec_pattern(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put(("a",), {"x": 1}, stage="analyze", spec_name="glatch_3")
        store.put(("b",), {"x": 2}, stage="analyze", spec_name="glatch_5")
        store.put(("c",), {"x": 3}, stage="analyze", spec_name="sequencer")
        assert store.clear(spec_pattern="glatch_*") == 2
        remaining = [entry["spec"] for entry in store.entries()]
        assert remaining == ["sequencer"]

    def test_clear_sweeps_orphaned_temp_files(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        path = store.put(("a",), {"x": 1}, spec_name="s")
        # simulate a writer killed between mkstemp and os.replace
        orphan = path.parent / ".deadbeef0000-orphan.tmp"
        orphan.write_text("partial")
        assert store.clear() == 2
        assert not orphan.exists()

    def test_default_store_path_honours_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "custom"))
        assert default_store_path() == tmp_path / "custom"


class TestCacheKeyCorrectness:
    def test_latch_area_and_allow_latch_do_not_collide(self, tmp_path):
        """Libraries differing only in latch_area/allow_latch get own keys."""
        base = default_library()
        bigger_latch = dc_replace(base, latch_area=base.latch_area + 10)
        no_latch = dc_replace(base, allow_latch=False)

        # level 1 keeps the C-latch architecture (latch_area matters)
        options = SynthesisOptions(level=1, assume_csc=True)
        pipeline = Pipeline(store=tmp_path / "store")
        mapped_base = pipeline.map("sequencer", options, library=base)
        mapped_big = pipeline.map("sequencer", options, library=bigger_latch)
        mapped_free = pipeline.map("sequencer", options, library=no_latch)
        # three distinct computations, three distinct cached artifacts
        assert pipeline.stage_calls["map"] == 3
        assert mapped_base.latch_count > 0
        assert mapped_big.total_area > mapped_base.total_area
        assert mapped_free.latch_count == 0

        # and a fresh process resolves each from its own store entry
        fresh = Pipeline(store=tmp_path / "store")
        again_base = fresh.map("sequencer", options, library=base)
        again_big = fresh.map("sequencer", options, library=bigger_latch)
        again_free = fresh.map("sequencer", options, library=no_latch)
        assert fresh.stage_calls["map"] == 0
        assert again_base.total_area == mapped_base.total_area
        assert again_big.total_area == mapped_big.total_area
        assert again_free.netlist.to_json() == mapped_free.netlist.to_json()

    def test_different_code_version_is_ignored_not_crashed(self, tmp_path):
        root = tmp_path / "store"
        old = Pipeline(store=ArtifactStore(root, code_version="some-older-release"))
        options = SynthesisOptions(assume_csc=True)
        old.run("sequencer", options)
        assert ArtifactStore(root, code_version="some-older-release").stats()["entries"] > 0

        current = Pipeline(store=ArtifactStore(root))
        report = current.run("sequencer", options)
        # every stage recomputed: the stale entries are invisible
        assert current.stage_calls["analyze"] == 1
        assert current.stage_calls["synthesize"] == 1
        assert current.store_hits.total() == 0
        assert report.literals == Pipeline().run("sequencer", options).literals
        # the store now reports the old entries as stale
        stats = ArtifactStore(root).stats()
        assert stats["stale_entries"] > 0

    def test_unwritable_store_degrades_gracefully(self, tmp_path):
        root = tmp_path / "ro-store"
        root.mkdir()
        store = ArtifactStore(root)
        os.chmod(root, 0o500)
        try:
            pipeline = Pipeline(store=store)
            report = pipeline.run("fig1", SynthesisOptions(assume_csc=True))
            assert report.literals > 0
        finally:
            os.chmod(root, 0o700)


class TestFreshProcessResume:
    def test_second_process_performs_zero_stage_computations(self, tmp_path):
        """The headline acceptance criterion, differential-checked."""
        store = tmp_path / "store"
        script = (
            "import json, sys\n"
            "from repro.api import Pipeline, SynthesisOptions\n"
            "p = Pipeline(store=sys.argv[1])\n"
            "r = p.run('sequencer', SynthesisOptions(assume_csc=True),\n"
            "          map_technology=True, verify=True, verify_mapped=True)\n"
            "print(json.dumps({'stage_calls': dict(p.stage_calls),\n"
            "                  'store_hits': dict(p.store_hits),\n"
            "                  'report': r.to_json()}))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(Path(__file__).resolve().parent.parent / "src")
            + os.pathsep
            + env.get("PYTHONPATH", "")
        )

        def run_once() -> dict:
            result = subprocess.run(
                [sys.executable, "-c", script, str(store)],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            return json.loads(result.stdout)

        first = run_once()
        assert sum(first["stage_calls"].values()) == 6

        second = run_once()
        assert second["stage_calls"] == {}, "fresh process must compute nothing"
        assert sum(second["store_hits"].values()) == 6

        # differential: identical to a run that never saw a store
        no_store = Pipeline()
        reference = no_store.run(
            "sequencer",
            SynthesisOptions(assume_csc=True),
            map_technology=True,
            verify=True,
            verify_mapped=True,
        )
        resumed = Report.from_json(second["report"])
        assert resumed.literals == reference.literals
        assert resumed.synthesis.circuit.to_json() == reference.circuit.to_json()
        assert resumed.mapping.netlist.to_json() == reference.mapping.netlist.to_json()
        assert (
            resumed.verification.speed_independent
            == reference.verification.speed_independent
        )
        assert (
            resumed.mapped_verification.equivalent
            == reference.mapped_verification.equivalent
        )
