"""Tests of the gate-level IR, the library matching, and netlist mapping."""

from __future__ import annotations

import itertools
import json

import pytest

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube
from repro.gates import (
    GateInstance,
    GateKind,
    GateLevelSimulator,
    GateLibrary,
    GateNetlist,
    LibraryCell,
    Net,
    NetlistError,
    SimulationError,
    default_library,
    get_library,
    latch_free_library,
    two_input_library,
)
from repro.synthesis import SynthesisOptions, map_circuit, synthesize
from repro.synthesis.netlist import (
    Architecture,
    Circuit,
    combinational_implementation,
    latch_implementation,
)


def _cover(patterns, variables):
    return Cover.from_strings(patterns, variables)


class TestLibraryMatching:
    def test_cheapest_fit_tie_break_is_order_independent(self):
        a = LibraryCell("zcell", max_terms=2, max_literals_per_term=2,
                        max_total_literals=4, area=10)
        b = LibraryCell("acell", max_terms=2, max_literals_per_term=2,
                        max_total_literals=3, area=10)
        cover = _cover(["11-"], ("x", "y", "z"))
        forward = GateLibrary("f", cells=[a, b]).cheapest_fit(cover)
        backward = GateLibrary("b", cells=[b, a]).cheapest_fit(cover)
        # equal area: the smaller total-literal capacity wins, regardless of
        # declaration order
        assert forward.name == backward.name == "acell"

    def test_cheapest_fit_name_breaks_exact_ties(self):
        a = LibraryCell("beta", 1, 2, 2, 6)
        b = LibraryCell("alpha", 1, 2, 2, 6)
        cover = _cover(["11"], ("x", "y"))
        assert GateLibrary("l", cells=[a, b]).cheapest_fit(cover).name == "alpha"
        assert GateLibrary("l", cells=[b, a]).cheapest_fit(cover).name == "alpha"

    def test_widest_and(self):
        assert default_library().widest_and() == 4
        assert two_input_library().widest_and() == 2

    def test_wide_term_maps_to_decomposed_and_tree(self):
        library = default_library()
        variables = tuple("abcdefg")
        cover = Cover([Cube({v: 1 for v in variables})], variables)
        area, cells = library.map_cover(cover)
        # 7 literals: and4 + and3 joined by an and2 — a deterministic
        # structure whose area is the sum of the chosen cells
        assert cells == ["and4", "and3", "and2"]
        assert area == 10 + 8 + 6

    def test_split_cover_or_tree_area(self):
        library = default_library()
        variables = tuple("abcdefghij")
        # five product terms exceed every cell's term capacity: the cover is
        # split per term (and2 each) and joined by four 2-input ORs
        cubes = [
            Cube({variables[2 * i]: 1, variables[2 * i + 1]: 1}) for i in range(5)
        ]
        area, cells = library.map_cover(Cover(cubes, variables))
        assert cells.count("or2") == len(cubes) - 1
        assert cells.count("and2") == len(cubes)
        assert area == 5 * 6 + 4 * library.or2_area

    def test_degenerate_library_uses_wide_and_pseudo_cell(self):
        library = GateLibrary("inv-only", cells=[LibraryCell("inv", 1, 1, 1, 2)])
        cover = _cover(["111"], ("x", "y", "z"))
        area, cells = library.map_cover(cover)
        assert cells == ["wide-and3"]
        assert area == 2 * 3 + 2


class TestLibrarySerialization:
    def test_json_round_trip(self):
        library = default_library()
        clone = GateLibrary.from_json(library.to_json())
        assert clone == library

    def test_builtins_resolve_by_name(self):
        assert get_library("generic-cmos").name == "generic-cmos"
        assert get_library("two-input-only").name == "two-input-only"
        free = get_library("latch-free")
        assert free.name == "latch-free" and not free.allow_latch

    def test_unknown_library_raises(self):
        with pytest.raises(ValueError, match="unknown gate library"):
            get_library("no-such-library")

    def test_from_file(self, tmp_path):
        path = tmp_path / "lib.json"
        path.write_text(json.dumps(two_input_library().to_json()))
        assert get_library(str(path)) == two_input_library()


class TestNetlistValidation:
    def _simple(self):
        netlist = GateNetlist(
            name="t",
            inputs=("a",),
            outputs=("y",),
            nets={
                "a": Net("a", "input", signal="a"),
                "y": Net("y", "output", signal="y"),
            },
            gates=[
                GateInstance("g_y", "inv", GateKind.SOP, ("a",), "y", (((0, 0),),), 2)
            ],
        )
        return netlist

    def test_valid_netlist_passes(self):
        self._simple().validate()

    def test_undriven_output_is_rejected(self):
        netlist = self._simple()
        netlist.gates = []
        with pytest.raises(NetlistError, match="no driver"):
            netlist.validate()

    def test_double_driver_is_rejected(self):
        netlist = self._simple()
        netlist.gates.append(
            GateInstance("g2", "inv", GateKind.SOP, ("a",), "y", (((0, 1),),), 2)
        )
        with pytest.raises(NetlistError, match="multiple drivers"):
            netlist.validate()

    def test_internal_cycle_is_rejected(self):
        netlist = self._simple()
        netlist.nets["w1"] = Net("w1")
        netlist.nets["w2"] = Net("w2")
        netlist.gates = [
            GateInstance("g1", "inv", GateKind.SOP, ("w2",), "w1", (((0, 0),),), 2),
            GateInstance("g2", "inv", GateKind.SOP, ("w1",), "w2", (((0, 0),),), 2),
            GateInstance("g_y", "inv", GateKind.SOP, ("w1",), "y", (((0, 0),),), 2),
        ]
        with pytest.raises(NetlistError, match="cycle"):
            netlist.validate()

    def test_feedback_through_signal_nets_is_legal(self):
        # a C-element complex gate reads its own output: y = ab + y(a + b)
        variables = ("a", "b", "y")
        cover = Cover(
            [Cube({"a": 1, "b": 1}), Cube({"a": 1, "y": 1}), Cube({"b": 1, "y": 1})],
            variables,
        )
        circuit = Circuit(
            name="celem",
            implementations={"y": combinational_implementation("y", cover)},
            signal_order=variables,
        )
        mapped = map_circuit(circuit)
        mapped.netlist.validate()
        simulator = GateLevelSimulator(mapped.netlist)
        for bits in itertools.product((0, 1), repeat=3):
            code = dict(zip(variables, bits))
            assert simulator.settle(code)["y"] == circuit["y"].next_value(code)

    def test_json_round_trip(self):
        netlist = self._simple()
        clone = GateNetlist.from_json(netlist.to_json())
        assert clone == netlist

    def test_stats(self):
        stats = self._simple().stats()
        assert stats["gates"] == 1 and stats["latches"] == 0
        assert stats["cells"] == {"inv": 1}


class TestMappedStructures:
    def test_set_reset_latch_structure(self):
        variables = ("a", "b", "x")
        implementation = latch_implementation(
            "x",
            _cover(["11-"], variables),
            _cover(["00-"], variables),
        )
        circuit = Circuit("sr", {"x": implementation}, signal_order=variables)
        mapped = map_circuit(circuit)
        kinds = [gate.kind for gate in mapped.netlist.gates]
        assert kinds.count(GateKind.C_LATCH) == 1
        latch = mapped.netlist.drivers()["x"]
        assert latch.inputs == ("x__set", "x__reset")
        assert mapped.per_signal_area["x"] == 6 + 6 + 8  # two and2 + c-latch

    def test_gated_latch_collapse(self):
        variables = ("a", "b", "x")
        implementation = latch_implementation(
            "x",
            Cover([Cube({"a": 1, "b": 1})], variables),
            Cover([Cube({"a": 1, "b": 0})], variables),
            architecture=Architecture.GATED_LATCH,
        )
        circuit = Circuit("gl", {"x": implementation}, signal_order=variables)
        mapped = map_circuit(circuit)
        cells = mapped.cells_used["x"]
        assert "gated-latch" in cells and "c-latch" not in cells
        latch = mapped.netlist.drivers()["x"]
        assert latch.kind is GateKind.GATED_LATCH
        # data pin is b, positive polarity (the set cube's literal)
        assert latch.inputs[1] == "b"
        assert latch.terms == (((1, 1),),)
        simulator = GateLevelSimulator(mapped.netlist)
        for bits in itertools.product((0, 1), repeat=3):
            code = dict(zip(variables, bits))
            assert simulator.settle(code)["x"] == implementation.next_value(code)

    def test_gated_latch_literal_count_shares_set_reset_literals(self):
        # Appendix D: data input = shared part, control = differing literal
        variables = ("a", "b", "c", "x")
        implementation = latch_implementation(
            "x",
            Cover([Cube({"a": 1, "b": 0, "c": 1})], variables),
            Cover([Cube({"a": 1, "b": 0, "c": 0})], variables),
            architecture=Architecture.GATED_LATCH,
        )
        # two shared literals (a, b') + data + control
        assert implementation.literal_count() == 2 + 2
        mapped = map_circuit(Circuit("gl2", {"x": implementation}, signal_order=variables))
        latch = mapped.netlist.drivers()["x"]
        assert latch.kind is GateKind.GATED_LATCH
        enable = mapped.netlist.drivers()[latch.inputs[0]]
        # the enable cone computes the shared cube a b'
        assert enable.cell == "and2"
        simulator = GateLevelSimulator(mapped.netlist)
        for bits in itertools.product((0, 1), repeat=4):
            code = dict(zip(variables, bits))
            assert simulator.settle(code)["x"] == implementation.next_value(code)

    def test_gated_latch_negative_control_polarity(self):
        variables = ("a", "b", "x")
        implementation = latch_implementation(
            "x",
            Cover([Cube({"a": 1, "b": 0})], variables),
            Cover([Cube({"a": 1, "b": 1})], variables),
            architecture=Architecture.GATED_LATCH,
        )
        mapped = map_circuit(Circuit("gl3", {"x": implementation}, signal_order=variables))
        latch = mapped.netlist.drivers()["x"]
        assert latch.terms == (((1, 0),),)  # data pin consumed complemented
        simulator = GateLevelSimulator(mapped.netlist)
        for bits in itertools.product((0, 1), repeat=3):
            code = dict(zip(variables, bits))
            assert simulator.settle(code)["x"] == implementation.next_value(code)

    def test_er_one_hot_maps_one_gate_per_region(self):
        variables = ("a", "b", "x")
        rise_1 = Cover([Cube({"a": 1, "b": 0, "x": 0})], variables)
        rise_2 = Cover([Cube({"a": 0, "b": 1, "x": 0})], variables)
        fall = Cover([Cube({"a": 1, "b": 1, "x": 1})], variables)
        implementation = latch_implementation(
            "x",
            rise_1.union(rise_2),
            fall,
            architecture=Architecture.ER_ONE_HOT,
            region_covers={"x+/1": rise_1, "x+/2": rise_2, "x-": fall},
        )
        circuit = Circuit("er", {"x": implementation}, signal_order=variables)
        mapped = map_circuit(circuit)
        cells = mapped.cells_used["x"]
        # three region gates, one OR joining the two rising regions, a latch
        assert cells.count("c-latch") == 1
        assert cells.count("or2") == 1
        assert len([c for c in cells if c not in ("or2", "c-latch")]) == 3
        region_nets = [
            net for net in mapped.netlist.nets if "__er_" in net
        ]
        assert len(region_nets) == 3
        simulator = GateLevelSimulator(mapped.netlist)
        for bits in itertools.product((0, 1), repeat=3):
            code = dict(zip(variables, bits))
            assert simulator.settle(code)["x"] == implementation.next_value(code)

    def test_er_one_hot_from_engine_level_1(self, fig1):
        result = synthesize(fig1, SynthesisOptions(level=1))
        mapped = map_circuit(result.circuit)
        for implementation in result.circuit:
            assert implementation.architecture is Architecture.ER_ONE_HOT
            cells = mapped.cells_used[implementation.signal]
            region_gates = [c for c in cells if c not in ("or2", "c-latch")]
            assert len(region_gates) >= len(implementation.region_covers)

    def test_latch_free_library_has_no_memory_cells(self):
        variables = ("a", "b", "x")
        implementation = latch_implementation(
            "x", _cover(["11-"], variables), _cover(["00-"], variables)
        )
        circuit = Circuit("lf", {"x": implementation}, signal_order=variables)
        mapped = map_circuit(circuit, "latch-free")
        assert all(gate.kind is GateKind.SOP for gate in mapped.netlist.gates)
        simulator = GateLevelSimulator(mapped.netlist)
        # q = set + q * reset' agrees with the C-latch wherever the covers
        # are not simultaneously on
        for bits in itertools.product((0, 1), repeat=3):
            code = dict(zip(variables, bits))
            if code["a"] == 1 and code["b"] == 1:
                continue
            assert simulator.settle(code)["x"] == implementation.next_value(code)

    def test_two_input_library_uses_only_basic_cells(self, fig1):
        result = synthesize(fig1, SynthesisOptions(level=5))
        mapped = map_circuit(result.circuit, "two-input-only")
        allowed = {"inv", "and2", "or2", "c-latch", "gated-latch", "const0", "const1"}
        assert set(mapped.netlist.cell_histogram()) <= allowed

    def test_mapping_area_equals_netlist_area(self, fig1):
        result = synthesize(fig1, SynthesisOptions(level=5))
        mapped = map_circuit(result.circuit)
        assert mapped.total_area == mapped.netlist.total_area()
        assert mapped.total_area == sum(mapped.per_signal_area.values())


class TestSimulator:
    def test_missing_signal_raises(self):
        variables = ("a", "x")
        circuit = Circuit(
            "m",
            {"x": combinational_implementation("x", _cover(["1-"], variables))},
            signal_order=variables,
        )
        simulator = GateLevelSimulator(map_circuit(circuit).netlist)
        with pytest.raises(SimulationError, match="missing signal"):
            simulator.settle({"x": 0})
