"""Tests for :mod:`repro.corpus` — generator, checks, shrinker, campaign."""

from __future__ import annotations

import json
import random

import pytest

from repro.api.spec import Spec
from repro.corpus.campaign import CampaignConfig, run_campaign
from repro.corpus.checks import run_check_suite
from repro.corpus.generator import (
    GeneratorConfig,
    build_from_recipe,
    classify_stg,
    generate_corpus,
    generate_spec,
    random_stg,
)
from repro.corpus.idioms import IDIOMS, build_idiom
from repro.corpus.quarantine import CorpusQuarantine
from repro.corpus.shrink import shrink_recipe, shrink_stg
from repro.petri.reachability import build_reachability_graph
from repro.stg.parser import parse_g
from repro.stg.writer import write_g

FAST = GeneratorConfig(max_markings=300)


# ---------------------------------------------------------------------- #
# Idioms
# ---------------------------------------------------------------------- #


class TestIdioms:
    @pytest.mark.parametrize("name", sorted(IDIOMS))
    def test_every_idiom_is_live_consistent_and_bounded(self, name):
        _, param_spec = IDIOMS[name]
        params = {key: low for key, (low, high) in param_spec.items()}
        stg = build_idiom(name, "u_", params)
        classification = classify_stg(stg, max_markings=300)
        assert classification is not None
        assert classification.consistent, name
        assert classification.live, name

    @pytest.mark.parametrize("name", sorted(IDIOMS))
    def test_idioms_round_trip_through_g_format(self, name):
        stg = build_idiom(name, "u_")
        text = write_g(stg)
        again = write_g(parse_g(text))
        assert text == again

    def test_credit_handshake_is_k_bounded(self):
        stg = build_idiom("credit_handshake", "u_", {"credit": 3})
        classification = classify_stg(stg, max_markings=300)
        assert classification.klass == "k-bounded"

    def test_prefixes_keep_instances_disjoint(self):
        first = build_idiom("independent_cell", "a_")
        second = build_idiom("independent_cell", "b_")
        assert not set(first.signal_names) & set(second.signal_names)
        assert not set(first.transitions) & set(second.transitions)


# ---------------------------------------------------------------------- #
# Generator
# ---------------------------------------------------------------------- #


class TestGenerator:
    def test_same_seed_same_corpus(self):
        first = [cs.spec.content_hash for cs in generate_corpus(8, seed=11, config=FAST)]
        second = [cs.spec.content_hash for cs in generate_corpus(8, seed=11, config=FAST)]
        assert first == second

    def test_different_seeds_differ(self):
        first = [cs.spec.content_hash for cs in generate_corpus(6, seed=1, config=FAST)]
        second = [cs.spec.content_hash for cs in generate_corpus(6, seed=2, config=FAST)]
        assert first != second

    def test_recipe_replays_to_identical_spec(self):
        for index in range(8):
            corpus_spec = generate_spec(23, index, FAST)
            replayed = build_from_recipe(corpus_spec.recipe)
            spec = Spec.from_stg(replayed, name=corpus_spec.spec.name)
            assert spec.content_hash == corpus_spec.spec.content_hash

    def test_recipes_are_json_transportable(self):
        for index in range(6):
            corpus_spec = generate_spec(31, index, FAST)
            recipe = json.loads(json.dumps(corpus_spec.recipe))
            replayed = build_from_recipe(recipe)
            spec = Spec.from_stg(replayed, name=corpus_spec.spec.name)
            assert spec.content_hash == corpus_spec.spec.content_hash

    def test_corpus_mixes_classes_and_validity(self):
        corpus = list(generate_corpus(20, seed=7, config=FAST))
        klasses = {cs.klass for cs in corpus}
        assert "safe" in klasses
        assert "k-bounded" in klasses
        assert any(cs.consistent for cs in corpus)
        assert any(not cs.consistent for cs in corpus)

    def test_generated_specs_respect_state_budget(self):
        for corpus_spec in generate_corpus(10, seed=3, config=FAST):
            assert corpus_spec.states <= FAST.max_markings

    def test_classify_rejects_unbounded_nets(self):
        from repro.stg.signals import SignalType
        from repro.stg.stg import STG

        stg = STG("grow")
        stg.add_signal("a", SignalType.OUTPUT)
        stg.add_transition("a+")
        stg.add_transition("a-")
        stg.add_place("p0", tokens=1)
        stg.add_place("sink")
        stg.add_arc("p0", "a+")
        stg.add_arc("a+", "p0")
        stg.add_arc("a+", "sink")  # pure producer: unbounded
        stg.add_arc("p0", "a-")
        stg.add_arc("a-", "p0")
        assert classify_stg(stg, max_markings=50) is None


class TestRandomStg:
    """The promoted randomized-STG machinery keeps its PR 4 semantics."""

    def test_deterministic_under_seeded_rng(self):
        first = write_g(random_stg(random.Random(5)))
        second = write_g(random_stg(random.Random(5)))
        assert first == second

    def test_allow_unsafe_yields_multi_token_marking(self):
        rng = random.Random(9)
        stg = random_stg(rng, allow_unsafe=True)
        assert any(stg.initial_marking.tokens(p) > 1 for p in stg.initial_marking)


# ---------------------------------------------------------------------- #
# Round-trip property over generated STGs (writer/parser satellite)
# ---------------------------------------------------------------------- #


class TestGeneratedRoundTrip:
    def test_generated_corpus_round_trips_canonically(self):
        for corpus_spec in generate_corpus(15, seed=13, config=FAST):
            text = corpus_spec.spec.text
            assert write_g(parse_g(text)) == text

    def test_multi_token_markings_survive_round_trip(self):
        stg = build_idiom("credit_handshake", "u_", {"credit": 4})
        text = write_g(stg)
        assert "=4" in text
        again = parse_g(text)
        assert again.initial_marking.tokens("u_pool") == 4
        assert write_g(again) == text

    def test_explicit_place_does_not_collapse_into_implicit_twin(self):
        # an explicit single-pred/single-succ place parallel to an implicit
        # place of the same transition pair must stay explicit, or the two
        # collide into one place on re-parse (the PR 7 writer fix)
        from repro.stg.signals import SignalType
        from repro.stg.stg import STG

        stg = STG("twin")
        stg.add_signal("r", SignalType.INPUT)
        stg.add_signal("a", SignalType.OUTPUT)
        for label in ("r+", "a+", "r-", "a-"):
            stg.add_transition(label)
        stg.add_arc("r+", "a+")
        stg.add_arc("a+", "r-")
        stg.add_arc("r-", "a-")
        stg.add_arc("a-", "r+")
        stg.net.set_initial_tokens("<a-,r+>", 1)
        stg.add_place("pool", tokens=3)
        stg.add_arc("a-", "pool")
        stg.add_arc("pool", "r+")
        text = write_g(stg)
        again = parse_g(text)
        assert again.initial_marking.tokens("pool") == 3
        assert again.initial_marking.tokens("<a-,r+>") == 1
        assert again.net.num_places() == stg.net.num_places()
        assert write_g(again) == text

    def test_unusual_signal_names_round_trip(self):
        from repro.stg.signals import SignalType
        from repro.stg.stg import STG

        stg = STG("odd")
        for signal in ("req_1", "ack.x", "d[3]"):
            stg.add_signal(signal, SignalType.OUTPUT)
        labels = [f"{s}{d}" for s in ("req_1", "ack.x", "d[3]") for d in "+-"]
        for label in labels:
            stg.add_transition(label)
        for i, label in enumerate(labels):
            stg.add_arc(label, labels[(i + 1) % len(labels)])
        stg.net.set_initial_tokens(f"<{labels[-1]},{labels[0]}>", 1)
        text = write_g(stg)
        again = parse_g(text)
        assert set(again.signal_names) == set(stg.signal_names)
        assert write_g(again) == text


# ---------------------------------------------------------------------- #
# Check suite
# ---------------------------------------------------------------------- #


class TestCheckSuite:
    @pytest.mark.parametrize("name", ["fig1", "sequencer", "muller_pipeline_4"])
    def test_benchmarks_pass_every_differential(self, name):
        report = run_check_suite(Spec.from_benchmark(name), max_markings=800)
        assert report.ok, [f.to_dict() for f in report.failures]
        assert report.synthesized

    def test_generated_corpus_passes_clean(self):
        for corpus_spec in generate_corpus(10, seed=7, config=FAST):
            report = run_check_suite(corpus_spec.spec, max_markings=300)
            assert report.ok, (
                corpus_spec.spec.name,
                [f.to_dict() for f in report.failures],
            )

    def test_force_flip_is_caught_and_marked_injected(self):
        report = run_check_suite(
            Spec.from_benchmark("sequencer"), max_markings=800, force_flip=True
        )
        assert not report.ok
        assert any(f.check == "mapped" and f.injected for f in report.failures)

    def test_corpus_flip_fault_site_drives_the_flip(self):
        from repro.api.faults import FaultInjector

        spec = Spec.from_benchmark("sequencer")
        always = FaultInjector.parse("seed=1;corpus.flip=1")
        report = run_check_suite(spec, max_markings=800, faults=always)
        assert any(f.injected for f in report.failures)
        never = FaultInjector.parse("seed=1;corpus.flip=0")
        report = run_check_suite(spec, max_markings=800, faults=never)
        assert report.ok

    def test_report_is_picklable_and_has_done_event_fields(self):
        import pickle

        report = run_check_suite(Spec.from_benchmark("fig1"), max_markings=400)
        clone = pickle.loads(pickle.dumps(report))
        assert clone.spec_hash == report.spec_hash
        assert "states" in clone.event_detail()
        assert clone.total_seconds >= 0


# ---------------------------------------------------------------------- #
# Shrinker
# ---------------------------------------------------------------------- #


class TestShrink:
    def test_shrinks_to_single_cell_under_forced_flip(self):
        recipe = {
            "kind": "compose",
            "name": "big",
            "idioms": [
                {"name": "independent_cell", "prefix": "a_", "params": {}},
                {"name": "muller_stage_chain", "prefix": "b_", "params": {"stages": 3}},
            ],
            "rewires": [],
            "mutations": [],
        }

        def failing(stg):
            spec = Spec.from_stg(stg, name="shrink")
            report = run_check_suite(spec, max_markings=300, force_flip=True)
            return any(f.check == "mapped" for f in report.failures)

        reduced = shrink_recipe(recipe, failing)
        assert len(reduced["idioms"]) == 1
        minimal = shrink_stg(build_from_recipe(reduced), failing)
        # 1-minimal: one handshake cell (2 signals, 4 transitions)
        assert len(minimal.signal_names) <= 2
        assert len(minimal.transitions) <= 4
        assert failing(minimal)

    def test_param_reduction_shrinks_idiom_size(self):
        recipe = {
            "kind": "compose",
            "name": "deep",
            "idioms": [
                {"name": "muller_stage_chain", "prefix": "m_", "params": {"stages": 3}},
            ],
            "rewires": [],
            "mutations": [],
        }

        def failing(stg):
            return bool(stg.non_input_signals)  # any output-bearing STG "fails"

        reduced = shrink_recipe(recipe, failing)
        assert reduced["idioms"][0]["params"]["stages"] == 1

    def test_shrink_stg_lowers_token_counts(self):
        stg = build_idiom("credit_handshake", "u_", {"credit": 5})

        def failing(candidate):
            return "u_pool" in candidate.places

        minimal = shrink_stg(stg, failing)
        assert minimal.initial_marking.tokens("u_pool") == 1

    def test_shrink_never_returns_invalid_stg(self):
        corpus_spec = generate_spec(17, 0, FAST)

        def failing(stg):
            return True  # everything "fails": maximal reduction pressure

        minimal = shrink_stg(corpus_spec.spec.stg, failing)
        text = write_g(minimal)
        assert write_g(parse_g(text)) == text


# ---------------------------------------------------------------------- #
# Campaign
# ---------------------------------------------------------------------- #


class TestCampaign:
    def test_clean_campaign_has_no_findings(self, tmp_path):
        report = run_campaign(
            CampaignConfig(
                count=8, seed=7, jobs=0, max_markings=300,
                quarantine=CorpusQuarantine(tmp_path / "q"), shrink=False,
            )
        )
        assert report.ok
        assert report.checked == 8
        assert not (tmp_path / "q").exists()

    def test_digest_is_deterministic_and_jobs_independent(self, tmp_path):
        sequential = run_campaign(
            CampaignConfig(count=6, seed=5, jobs=0, max_markings=300, shrink=False)
        )
        pooled = run_campaign(
            CampaignConfig(count=6, seed=5, jobs=2, max_markings=300, shrink=False)
        )
        assert sequential.digest == pooled.digest
        assert sequential.checked == pooled.checked == 6

    def test_injected_fault_is_shrunk_quarantined_and_replays(self, tmp_path):
        quarantine = CorpusQuarantine(tmp_path / "q")
        report = run_campaign(
            CampaignConfig(
                count=8, seed=7, jobs=0, max_markings=300,
                faults="seed=3;corpus.flip=1", quarantine=quarantine, shrink=True,
            )
        )
        assert not report.ok
        injected = [f for f in report.findings if f.injected]
        assert injected
        assert all(f.quarantined for f in injected)
        entries = quarantine.entries()
        assert entries
        for entry in entries:
            assert entry.reason["force_flip"] is True
            assert entry.expect == "failure"
            # the filed artifact is canonical .g text
            text = entry.path.read_text()
            assert write_g(parse_g(text)) == text
        results = list(quarantine.replay())
        assert results and all(r.ok for r in results)

    def test_time_budget_bounds_generation(self):
        report = run_campaign(
            CampaignConfig(
                count=10_000, seed=1, jobs=0, max_markings=200,
                time_budget=0.3, shrink=False,
            )
        )
        assert report.budget_exhausted
        assert report.generated < 10_000


# ---------------------------------------------------------------------- #
# CLI surface
# ---------------------------------------------------------------------- #


class TestFuzzCli:
    def test_fuzz_run_json(self, tmp_path, capsys):
        from repro.api.cli import main

        code = main([
            "fuzz", "run", "--count", "5", "--seed", "7",
            "--max-markings", "300", "--json",
            "--quarantine", str(tmp_path / "q"),
        ])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["ok"] is True
        assert payload["checked"] == 5
        assert payload["digest"]

    def test_fuzz_run_exits_nonzero_on_findings(self, tmp_path, capsys):
        from repro.api.cli import main

        code = main([
            "fuzz", "run", "--count", "8", "--seed", "7",
            "--max-markings", "300", "--faults", "seed=3;corpus.flip=1",
            "--quarantine", str(tmp_path / "q"), "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["ok"] is False
        replay = main(["fuzz", "replay", "--quarantine", str(tmp_path / "q")])
        assert replay == 0

    def test_fuzz_gen_writes_spec_files(self, tmp_path, capsys):
        from repro.api.cli import main

        code = main([
            "fuzz", "gen", "--count", "3", "--seed", "5",
            "--max-markings", "300", "--json", "-o", str(tmp_path / "specs"),
        ])
        assert code == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 3
        for row in rows:
            stg = parse_g((tmp_path / "specs" / f"{row['name']}.g").read_text())
            graph = build_reachability_graph(stg.net, max_markings=400)
            assert len(graph) == row["states"]

    def test_list_json_reports_classes(self, capsys):
        from repro.api.cli import main

        assert main(["list", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        by_name = {row["name"]: row for row in rows}
        assert by_name["sequencer"]["class"] == "safe"
        assert by_name["philosophers_3"]["transitions"] > 0
        assert all(
            {"name", "signals", "transitions", "places", "class"} <= set(row)
            for row in rows
        )
