"""Tests of the exact SAT synthesis backend (:mod:`repro.sat`).

The exact backend's contract is differential: on every spec it must agree
with both existing backends at every reachable code, and its literal count
must never exceed either heuristic's (their covers are feasible points of
the exact search space).  Plus unit tests of the CNF building blocks.
"""

from __future__ import annotations

import itertools
import json

import pytest

from repro.api import Pipeline, SynthesisOptions, compare, get_backend
from repro.api.artifacts import SynthesisArtifact
from repro.api.backends import BACKEND_NAMES, SATBackend
from repro.api.spec import Spec
from repro.sat.encode import (
    CoverProblem,
    SatBudgetExceeded,
    add_at_most,
    add_counter,
    enumerate_implicants,
)
from repro.sat.solver import CDCLSolver
from repro.sat.synthesize import exact_synthesize, minimize_problem

#: small specs with enumerable state spaces and certified CSC
EXACT_NAMES = ["handshake_seq", "sequencer", "converter_2to4", "muller_pipeline_2"]


class TestCardinalityEncodings:
    @pytest.mark.parametrize("bound", [0, 1, 2, 3, 4])
    def test_add_at_most_exact_semantics(self, bound):
        # SAT under exactly those full assignments with cardinality <= bound
        n = 4
        clauses: list[list[int]] = []
        next_var = add_at_most(clauses, list(range(1, n + 1)), bound, n)
        for bits in itertools.product([False, True], repeat=n):
            solver = CDCLSolver()
            solver.ensure_vars(next_var)
            solver.add_clauses(clauses)
            assumptions = [v if bits[v - 1] else -v for v in range(1, n + 1)]
            verdict = solver.solve(assumptions=assumptions)
            assert verdict is (sum(bits) <= bound), (bits, bound)

    def test_add_at_most_negative_bound(self):
        clauses: list[list[int]] = []
        add_at_most(clauses, [1, 2], -1, 2)
        assert [] in clauses  # trivially unsatisfiable

    def test_add_at_most_weighted_by_repetition(self):
        # lit 1 with weight 2: one solver, bound 2 allows {1}, bound 1 bans it
        solver = CDCLSolver()
        solver.ensure_vars(2)
        clauses: list[list[int]] = []
        next_var = add_at_most(clauses, [1, 1, 2], 1, 2)
        solver.ensure_vars(next_var)
        solver.add_clauses(clauses)
        assert solver.solve(assumptions=[1]) is False  # weight 2 > bound 1
        assert solver.solve(assumptions=[2]) is True

    def test_add_counter_thresholds(self):
        # weights 2 + 1 + 3; every threshold output must track the sum
        items = [(1, 2), (2, 1), (3, 3)]
        width = 6
        clauses: list[list[int]] = []
        next_var, outputs = add_counter(clauses, items, width, 3)
        assert len(outputs) == width
        solver = CDCLSolver()
        solver.ensure_vars(next_var)
        solver.add_clauses(clauses)
        for bits in itertools.product([False, True], repeat=3):
            total = sum(w for (lit, w), b in zip(items, bits) if b)
            assumptions = [lit if b else -lit for (lit, _), b in zip(items, bits)]
            assert solver.solve(assumptions=assumptions) is True
            for j in range(width):
                if total >= j + 1:
                    assert solver.value_of(outputs[j]) is True
        # and the tightening clause actually bans the heavy selection
        solver.add_clause([-outputs[2]])  # sum <= 2
        assert solver.solve(assumptions=[3]) is False  # weight 3 alone busts it
        assert solver.solve(assumptions=[2, -1, -3]) is True

    def test_add_counter_empty(self):
        clauses: list[list[int]] = []
        assert add_counter(clauses, [], 4, 0) == (0, [])
        assert clauses == []


class TestImplicantEnumeration:
    def test_single_minterm_no_off_set_expands_to_tautology(self):
        # 2 signals, seed 0b00, empty off-set: the free expansion reaches
        # the universal cube (care == 0)
        cubes = enumerate_implicants(0b11, [0b00], [], budget=64)
        assert (0, 0) in cubes
        assert len(cubes) == 4  # 00, 0-, -0, --

    def test_off_set_prunes_expansion(self):
        # off-set = exactly 0b11: cubes containing it are pruned
        cubes = enumerate_implicants(0b11, [0b00], [(0b11, 0b11)], budget=64)
        assert (0, 0) not in cubes
        assert all((care & 0b11) != 0 or False for care, _ in cubes) or cubes
        for care, value in cubes:
            # no cube may contain the off minterm 11
            assert not ((0b11 & care) == (value & care) and value | ~care & 0b11)

    def test_primes_only_keeps_maximal(self):
        all_cubes = set(enumerate_implicants(0b11, [0b00], [(0b11, 0b11)], budget=64))
        primes = set(
            enumerate_implicants(
                0b11, [0b00], [(0b11, 0b11)], budget=64, primes_only=True
            )
        )
        assert primes < all_cubes
        # the two 1-literal cubes a'=(01 care, 00 val) and b' are the primes
        assert primes == {(0b01, 0b00), (0b10, 0b00)}

    def test_budget_raises(self):
        with pytest.raises(SatBudgetExceeded):
            enumerate_implicants((1 << 10) - 1, [0], [], budget=8)


class TestMinimizeProblem:
    def test_empty_on_set_is_the_empty_cover(self):
        problem = CoverProblem(
            signal="x", kind="set", signals_mask=0b11, on_codes=(), off_pairs=()
        )
        solution = minimize_problem(problem)
        assert solution.gates == 0 and solution.literals == 0
        assert solution.solutions == [[]]

    def test_two_minterm_merge(self):
        # on = {00, 01}, off = {10, 11}: minimum is the single cube a'
        problem = CoverProblem(
            signal="x",
            kind="complete",
            signals_mask=0b11,
            on_codes=(0b00, 0b10),  # bit0 = a varies; bit1 = b stays 0
            off_pairs=((0b01, 0b01),),  # b == 1 is off  (care=b, value=b)
        )
        solution = minimize_problem(problem)
        assert solution.gates == 1
        assert solution.literals == 1
        assert len(solution.solutions) == 1

    def test_infeasible_on_code_raises(self):
        from repro.sat.synthesize import ExactSynthesisError

        problem = CoverProblem(
            signal="x",
            kind="complete",
            signals_mask=0b1,
            on_codes=(0b0,),
            off_pairs=((0b0, 0b0),),  # off-set covers every code
        )
        with pytest.raises(ExactSynthesisError):
            minimize_problem(problem)

    def test_enumeration_cap_marks_truncation(self):
        # 2 on-minterms, generous off-free space, max_solutions=1
        problem = CoverProblem(
            signal="x",
            kind="complete",
            signals_mask=0b111,
            on_codes=(0b000, 0b111),
            off_pairs=(),
        )
        solution = minimize_problem(problem, max_solutions=1)
        assert len(solution.solutions) == 1
        assert solution.truncated is True


class TestExactSynthesize:
    def test_fig6_circuit_is_minimal_and_correct(self, fig6):
        result = exact_synthesize(fig6)
        assert result.circuit.metadata["sat"]["exact"] is True
        assert result.statistics["markings"] > 0
        # exact never beats the spec: verify against the state-based baseline
        from repro.statebased.synthesis import synthesize_state_based

        baseline = synthesize_state_based(fig6)
        assert result.circuit.literal_count() <= baseline.circuit.literal_count()

    def test_signals_subset(self, fig6):
        signal = sorted(fig6.non_input_signals)[0]
        result = exact_synthesize(fig6, signals=[signal])
        assert list(result.circuit.implementations) == [signal]

    def test_budget_exhaustion_raises_skip(self, fig6):
        with pytest.raises(SatBudgetExceeded):
            exact_synthesize(fig6, candidate_budget=1)


class TestSATBackend:
    def test_registered(self):
        assert "sat" in BACKEND_NAMES
        assert isinstance(get_backend("sat"), SATBackend)

    @pytest.mark.parametrize("name", EXACT_NAMES)
    def test_agrees_with_both_backends_and_never_worse(self, name):
        pipeline = Pipeline()
        spec = Spec.from_benchmark(name)
        options = SynthesisOptions(level=5, assume_csc=True)
        exact = pipeline.synthesize(spec, options, backend="sat")
        for baseline in ("structural", "statebased"):
            report = compare(
                spec, options, pipeline=pipeline, backends=(baseline, "sat")
            )
            assert report.matching, report.mismatches
            assert report.backends == (baseline, "sat")
            assert exact.literals <= report.structural.synthesis.literals

    def test_artifact_details_roundtrip(self):
        pipeline = Pipeline()
        spec = Spec.from_benchmark("sequencer")
        artifact = pipeline.synthesize(
            spec, SynthesisOptions(assume_csc=True), backend="sat"
        )
        assert artifact.details["exact"] is True
        assert artifact.details["minima"]  # per-signal minima counts
        restored = SynthesisArtifact.from_json(json.loads(json.dumps(artifact.to_json())))
        assert restored.details == json.loads(json.dumps(artifact.details))
        assert restored.literals == artifact.literals

    def test_store_roundtrip_preserves_details(self, tmp_path):
        from repro.api.store import ArtifactStore

        pipeline = Pipeline(store=ArtifactStore(tmp_path / "store"))
        spec = Spec.from_benchmark("sequencer")
        options = SynthesisOptions(assume_csc=True)
        first = pipeline.synthesize(spec, options, backend="sat")
        fresh = Pipeline(store=ArtifactStore(tmp_path / "store"))
        second = fresh.synthesize(spec, options, backend="sat")
        assert second.details == json.loads(json.dumps(first.details))
        assert second.literals == first.literals


class TestGapExperiment:
    def test_gap_rows_smoke(self):
        from repro.experiments.optimality_gap import gap_rows

        rows = gap_rows(names=["fig6", "muller_pipeline_2"])
        assert [r["spec"] for r in rows] == ["fig6", "muller_pipeline_2", "TOTAL"]
        for row in rows[:-1]:
            assert row["status"] == "ok"
            assert row["sound"] is True and row["matching"] is True
            assert row["exact_lits"] <= row["structural_lits"]
            assert row["exact_lits"] <= row["statebased_lits"]
        total = rows[-1]
        assert total["status"] == "2/2 ok"
        assert total["gap_lits"] == total["structural_lits"] - total["exact_lits"]

    def test_gap_registry_is_complete(self):
        from repro.benchmarks.registry import list_benchmarks
        from repro.experiments.optimality_gap import GAP_SPECS

        assert len(GAP_SPECS) == 13
        assert set(GAP_SPECS) <= set(list_benchmarks())


class TestCLI:
    def test_gap_command(self, capsys):
        from repro.api.cli import main

        code = main(["gap", "--spec", "fig6", "--json"])
        out = capsys.readouterr().out
        assert code == 0
        rows = json.loads(out)
        assert rows[-1]["spec"] == "TOTAL"
        assert rows[0]["sound"] is True

    def test_synthesize_sat_backend(self, capsys):
        from repro.api.cli import main

        code = main(["synthesize", "sequencer", "--backend", "sat", "--json"])
        out = capsys.readouterr().out
        assert code == 0
        data = json.loads(out)
        assert data["backend"] == "sat"
        assert data["synthesize"]["details"]["exact"] is True

    def test_compare_backend_pair(self, capsys):
        from repro.api.cli import main

        code = main(["compare", "fig6", "--backends", "statebased", "sat"])
        out = capsys.readouterr().out
        assert code == 0
        assert "MATCH" in out
