"""Property assertions for the benchmark suite used by the experiments."""

from __future__ import annotations

import pytest

from repro.benchmarks import get_benchmark, list_benchmarks
from repro.benchmarks.classic import CSC_VIOLATING, classic_names, load_classic
from repro.benchmarks.scalable import (
    dining_philosophers,
    independent_cells,
    independent_cells_marking_count,
    muller_pipeline,
)
from repro.petri.properties import is_free_choice, is_live, is_safe
from repro.petri.reachability import build_reachability_graph, count_reachable_markings
from repro.statebased.coding import check_csc
from repro.stg.consistency import check_consistency_state_based


class TestClassicSuite:
    @pytest.mark.parametrize("name", classic_names())
    def test_every_benchmark_is_a_valid_specification(self, name):
        stg = load_classic(name)
        graph = build_reachability_graph(stg.net)
        assert is_free_choice(stg.net), name
        assert is_safe(stg.net, graph), name
        assert is_live(stg.net, graph), name
        assert check_consistency_state_based(stg, graph).consistent, name

    @pytest.mark.parametrize("name", classic_names(synthesizable_only=True))
    def test_synthesizable_benchmarks_satisfy_csc(self, name):
        assert check_csc(load_classic(name)), name

    @pytest.mark.parametrize("name", sorted(CSC_VIOLATING))
    def test_csc_violating_benchmarks_really_violate_csc(self, name):
        assert not check_csc(load_classic(name)), name

    def test_registry_contains_the_suite(self):
        names = list_benchmarks()
        for name in classic_names():
            assert name in names
        assert "fig1" in names
        stg = get_benchmark("handshake_seq")
        assert stg.name == "handshake_seq"
        with pytest.raises(KeyError):
            get_benchmark("no_such_benchmark")


class TestScalableGenerators:
    @pytest.mark.parametrize("stages", [1, 2, 4, 6])
    def test_muller_pipeline_is_consistent_and_safe(self, stages):
        stg = muller_pipeline(stages)
        graph = build_reachability_graph(stg.net)
        assert is_safe(stg.net, graph)
        assert is_live(stg.net, graph)
        assert check_consistency_state_based(stg, graph).consistent
        assert check_csc(stg)

    @pytest.mark.parametrize("philosophers", [2, 3, 4])
    def test_dining_philosophers_is_consistent(self, philosophers):
        stg = dining_philosophers(philosophers)
        graph = build_reachability_graph(stg.net)
        assert is_safe(stg.net, graph)
        assert is_live(stg.net, graph)
        assert not is_free_choice(stg.net)  # the shared forks create non-FC conflicts
        assert check_consistency_state_based(stg, graph).consistent

    @pytest.mark.parametrize("cells", [1, 2, 3, 5])
    def test_independent_cells_marking_count_closed_form(self, cells):
        stg = independent_cells(cells)
        assert count_reachable_markings(stg.net) == independent_cells_marking_count(cells)

    def test_generator_argument_validation(self):
        with pytest.raises(ValueError):
            muller_pipeline(0)
        with pytest.raises(ValueError):
            dining_philosophers(1)
        with pytest.raises(ValueError):
            independent_cells(0)

    def test_large_instances_stay_linear_in_size(self):
        stg = independent_cells(45)
        assert stg.net.num_places() == 4 * 45
        assert stg.net.num_transitions() == 4 * 45
        pipeline = muller_pipeline(32)
        assert pipeline.net.num_transitions() == 2 * 32 + 2
