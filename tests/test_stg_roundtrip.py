"""Round-trip tests of the ``.g`` text format over the whole registry.

``parse_g ∘ write_g`` must be identity on every registered benchmark: same
signals (names, roles, initial values), same transitions, same net structure
up to implicit-place naming, same initial marking.  The canonical text must
also be a fixed point of another parse/write cycle, which is what the
:class:`repro.api.Spec` content hash relies on.

The error paths of malformed ``.g`` input must surface as the typed
:class:`repro.api.SpecError` through the API front door (and as
:class:`~repro.stg.parser.GFormatError` from the raw parser).
"""

from __future__ import annotations

import pytest

from repro.api import Spec, SpecError
from repro.benchmarks.registry import get_benchmark, list_benchmarks
from repro.stg.parser import GFormatError, parse_g
from repro.stg.writer import write_g

#: the full registry, excluding only the giant scalable instances whose
#: serialization is large (same code paths as their smaller siblings)
ROUNDTRIP_NAMES = [
    name
    for name in list_benchmarks()
    if not name.endswith(("_45", "_32"))
]


@pytest.mark.parametrize("name", ROUNDTRIP_NAMES)
def test_parse_write_round_trip_is_identity(name):
    original = get_benchmark(name)
    text = write_g(original)
    reparsed = parse_g(text, name=original.name)

    # signals: names, roles, initial values
    assert reparsed.signals == original.signals
    assert reparsed.initial_values == original.initial_values

    # transitions are preserved exactly (their names are their labels)
    assert set(reparsed.transitions) == set(original.transitions)

    # net structure: place/arc counts match (implicit places may be renamed)
    assert reparsed.net.num_places() == original.net.num_places()
    assert reparsed.net.num_arcs() == original.net.num_arcs()

    # per-transition environment survives up to place renaming: compare the
    # transition-to-transition adjacency through places
    def flow(stg):
        pairs = set()
        for place in stg.places:
            for source in stg.net.preset(place):
                for target in stg.net.postset(place):
                    pairs.add((source, target))
        return pairs

    assert flow(reparsed) == flow(original)

    # the marking covers the same transition environments
    assert (
        len(reparsed.initial_marking.marked_places)
        == len(original.initial_marking.marked_places)
    )

    # canonical text is a fixed point: a second cycle changes nothing
    assert write_g(reparsed) == text


@pytest.mark.parametrize("name", ["handshake_seq", "fig1", "philosophers_3"])
def test_round_trip_preserves_the_content_hash(name):
    spec = Spec.from_benchmark(name)
    assert Spec.from_text(spec.text).content_hash == spec.content_hash


MALFORMED_CASES = {
    "no_graph_section": ".model x\n.inputs a\n.outputs b\n.end\n",
    "single_node_graph_line": (
        ".model x\n.inputs a\n.outputs b\n.graph\na+\n.marking { p }\n.end\n"
    ),
    "unknown_marked_place": (
        ".model x\n.inputs a\n.outputs b\n.graph\na+ b+\nb+ a-\na- b-\nb- a+\n"
        ".marking { nowhere }\n.end\n"
    ),
    "unknown_implicit_place": (
        ".model x\n.inputs a\n.outputs b\n.graph\na+ b+\nb+ a-\na- b-\nb- a+\n"
        ".marking { <b+,b-> }\n.end\n"
    ),
    "malformed_implicit_token": (
        ".model x\n.inputs a\n.outputs b\n.graph\na+ b+\nb+ a-\na- b-\nb- a+\n"
        ".marking { <b-,a+,x+> }\n.end\n"
    ),
    "missing_marking": (
        ".model x\n.inputs a\n.outputs b\n.graph\na+ b+\nb+ a-\na- b-\nb- a+\n.end\n"
    ),
    "line_outside_graph": ".model x\nstray tokens here\n.graph\na+ b+\n.end\n",
}


@pytest.mark.parametrize("case", sorted(MALFORMED_CASES))
def test_malformed_g_raises_gformaterror(case):
    with pytest.raises(GFormatError):
        parse_g(MALFORMED_CASES[case])


@pytest.mark.parametrize("case", sorted(MALFORMED_CASES))
def test_malformed_g_surfaces_as_spec_error(case):
    with pytest.raises(SpecError) as excinfo:
        Spec.from_text(MALFORMED_CASES[case])
    # the typed error wraps the parser error and keeps its message
    assert isinstance(excinfo.value.__cause__, GFormatError)


def test_malformed_file_surfaces_as_spec_error(tmp_path):
    path = tmp_path / "broken.g"
    path.write_text(MALFORMED_CASES["no_graph_section"])
    with pytest.raises(SpecError, match="malformed .g file"):
        Spec.from_file(path)
