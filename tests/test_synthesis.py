"""End-to-end tests of the structural synthesis flow and the verifier."""

from __future__ import annotations

import pytest

from repro.benchmarks.classic import classic_names, load_classic
from repro.benchmarks.figures import fig7_glatch_stg
from repro.benchmarks.scalable import dining_philosophers, independent_cells, muller_pipeline
from repro.boolean.cover import Cover
from repro.boolean.cube import Cube
from repro.statebased.synthesis import synthesize_state_based
from repro.synthesis import (
    Architecture,
    SynthesisError,
    SynthesisOptions,
    default_library,
    map_circuit,
    synthesize,
)
from repro.synthesis.netlist import latch_implementation
from repro.verify import verify_speed_independence

SYNTHESIZABLE = classic_names(synthesizable_only=True)


class TestStructuralSynthesis:
    @pytest.mark.parametrize("name", SYNTHESIZABLE)
    def test_classic_suite_is_synthesized_and_speed_independent(self, name):
        stg = load_classic(name)
        result = synthesize(stg, SynthesisOptions(level=5))
        report = verify_speed_independence(stg, result.circuit)
        assert report.speed_independent, report.functional_errors + report.hazard_errors

    @pytest.mark.parametrize("name", SYNTHESIZABLE)
    def test_quality_close_to_state_based_baseline(self, name):
        stg = load_classic(name)
        structural = synthesize(stg, SynthesisOptions(level=5))
        baseline = synthesize_state_based(stg)
        assert structural.circuit.literal_count() <= 3 * max(
            baseline.circuit.literal_count(), 1
        )

    def test_fig1_running_example(self, fig1):
        result = synthesize(fig1, SynthesisOptions(level=5))
        circuit = result.circuit
        assert set(circuit.signals) == {"c", "d"}
        assert verify_speed_independence(fig1, circuit).speed_independent
        # the running example reduces to two small combinational gates
        assert circuit.literal_count() <= 6

    def test_glatch_produces_c_element(self):
        stg = fig7_glatch_stg(3)
        result = synthesize(stg, SynthesisOptions(level=5))
        y = result.circuit["y"]
        # y turns on exactly when all inputs are high (C-element set
        # condition) — either as a latch or as a complex gate with feedback
        assert y.set_cover.covers_vertex({"x0": 1, "x1": 1, "x2": 1, "y": 0})
        assert not y.set_cover.covers_vertex({"x0": 1, "x1": 0, "x2": 0, "y": 0})
        assert verify_speed_independence(stg, result.circuit).speed_independent

    def test_csc_violation_is_rejected_without_override(self):
        stg = load_classic("latch_ctrl")
        with pytest.raises(SynthesisError):
            synthesize(stg)

    def test_minimization_levels_never_increase_cost(self, fig1):
        costs = []
        for level in range(1, 6):
            result = synthesize(fig1, SynthesisOptions(level=level))
            costs.append(result.circuit.literal_count())
        assert all(later <= earlier for earlier, later in zip(costs, costs[1:]))

    def test_level1_uses_per_region_architecture(self, fig1):
        result = synthesize(fig1, SynthesisOptions(level=1))
        for implementation in result.circuit:
            assert implementation.architecture is Architecture.ER_ONE_HOT
            assert implementation.region_covers

    def test_scalable_families_synthesize_structurally(self):
        for stg in [muller_pipeline(6), independent_cells(6), dining_philosophers(3)]:
            result = synthesize(stg, SynthesisOptions(level=3, assume_csc=True))
            assert result.circuit.literal_count() > 0
            report = verify_speed_independence(stg, result.circuit)
            assert report.speed_independent, stg.name

    def test_statistics_are_reported(self, fig1):
        result = synthesize(fig1, SynthesisOptions(level=5))
        assert result.statistics["csc_certified"] is True
        assert result.statistics["sm_cover"] >= 1
        assert result.statistics["analysis_seconds"] >= 0


class TestNetlistAndMapping:
    def test_latch_hold_semantics(self):
        variables = ("a", "x")
        implementation = latch_implementation(
            "x",
            Cover([Cube({"a": 1})], variables),
            Cover([Cube({"a": 0})], variables),
        )
        assert implementation.next_value({"a": 1, "x": 0}) == 1
        assert implementation.next_value({"a": 0, "x": 1}) == 0

    def test_gated_latch_cost_shares_common_literals(self):
        variables = ("a", "b", "x")
        implementation = latch_implementation(
            "x",
            Cover([Cube({"a": 1, "b": 1})], variables),
            Cover([Cube({"a": 1, "b": 0})], variables),
            architecture=Architecture.GATED_LATCH,
        )
        assert implementation.literal_count() == 3  # common 'a' + data/control

    def test_library_mapping_costs(self, fig1):
        result = synthesize(fig1, SynthesisOptions(level=5))
        mapped = map_circuit(result.circuit, default_library())
        assert mapped.total_area > 0
        assert set(mapped.per_signal_area) == set(result.circuit.signals)
        # mapping never loses signals and reports at least one cell per signal
        assert all(mapped.cells_used[s] for s in result.circuit.signals)

    def test_circuit_describe_mentions_every_signal(self, fig1):
        result = synthesize(fig1, SynthesisOptions(level=5))
        text = result.circuit.describe()
        for signal in result.circuit.signals:
            assert signal in text


class TestVerifierCatchesBadCircuits:
    def test_wrong_polarity_is_detected(self, fig1):
        result = synthesize(fig1, SynthesisOptions(level=5))
        circuit = result.circuit
        good = circuit["c"]
        broken = latch_implementation(
            "c",
            good.reset_cover if good.uses_latch else good.set_cover.complement(),
            good.set_cover,
        )
        circuit.implementations["c"] = broken
        report = verify_speed_independence(fig1, circuit)
        assert not report.speed_independent

    def test_non_monotonic_cover_is_detected(self):
        stg = fig7_glatch_stg(2)
        result = synthesize(stg, SynthesisOptions(level=5))
        circuit = result.circuit
        y = circuit["y"]
        if not y.uses_latch:
            pytest.skip("y was implemented combinationally")
        variables = tuple(stg.signal_names)
        # a set cover that also covers part of the falling quiescent region
        glitchy = Cover(y.set_cover.cubes + [Cube({"x0": 1, "x1": 0, "y": 0})], variables)
        circuit.implementations["y"] = latch_implementation("y", glitchy, y.reset_cover)
        report = verify_speed_independence(stg, circuit)
        assert not report.speed_independent
