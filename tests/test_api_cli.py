"""Tests of the ``python -m repro`` command line interface."""

from __future__ import annotations

import json

import pytest

from repro.api.cli import main
from repro.stg.writer import write_g


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestList:
    def test_lists_registry_benchmarks(self, capsys):
        code, out, _ = run_cli(capsys, "list")
        assert code == 0
        names = out.split()
        assert "handshake_seq" in names and "muller_pipeline_4" in names


class TestSynthesize:
    def test_benchmark_by_name(self, capsys):
        code, out, _ = run_cli(capsys, "synthesize", "handshake_seq", "--level", "5")
        assert code == 0
        assert "circuit handshake_seq" in out
        assert "backend: structural" in out

    def test_json_output(self, capsys):
        code, out, _ = run_cli(capsys, "synthesize", "sequencer", "--json", "--map")
        assert code == 0
        data = json.loads(out)
        assert data["backend"] == "structural"
        assert data["synthesize"]["literals"] > 0
        assert data["map"]["total_area"] > 0

    def test_statebased_backend(self, capsys):
        code, out, _ = run_cli(
            capsys, "synthesize", "handshake_seq", "--backend", "statebased", "--json"
        )
        assert code == 0
        assert json.loads(out)["backend"] == "statebased"

    def test_file_input_and_report_output(self, capsys, tmp_path):
        from repro.benchmarks.classic import load_classic

        spec_path = tmp_path / "spec.g"
        spec_path.write_text(write_g(load_classic("sequencer")))
        report_path = tmp_path / "report.json"
        code, _, _ = run_cli(
            capsys, "synthesize", str(spec_path), "-o", str(report_path)
        )
        assert code == 0
        data = json.loads(report_path.read_text())
        assert data["spec"] == "sequencer"  # the .model name wins over the file name

    def test_unknown_spec_is_a_usage_error(self, capsys):
        code, _, err = run_cli(capsys, "synthesize", "no_such_benchmark")
        assert code == 2
        assert "error" in err

    def test_malformed_file_is_a_usage_error(self, capsys, tmp_path):
        bad = tmp_path / "bad.g"
        bad.write_text(".model x\n.end\n")
        code, _, err = run_cli(capsys, "synthesize", str(bad))
        assert code == 2
        assert "malformed" in err

    def test_uncertified_csc_is_a_synthesis_error(self, capsys):
        code, _, err = run_cli(capsys, "synthesize", "latch_ctrl")
        assert code == 2
        assert "CSC" in err

    def test_state_space_limit_is_a_clean_error(self, capsys):
        code, _, err = run_cli(
            capsys,
            "synthesize",
            "handshake_seq",
            "--backend",
            "statebased",
            "--max-markings",
            "2",
        )
        assert code == 2
        assert "state-space limit" in err


class TestVerifyAndCompare:
    def test_verify_passes(self, capsys):
        code, out, _ = run_cli(capsys, "verify", "sequencer", "--assume-csc")
        assert code == 0
        assert "speed independent: True" in out

    def test_compare_matches(self, capsys):
        """Acceptance criterion: both backends agree on a registry benchmark."""
        code, out, _ = run_cli(capsys, "compare", "sequencer", "--assume-csc")
        assert code == 0
        assert "MATCH" in out
        assert "checked markings" in out

    def test_compare_json(self, capsys):
        code, out, _ = run_cli(capsys, "compare", "handshake_seq", "--json")
        assert code == 0
        data = json.loads(out)
        assert data["matching"] is True


class TestExport:
    def test_verilog_to_stdout(self, capsys):
        code, out, _ = run_cli(capsys, "export", "sequencer", "--format", "verilog")
        assert code == 0
        from repro.gates import validate_verilog

        validate_verilog(out)
        assert "module sequencer" in out

    def test_blif_round_trips(self, capsys):
        code, out, _ = run_cli(capsys, "export", "glatch_3", "--format", "blif",
                               "--level", "2")
        assert code == 0
        from repro.gates import parse_blif

        parsed = parse_blif(out)
        assert "y" in parsed["outputs"]

    def test_json_output_file(self, capsys, tmp_path):
        from repro.gates import GateNetlist

        path = tmp_path / "netlist.json"
        code, out, _ = run_cli(
            capsys, "export", "sequencer", "--format", "json", "-o", str(path)
        )
        assert code == 0
        assert "wrote json netlist" in out
        netlist = GateNetlist.from_json(json.loads(path.read_text()))
        assert set(netlist.outputs) == {"r1", "r2", "ack"}

    def test_eqn_with_builtin_library(self, capsys):
        code, out, _ = run_cli(
            capsys, "export", "parallelizer", "--format", "eqn",
            "--lib", "two-input-only",
        )
        assert code == 0
        from repro.gates import parse_eqn

        parse_eqn(out)
        assert "two-input-only" in out

    def test_library_json_file(self, capsys, tmp_path):
        from repro.gates import two_input_library

        lib_path = tmp_path / "lib.json"
        lib_path.write_text(json.dumps(two_input_library().to_json()))
        code, out, _ = run_cli(
            capsys, "export", "sequencer", "--lib", str(lib_path)
        )
        assert code == 0

    def test_unknown_library_is_a_usage_error(self, capsys):
        code, _, err = run_cli(capsys, "export", "sequencer", "--lib", "nope")
        assert code == 2
        assert "unknown gate library" in err

    def test_synthesize_verify_mapped_flag(self, capsys):
        code, out, _ = run_cli(
            capsys, "synthesize", "glatch_3", "--level", "2", "--verify-mapped"
        )
        assert code == 0
        assert "mapped netlist equivalent: True" in out

    def test_verify_mapped_subcommand(self, capsys):
        code, out, _ = run_cli(capsys, "verify", "sequencer", "--mapped", "--json")
        assert code == 0
        data = json.loads(out)
        assert data["verify"]["speed_independent"] is True
        assert data["verify_mapped"]["equivalent"] is True


class TestParser:
    def test_missing_command_exits_with_usage(self):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code == 2

    def test_bad_level_rejected(self):
        with pytest.raises(SystemExit):
            main(["synthesize", "fig1", "--level", "9"])


class TestJsonRoundTrip:
    def test_synthesize_json_reloads_identically(self, capsys):
        """Satellite: the --json document is versioned and lossless."""
        from repro.api.artifacts import ARTIFACT_VERSION, Report

        code, out, _ = run_cli(
            capsys, "synthesize", "sequencer", "--json", "--map", "--verify"
        )
        assert code == 0
        data = json.loads(out)
        assert data["format"] == "repro-report"
        assert data["version"] == ARTIFACT_VERSION
        assert data["synthesize"]["version"] == ARTIFACT_VERSION
        report = Report.from_json(data)
        assert report.to_json() == data

    def test_output_file_reloads_identically(self, capsys, tmp_path):
        from repro.api.artifacts import Report

        path = tmp_path / "report.json"
        code, _, _ = run_cli(capsys, "synthesize", "glatch_3", "-o", str(path))
        assert code == 0
        data = json.loads(path.read_text())
        assert Report.from_json(data).to_json() == data


class TestCacheCommand:
    def test_stats_clear_prewarm(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        code, out, _ = run_cli(capsys, "cache", "stats", "--store", store)
        assert code == 0
        assert "entries: 0" in out

        code, out, _ = run_cli(
            capsys, "cache", "prewarm", "glatch_3", "--store", store, "--map"
        )
        assert code == 0
        assert "prewarmed 1/1" in out

        code, out, _ = run_cli(capsys, "cache", "stats", "--store", store, "--json")
        assert code == 0
        stats = json.loads(out)
        assert stats["entries"] > 0
        assert stats["per_stage"]["synthesize"] == 1
        assert stats["bytes"] > 0

        # a synthesize with matching (default) options through the same
        # store is a pure store resolution — prewarm keys must line up
        from repro.api import Pipeline, SynthesisOptions

        pipeline = Pipeline(store=store)
        pipeline.run("glatch_3", SynthesisOptions(), map_technology=True)
        assert pipeline.stage_calls["synthesize"] == 0
        assert pipeline.stage_calls["map"] == 0

        code, out, _ = run_cli(capsys, "cache", "clear", "--store", store)
        assert code == 0
        assert "removed" in out
        code, out, _ = run_cli(capsys, "cache", "stats", "--store", store, "--json")
        assert json.loads(out)["entries"] == 0

    def test_clear_honours_a_spec_pattern(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        code, _, _ = run_cli(capsys, "cache", "prewarm", "glatch_3", "--store", store)
        assert code == 0
        code, _, _ = run_cli(capsys, "cache", "prewarm", "sequencer", "--store", store)
        assert code == 0
        code, out, _ = run_cli(
            capsys, "cache", "clear", "glatch_*", "--store", store
        )
        assert code == 0 and "glatch_*" in out
        code, out, _ = run_cli(capsys, "cache", "stats", "--store", store, "--json")
        stats = json.loads(out)
        assert stats["entries"] > 0  # the sequencer entries survived

    def test_stats_rejects_a_pattern(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "cache", "stats", "glatch_*", "--store", str(tmp_path / "s")
        )
        assert code == 2
        assert "no pattern" in err

    def test_stats_against_a_live_server_shows_fleet_counters(
        self, capsys, tmp_path
    ):
        """``cache stats --url`` surfaces hot-LRU, flight and quarantine
        telemetry from a running server instead of opening a local store."""
        import threading

        from repro.api import Pipeline
        from repro.api.client import Client
        from repro.api.fleet import SingleFlight
        from repro.api.server import create_server
        from repro.api.store import ArtifactStore

        store = ArtifactStore(tmp_path / "store", lru_size=16)
        # cache=False: repeat reads go to the store, exercising its hot LRU
        pipeline = Pipeline(store=store, flights=SingleFlight(store), cache=False)
        server = create_server(port=0, pipeline=pipeline)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        url = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            client = Client(url)
            client.synthesize("sequencer", assume_csc=True)
            client.synthesize("sequencer", assume_csc=True)  # hot-LRU hits

            code, out, _ = run_cli(capsys, "cache", "stats", "--url", url)
            assert code == 0
            assert "hot-LRU" in out
            assert "hot LRU:" in out
            assert "flights:" in out
            assert "led" in out and "coalesced" in out and "degraded" in out

            code, out, _ = run_cli(capsys, "cache", "stats", "--url", url, "--json")
            assert code == 0
            payload = json.loads(out)
            # one lead per computed stage on the cold request, none coalesced
            assert payload["flights"]["led"] >= 1
            assert payload["flights"]["followed"] == 0
            assert payload["flights"]["degraded"] == 0
            session = payload["store"]["session"]
            assert session["lru_hits"] > 0
            assert payload["store"]["flight_locks"] == 0
            assert "quarantined_entries" in payload["store"]
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_stats_url_without_a_store_degrades_gracefully(self, capsys):
        import threading

        from repro.api import Pipeline
        from repro.api.server import create_server

        server = create_server(port=0, store=None, pipeline=Pipeline())
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        url = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            code, out, _ = run_cli(capsys, "cache", "stats", "--url", url)
            assert code == 0
            assert "no store attached" in out
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_prewarm_unknown_glob_is_a_usage_error(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys,
            "cache", "prewarm", "zzz_no_such_*", "--store", str(tmp_path / "s"),
        )
        assert code == 2
        assert "no registry benchmark" in err

    def test_store_speeds_up_repeat_cli_invocations(self, capsys, tmp_path):
        """Two CLI runs share artifacts through --store (fresh Pipelines)."""
        store = str(tmp_path / "store")
        code, first, _ = run_cli(
            capsys, "synthesize", "sequencer", "--store", store, "--json"
        )
        assert code == 0
        code, second, _ = run_cli(
            capsys, "synthesize", "sequencer", "--store", store, "--json"
        )
        assert code == 0
        first_doc, second_doc = json.loads(first), json.loads(second)
        # identical artifacts (including exact timings: they were loaded)
        assert second_doc["synthesize"] == first_doc["synthesize"]

    def test_no_store_disables_persistence(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "default-store"))
        code, _, _ = run_cli(capsys, "synthesize", "fig1", "--no-store")
        assert code == 0
        assert not (tmp_path / "default-store").exists()
