"""Unit and property-based tests of covers and the two-level minimizer."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube
from repro.boolean.function import BooleanFunction
from repro.boolean.minimize import expand_cover, irredundant_cover, minimize_cover, single_cube_cover
from repro.boolean.cost import literal_count, sop_transistor_estimate, transistor_estimate

VARS = ["a", "b", "c", "d"]


def _all_vertices(variables=VARS):
    for index in range(1 << len(variables)):
        yield {v: (index >> i) & 1 for i, v in enumerate(variables)}


def cover_strategy():
    cube = st.dictionaries(
        st.sampled_from(VARS), st.integers(min_value=0, max_value=1), max_size=4
    ).map(Cube)
    return st.lists(cube, max_size=5).map(lambda cubes: Cover(cubes, VARS))


class TestCoverBasics:
    def test_empty_and_universe(self):
        assert Cover.empty(VARS).is_empty()
        assert Cover.universe(VARS).is_tautology()
        assert not Cover.empty(VARS).is_tautology()

    def test_from_strings(self):
        cover = Cover.from_strings(["1--0", "01--"], VARS)
        assert len(cover) == 2
        assert cover.covers_vertex({"a": 1, "b": 0, "c": 1, "d": 0})

    def test_union_removes_contained_cubes(self):
        big = Cover([Cube({"a": 1})], VARS)
        small = Cover([Cube({"a": 1, "b": 0})], VARS)
        assert len(big.union(small)) == 1

    def test_intersection(self):
        left = Cover([Cube({"a": 1})], VARS)
        right = Cover([Cube({"b": 0})], VARS)
        product = left.intersection(right)
        for vertex in _all_vertices():
            assert product.covers_vertex(vertex) == (vertex["a"] == 1 and vertex["b"] == 0)

    def test_sharp_is_set_difference(self):
        left = Cover([Cube({"a": 1})], VARS)
        right = Cover([Cube({"b": 1})], VARS)
        difference = left.sharp(right)
        for vertex in _all_vertices():
            expected = vertex["a"] == 1 and vertex["b"] == 0
            assert difference.covers_vertex(vertex) == expected

    def test_complement(self):
        cover = Cover([Cube({"a": 1}), Cube({"b": 0, "c": 1})], VARS)
        complement = cover.complement()
        for vertex in _all_vertices():
            assert complement.covers_vertex(vertex) != cover.covers_vertex(vertex)

    def test_covers_cube_via_multiple_cubes(self):
        cover = Cover([Cube({"a": 1, "b": 1}), Cube({"a": 1, "b": 0})], VARS)
        assert cover.covers_cube(Cube({"a": 1}))
        assert not cover.covers_cube(Cube({}))

    def test_count_minterms(self):
        cover = Cover([Cube({"a": 1}), Cube({"a": 0, "b": 1})], VARS)
        assert cover.count_minterms() == 8 + 4

    def test_restrict_projects_support(self):
        cover = Cover([Cube({"a": 1, "c": 0})], VARS)
        projected = cover.restrict(["a", "b"])
        assert projected.support() == frozenset({"a"})


class TestMinimizer:
    def test_expand_drops_redundant_literals(self):
        on_set = Cover([Cube({"a": 1, "b": 1, "c": 0})], VARS)
        off_set = Cover([Cube({"a": 0})], VARS)
        expanded = expand_cover(on_set, off_set)
        assert expanded.num_literals() == 1
        assert expanded.covers_cube(Cube({"a": 1}))

    def test_minimize_preserves_on_set_and_avoids_off_set(self):
        on_set = Cover.from_strings(["110-", "111-"], VARS)
        off_set = Cover.from_strings(["0---", "10--"], VARS)
        result = minimize_cover(on_set, off_set)
        assert result.contains_cover(on_set)
        assert not result.intersects_cover(off_set)

    def test_irredundant_removes_duplicate_cubes(self):
        cover = Cover([Cube({"a": 1}), Cube({"a": 1, "b": 1})], VARS)
        reduced = irredundant_cover(cover)
        assert len(reduced) == 1

    def test_single_cube_cover(self):
        on_set = Cover.from_strings(["110-", "100-"], VARS)
        off_set = Cover.from_strings(["0---"], VARS)
        cube = single_cube_cover(on_set, off_set)
        assert cube == Cube({"a": 1, "c": 0})
        blocked = single_cube_cover(on_set, Cover.from_strings(["1-01"], VARS))
        assert blocked is None

    @given(cover_strategy(), cover_strategy())
    @settings(max_examples=40, deadline=None)
    def test_minimize_is_correct_for_disjoint_sets(self, on_set, noise):
        off_set = noise.sharp(on_set)
        result = minimize_cover(on_set, off_set)
        assert result.contains_cover(on_set)
        assert not result.intersects_cover(off_set)

    @given(cover_strategy())
    @settings(max_examples=40, deadline=None)
    def test_complement_partitions_space(self, cover):
        complement = cover.complement()
        assert not complement.intersects_cover(cover)
        assert complement.union(cover).is_tautology() or cover.is_empty() and complement.is_tautology()


class TestBooleanFunction:
    def test_consistency_and_correct_cover(self):
        on_set = Cover.from_strings(["11--"], VARS)
        off_set = Cover.from_strings(["00--"], VARS)
        function = BooleanFunction(on_set, off_set, variables=VARS, name="f")
        assert function.is_consistent()
        assert function.is_complete()
        assert function.evaluate({"a": 1, "b": 1, "c": 0, "d": 0}) == 1
        assert function.evaluate({"a": 0, "b": 0, "c": 0, "d": 0}) == 0
        assert function.evaluate({"a": 1, "b": 0, "c": 0, "d": 0}) is None
        assert function.is_correct_cover(Cover.from_strings(["11--", "10--"], VARS))
        assert not function.is_correct_cover(Cover.from_strings(["10--"], VARS))

    def test_cost_models(self):
        cover = Cover.from_strings(["11--", "1-1-"], VARS)
        assert literal_count(cover) == 4
        assert sop_transistor_estimate(cover) == 2 * 4 + 2 * 2
        assert transistor_estimate([cover], memory_elements=1) == 12 + 8
