"""Tests of batch execution and the picklability it depends on."""

from __future__ import annotations

import copy
import pickle

from repro.api import Pipeline, Spec, SynthesisOptions, synthesize_many
from repro.benchmarks.classic import load_classic
from repro.synthesis.engine import SynthesisResult, synthesize


class TestSequentialBatch:
    def test_reports_in_input_order(self):
        reports = synthesize_many(
            ["sequencer", "handshake_seq", "fig1"],
            SynthesisOptions(level=5, assume_csc=True),
        )
        assert [r.spec_name for r in reports] == ["sequencer", "handshake_seq", "fig1"]
        assert all(r.literals > 0 for r in reports)

    def test_duplicate_specs_synthesize_once(self):
        pipeline = Pipeline()
        reports = synthesize_many(
            ["handshake_seq", "handshake_seq", "handshake_seq"],
            SynthesisOptions(assume_csc=True),
            pipeline=pipeline,
        )
        assert len(reports) == 3
        assert pipeline.stage_calls["synthesize"] == 1
        assert pipeline.stage_calls["analyze"] == 1

    def test_verify_and_map_ride_along(self):
        reports = synthesize_many(
            ["sequencer"],
            SynthesisOptions(level=5, assume_csc=True),
            map_technology=True,
            verify=True,
        )
        assert reports[0].mapping.total_area > 0
        assert reports[0].speed_independent is True


class TestProcessPoolBatch:
    def test_parallel_matches_sequential(self):
        names = ["sequencer", "handshake_seq", "converter_2to4", "rw_port"]
        options = SynthesisOptions(level=5, assume_csc=True)
        sequential = synthesize_many(names, options)
        parallel = synthesize_many(names, options, jobs=2)
        assert [r.spec_name for r in parallel] == names
        assert [r.literals for r in parallel] == [r.literals for r in sequential]
        # the circuits crossed a process boundary and still evaluate
        circuit = parallel[0].circuit
        assert circuit is not None
        assert circuit.literal_count() == parallel[0].literals


class TestPicklability:
    """Satellite of the API redesign: results must survive copy/pickle."""

    def test_report_round_trips_with_its_circuit(self):
        report = synthesize_many(["sequencer"], SynthesisOptions(assume_csc=True))[0]
        clone = pickle.loads(pickle.dumps(report))
        assert clone.literals == report.literals
        assert clone.circuit.literal_count() == report.circuit.literal_count()
        vector = {s: 0 for s in report.circuit.signal_order}
        assert clone.circuit.next_values(vector) == report.circuit.next_values(vector)

    def test_synthesis_result_copy_and_pickle_do_not_recurse(self):
        """The historical ``__getattr__`` passthrough recursed infinitely here."""
        stg = load_classic("handshake_seq")
        result = synthesize(stg, SynthesisOptions(level=5, assume_csc=True))
        shallow = copy.copy(result)
        assert shallow.circuit is result.circuit
        deep = copy.deepcopy(result)
        assert deep.circuit.literal_count() == result.circuit.literal_count()
        clone = pickle.loads(pickle.dumps(result))
        assert isinstance(clone, SynthesisResult)
        assert clone.literal_count() == result.literal_count()
        assert clone.describe() == result.describe()

    def test_spec_pickles_without_the_parsed_stg(self):
        spec = Spec.from_benchmark("sequencer")
        _ = spec.stg
        payload = pickle.dumps(spec)
        assert b"PetriNet" not in payload  # only the canonical text travels
        assert pickle.loads(payload).content_hash == spec.content_hash
