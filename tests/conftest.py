"""Shared fixtures of the test-suite."""

from __future__ import annotations

import pytest

from repro.benchmarks.classic import classic_names, load_classic
from repro.benchmarks.figures import fig1_stg, fig5_stg, fig6_stg, fig7_glatch_stg


@pytest.fixture(autouse=True)
def _isolated_artifact_store(tmp_path, monkeypatch):
    """Point the default artifact store at a per-test directory.

    The CLI (and anything else resolving the *default* store) is durable by
    default; tests must neither read a developer's warm ``~/.cache/repro``
    nor leave entries behind.
    """
    monkeypatch.setenv("REPRO_STORE", str(tmp_path / "artifact-store"))


@pytest.fixture()
def fig1():
    """The running example of the paper (re-creation of Fig. 1)."""
    return fig1_stg()


@pytest.fixture()
def fig5():
    """The cover-refinement example (re-creation of Fig. 5)."""
    return fig5_stg()


@pytest.fixture()
def fig6():
    """Fig. 5 with the inserted state signal (re-creation of Fig. 6)."""
    return fig6_stg()


@pytest.fixture()
def glatch3():
    """The three-input generalized C-latch of Fig. 7."""
    return fig7_glatch_stg(3)


@pytest.fixture(params=classic_names(synthesizable_only=True))
def classic_stg(request):
    """Every synthesizable classic benchmark, one at a time."""
    return load_classic(request.param)
