"""Unit and property-based tests of the cube algebra."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.boolean.cube import Cube

VARS = ["a", "b", "c", "d"]


def cube_strategy(variables=VARS):
    return st.dictionaries(
        st.sampled_from(variables), st.integers(min_value=0, max_value=1), max_size=len(variables)
    ).map(Cube)


def vertex_strategy(variables=VARS):
    return st.fixed_dictionaries({v: st.integers(min_value=0, max_value=1) for v in variables})


class TestCubeBasics:
    def test_universal_cube_has_no_literals(self):
        assert Cube.universal().is_universal()
        assert Cube.universal().num_literals() == 0

    def test_from_string_roundtrip(self):
        cube = Cube.from_string("10-1", VARS)
        assert cube.to_string(VARS) == "10-1"
        assert cube["a"] == 1 and cube["b"] == 0 and cube["d"] == 1
        assert "c" not in cube

    def test_from_string_rejects_bad_length(self):
        with pytest.raises(ValueError):
            Cube.from_string("10", VARS)

    def test_invalid_literal_value_rejected(self):
        with pytest.raises(ValueError):
            Cube({"a": 2})

    def test_expression_formatting(self):
        assert Cube({"a": 1, "b": 0}).to_expression() == "a b'"
        assert Cube.universal().to_expression() == "1"

    def test_intersection_conflict_returns_none(self):
        assert Cube({"a": 1}).intersect(Cube({"a": 0})) is None

    def test_intersection_merges_literals(self):
        product = Cube({"a": 1}).intersect(Cube({"b": 0}))
        assert product == Cube({"a": 1, "b": 0})

    def test_covers_and_containment(self):
        big = Cube({"a": 1})
        small = Cube({"a": 1, "b": 0})
        assert big.covers(small)
        assert not small.covers(big)

    def test_distance_and_consensus(self):
        left = Cube({"a": 1, "b": 0})
        right = Cube({"a": 0, "b": 0})
        assert left.distance(right) == 1
        assert left.consensus(right) == Cube({"b": 0})
        far = Cube({"a": 0, "b": 1})
        assert left.distance(far) == 2
        assert left.consensus(far) is None

    def test_supercube(self):
        left = Cube({"a": 1, "b": 0})
        right = Cube({"a": 1, "b": 1})
        assert left.supercube(right) == Cube({"a": 1})

    def test_cofactor(self):
        cube = Cube({"a": 1, "b": 0})
        assert cube.cofactor("a", 1) == Cube({"b": 0})
        assert cube.cofactor("a", 0) is None
        assert cube.cofactor("c", 1) == cube

    def test_complement_cubes_cover_exactly_the_complement(self):
        cube = Cube({"a": 1, "b": 0})
        pieces = cube.complement_cubes()
        for vertex in _all_vertices():
            inside = cube.covers_vertex(vertex)
            in_pieces = any(piece.covers_vertex(vertex) for piece in pieces)
            assert inside != in_pieces

    def test_size_and_vertices(self):
        cube = Cube({"a": 1})
        assert cube.size(VARS) == 8
        assert len(list(cube.vertices(VARS))) == 8


def _all_vertices():
    for index in range(1 << len(VARS)):
        yield {v: (index >> i) & 1 for i, v in enumerate(VARS)}


class TestCubeProperties:
    @given(cube_strategy(), vertex_strategy())
    def test_intersection_semantics(self, cube, vertex):
        other = Cube({k: v for k, v in list(vertex.items())[:2]})
        product = cube.intersect(other)
        covered = cube.covers_vertex(vertex) and other.covers_vertex(vertex)
        if product is None:
            assert not covered
        else:
            assert product.covers_vertex(vertex) == covered

    @given(cube_strategy(), cube_strategy())
    def test_covers_is_vertexwise_containment(self, big, small):
        if big.covers(small):
            for vertex in small.vertices(VARS):
                assert big.covers_vertex(vertex)

    @given(cube_strategy(), cube_strategy())
    def test_supercube_contains_both(self, left, right):
        union = left.supercube(right)
        assert union.covers(left)
        assert union.covers(right)

    @given(cube_strategy())
    def test_complement_is_disjoint_from_cube(self, cube):
        for piece in cube.complement_cubes():
            assert not piece.intersects(cube) or piece.intersect(cube) is None

    @given(cube_strategy(), vertex_strategy())
    def test_expand_literal_only_grows(self, cube, vertex):
        for variable in list(cube.support):
            grown = cube.expand_literal(variable)
            if cube.covers_vertex(vertex):
                assert grown.covers_vertex(vertex)
