"""Tests of the STG layer: labels, the .g parser/writer, encoding, consistency."""

from __future__ import annotations

import pytest

from repro.benchmarks.classic import CLASSIC_SOURCES, load_classic
from repro.petri.reachability import build_reachability_graph
from repro.stg.consistency import adjacent_transition_pairs, check_consistency_state_based
from repro.stg.encoding import EncodingError, encode_reachability_graph, infer_initial_values
from repro.stg.parser import GFormatError, parse_g
from repro.stg.signals import SignalTransition, SignalType, parse_transition_label
from repro.stg.stg import STG
from repro.stg.writer import write_g


class TestSignalLabels:
    def test_parse_simple_labels(self):
        assert parse_transition_label("a+") == SignalTransition("a", "+", 0)
        assert parse_transition_label("ack-") == SignalTransition("ack", "-", 0)
        assert parse_transition_label("x+/2") == SignalTransition("x", "+", 2)

    def test_dummy_label(self):
        assert parse_transition_label("eps").direction == "~"

    def test_invalid_label(self):
        with pytest.raises(ValueError):
            parse_transition_label("+a")

    def test_target_and_source_values(self):
        rising = parse_transition_label("a+")
        assert rising.target_value == 1 and rising.source_value == 0
        falling = parse_transition_label("a-")
        assert falling.target_value == 0 and falling.source_value == 1

    def test_names_roundtrip(self):
        assert parse_transition_label("q-/3").name() == "q-/3"

    def test_signal_type_roles(self):
        assert SignalType.OUTPUT.is_controlled_by_circuit
        assert SignalType.INTERNAL.is_controlled_by_circuit
        assert not SignalType.INPUT.is_controlled_by_circuit


class TestSTGConstruction:
    def test_from_edges_builds_implicit_places(self, fig1):
        assert "<a+,pa1>" not in fig1.places  # explicit place names are kept
        assert fig1.net.is_place("p0")
        assert set(fig1.input_signals) == {"a", "b"}
        assert set(fig1.output_signals) == {"c", "d"}
        assert fig1.rising_transitions("d") == ["d+/1", "d+/2"]
        assert fig1.falling_transitions("d") == ["d-"]

    def test_transition_to_transition_arc_inserts_place(self):
        stg = STG("tiny")
        stg.add_signal("a", SignalType.INPUT)
        stg.add_signal("b", SignalType.OUTPUT)
        stg.add_transition("a+")
        stg.add_transition("b+")
        stg.add_arc("a+", "b+")
        assert stg.net.is_place("<a+,b+>")

    def test_copy_is_independent(self, fig1):
        clone = fig1.copy("clone")
        clone.set_initial_value("a", 1)
        assert fig1.initial_values["a"] == 0


class TestGFormat:
    @pytest.mark.parametrize("name", sorted(CLASSIC_SOURCES))
    def test_parse_all_classic_sources(self, name):
        stg = load_classic(name)
        assert stg.net.num_places() > 0
        assert stg.net.num_transitions() > 0
        assert stg.initial_marking.total_tokens() >= 1

    @pytest.mark.parametrize("name", sorted(CLASSIC_SOURCES))
    def test_writer_parser_roundtrip(self, name):
        original = load_classic(name)
        text = write_g(original)
        parsed = parse_g(text, name=name)
        assert set(parsed.signals) == set(original.signals)
        assert parsed.net.num_transitions() == original.net.num_transitions()
        assert parsed.net.num_places() == original.net.num_places()
        # behaviour is preserved: same number of reachable markings
        assert len(build_reachability_graph(parsed.net)) == len(
            build_reachability_graph(original.net)
        )

    def test_missing_graph_section_rejected(self):
        with pytest.raises(GFormatError):
            parse_g(".model x\n.inputs a\n.end\n")

    def test_unknown_marking_place_rejected(self):
        source = """
.model bad
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { nowhere }
.end
"""
        with pytest.raises(GFormatError):
            parse_g(source)

    def test_comments_and_blank_lines_ignored(self):
        source = """
# a comment
.model ok
.inputs a
.outputs b
.graph
a+ b+   # trailing comment
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
"""
        stg = parse_g(source)
        assert stg.name == "ok"
        assert stg.net.num_transitions() == 4


class TestEncoding:
    def test_initial_value_inference(self, fig1):
        values = infer_initial_values(fig1)
        assert values == {"a": 0, "b": 0, "c": 0, "d": 0}

    def test_codes_are_consistent(self, fig1):
        encoded = encode_reachability_graph(fig1)
        for marking in encoded.markings:
            code = encoded.code_of(marking)
            assert set(code) == set(fig1.signal_names)
            assert all(v in (0, 1) for v in code.values())

    def test_usc_conflict_of_fig1(self, fig1):
        encoded = encode_reachability_graph(fig1)
        assert len(encoded.used_codes()) < len(encoded.markings)

    def test_switchover_violation_detected(self):
        stg = STG("bad")
        stg.add_signal("a", SignalType.INPUT)
        stg.add_signal("b", SignalType.OUTPUT)
        for label in ["a+", "a-", "b+"]:
            stg.add_transition(label)
        # b+ fires twice in a row along the cycle a+ b+ a- (b never falls)
        stg.add_arc("a+", "b+")
        stg.add_arc("b+", "a-")
        stg.add_arc("a-", "a+")
        stg.set_marking(["<a-,a+>"])
        with pytest.raises(EncodingError):
            encode_reachability_graph(stg)


class TestStateBasedConsistency:
    def test_fig1_is_consistent_and_semimodular(self, fig1):
        report = check_consistency_state_based(fig1)
        assert report.consistent
        assert report.output_semimodular

    def test_adjacency_oracle(self, fig1):
        next_relation = adjacent_transition_pairs(fig1)
        assert next_relation["d+/1"] == {"d-"}
        assert next_relation["d-"] == {"d+/1", "d+/2"}
        assert next_relation["c+"] == {"c-/1"}

    def test_semimodularity_violation_detected(self):
        # an enabled output transition (x+) is disabled when the environment
        # chooses the other branch of the free choice (b+)
        source = """
.model nsm
.inputs b
.outputs x
.graph
p0 x+ b+
x+ x-
x- p0
b+ b-
b- p0
.marking { p0 }
.end
"""
        stg = parse_g(source)
        report = check_consistency_state_based(stg)
        assert report.consistent
        assert not report.output_semimodular
