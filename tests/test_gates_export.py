"""Round-trip / syntax tests of the four netlist export formats."""

from __future__ import annotations

import json

import pytest

from repro.api.pipeline import Pipeline
from repro.api.spec import Spec
from repro.gates import (
    EXPORT_FORMATS,
    ExportSyntaxError,
    GateNetlist,
    export_netlist,
    parse_blif,
    parse_eqn,
    to_blif,
    to_eqn,
    to_json,
    to_verilog,
    validate_verilog,
)
from repro.synthesis import SynthesisOptions

#: a latch-heavy, a combinational, and a multi-region benchmark
EXPORT_BENCHMARKS = ("glatch_3", "sequencer", "parallelizer", "rw_port")

_pipeline = Pipeline()


def _netlist(name: str, level: int = 5):
    return _pipeline.map(
        Spec.from_benchmark(name), SynthesisOptions(level=level, assume_csc=True)
    ).netlist


class TestFormats:
    def test_export_format_registry(self):
        assert set(EXPORT_FORMATS) == {"verilog", "blif", "json", "eqn"}
        with pytest.raises(ValueError, match="unknown export format"):
            export_netlist(_netlist("sequencer"), "edif")

    @pytest.mark.parametrize("name", EXPORT_BENCHMARKS)
    def test_verilog_passes_syntax_check(self, name):
        text = to_verilog(_netlist(name))
        validate_verilog(text)
        assert text.startswith("//") and text.rstrip().endswith("endmodule")

    @pytest.mark.parametrize("name", EXPORT_BENCHMARKS)
    def test_blif_round_trips_through_reader(self, name):
        netlist = _netlist(name)
        parsed = parse_blif(to_blif(netlist))
        assert parsed["inputs"] == list(netlist.inputs)
        assert parsed["outputs"] == list(netlist.outputs)
        # one .names table per gate
        assert len(parsed["names"]) == netlist.num_gates()

    @pytest.mark.parametrize("name", EXPORT_BENCHMARKS)
    def test_json_round_trips_losslessly(self, name):
        netlist = _netlist(name)
        clone = GateNetlist.from_json(json.loads(to_json(netlist)))
        assert clone == netlist

    @pytest.mark.parametrize("name", EXPORT_BENCHMARKS)
    def test_eqn_round_trips_through_reader(self, name):
        netlist = _netlist(name)
        parsed = parse_eqn(to_eqn(netlist))
        assert set(parsed["outputs"]) <= set(parsed["equations"])
        # every driven net has exactly one equation
        assert len(parsed["equations"]) == netlist.num_gates()

    def test_level_one_region_architecture_exports(self):
        netlist = _netlist("fig1", level=1)
        validate_verilog(to_verilog(netlist))
        parse_blif(to_blif(netlist))
        parse_eqn(to_eqn(netlist))


class TestValidatorsCatchCorruption:
    def test_blif_missing_end(self):
        text = to_blif(_netlist("sequencer"))
        with pytest.raises(ExportSyntaxError, match="missing .end"):
            parse_blif(text.replace(".end", ""))

    def test_blif_bad_row_width(self):
        # level 2 keeps the set/reset C-latch, whose table rows we corrupt
        text = to_blif(_netlist("glatch_3", level=2))
        assert "10- 1" in text
        with pytest.raises(ExportSyntaxError):
            parse_blif(text.replace("10- 1", "10-- 1"))

    def test_blif_undefined_net(self):
        with pytest.raises(ExportSyntaxError, match="undefined net"):
            parse_blif(".model m\n.inputs a\n.outputs y\n.names ghost y\n1 1\n.end\n")

    def test_verilog_undeclared_identifier(self):
        text = to_verilog(_netlist("sequencer"))
        with pytest.raises(ExportSyntaxError, match="undeclared"):
            validate_verilog(text.replace("endmodule", "  assign ghost = r1;\nendmodule"))

    def test_verilog_unbalanced_module(self):
        text = to_verilog(_netlist("sequencer"))
        with pytest.raises(ExportSyntaxError, match="module"):
            validate_verilog(text.replace("endmodule", ""))

    def test_eqn_undefined_reference(self):
        with pytest.raises(ExportSyntaxError, match="undefined"):
            parse_eqn("INORDER = a;\nOUTORDER = y;\ny = a * ghost;\n")

    def test_eqn_missing_semicolon(self):
        with pytest.raises(ExportSyntaxError, match="missing ';'"):
            parse_eqn("INORDER = a;\ny = a\n")
