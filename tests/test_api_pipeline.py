"""Tests of the staged pipeline: memoisation, sweeps, reports, shims."""

from __future__ import annotations

import json

import pytest

from repro.api import Pipeline, Report, Spec, SynthesisError, SynthesisOptions, run
from repro.synthesis.engine import prepare_approximation, synthesize


class TestStageMemoisation:
    def test_level_sweep_reuses_the_analysis_artifact(self):
        """The acceptance criterion: one analyze/refine across M1..M5."""
        pipeline = Pipeline()
        spec = Spec.from_benchmark("sequencer")
        literals = []
        for level in (1, 2, 3, 4, 5):
            artifact = pipeline.synthesize(
                spec, SynthesisOptions(level=level, assume_csc=True)
            )
            literals.append(artifact.literals)
        assert pipeline.stage_calls["analyze"] == 1
        assert pipeline.stage_calls["refine"] == 1
        assert pipeline.stage_calls["synthesize"] == 5
        assert len(literals) == 5

    def test_repeated_calls_hit_the_cache(self):
        pipeline = Pipeline()
        first = pipeline.synthesize("handshake_seq", SynthesisOptions(assume_csc=True))
        second = pipeline.synthesize("handshake_seq", SynthesisOptions(assume_csc=True))
        assert first is second
        assert pipeline.stage_calls["synthesize"] == 1

    def test_equivalent_specs_share_cache_entries(self):
        """The cache keys on the content hash, not on the load path."""
        pipeline = Pipeline()
        by_name = Spec.from_benchmark("handshake_seq")
        by_text = Spec.from_text(by_name.text)
        options = SynthesisOptions(assume_csc=True)
        pipeline.synthesize(by_name, options)
        pipeline.synthesize(by_text, options)
        assert pipeline.stage_calls["analyze"] == 1
        assert pipeline.stage_calls["synthesize"] == 1

    def test_cache_disabled(self):
        pipeline = Pipeline(cache=False)
        options = SynthesisOptions(assume_csc=True)
        pipeline.synthesize("handshake_seq", options)
        pipeline.synthesize("handshake_seq", options)
        assert pipeline.stage_calls["synthesize"] == 2

    def test_run_without_cache_computes_the_front_end_once(self):
        """run() reuses the artifacts its circuit was synthesized from."""
        pipeline = Pipeline(cache=False)
        report = pipeline.run("handshake_seq", SynthesisOptions(assume_csc=True))
        assert pipeline.stage_calls["analyze"] == 1
        assert pipeline.stage_calls["refine"] == 1
        # and the attached artifacts are the very ones the backend consumed
        assert report.refinement.approximation is report.synthesis.refinement.approximation

    def test_structural_cache_ignores_max_markings(self):
        """The structural backend never enumerates: the bound is not a key."""
        pipeline = Pipeline()
        options = SynthesisOptions(assume_csc=True)
        first = pipeline.synthesize("handshake_seq", options)
        second = pipeline.synthesize("handshake_seq", options, max_markings=50_000)
        assert first is second
        assert pipeline.stage_calls["synthesize"] == 1

    def test_cache_info_and_clear(self):
        pipeline = Pipeline()
        pipeline.run("handshake_seq", SynthesisOptions(assume_csc=True))
        info = pipeline.cache_info()
        assert info["analyze"] == 1 and info["synthesize"] == 1
        pipeline.clear_cache()
        assert pipeline.cache_info() == {}
        assert pipeline.stage_calls == {}


class TestStages:
    def test_analyze_artifact_contents(self):
        pipeline = Pipeline()
        artifact = pipeline.analyze("sequencer")
        assert artifact.consistent
        assert artifact.places > 0 and artifact.transitions > 0
        assert artifact.sm_cover_size >= 1
        assert artifact.approximation is not None
        data = artifact.to_dict()
        json.dumps(data)
        assert data["stage"] == "analyze"

    def test_refine_artifact_contents(self):
        pipeline = Pipeline()
        artifact = pipeline.refine("sequencer")
        assert artifact.csc_certified
        assert artifact.cubes > 0
        json.dumps(artifact.to_dict())

    def test_refine_does_not_mutate_the_cached_analysis(self):
        """analyze() results are call-order independent."""
        pipeline = Pipeline()
        spec = Spec.from_benchmark("fig5")  # the cover-refinement example
        analysis = pipeline.analyze(spec)
        raw_approximation = analysis.approximation
        raw_covers = raw_approximation.cover_functions
        refinement = pipeline.refine(spec)
        # the analysis artifact keeps the raw approximation untouched
        assert analysis.approximation is raw_approximation
        assert analysis.approximation.cover_functions is raw_covers
        # the refinement carries its own approximation with the new covers
        assert refinement.approximation is not raw_approximation
        assert refinement.approximation.cover_functions is not raw_covers

    def test_statebased_assume_csc_skips_only_the_csc_check(self):
        """latch_ctrl is consistent but violates CSC: assume_csc lets the
        state-based backend synthesize it while consistency stays checked."""
        from repro.statebased.synthesis import StateBasedSynthesisError

        pipeline = Pipeline()
        with pytest.raises(StateBasedSynthesisError, match="CSC"):
            pipeline.synthesize("latch_ctrl", SynthesisOptions(), backend="statebased")
        artifact = pipeline.synthesize(
            "latch_ctrl", SynthesisOptions(assume_csc=True), backend="statebased"
        )
        assert artifact.literals > 0

    def test_map_and_verify_stages(self):
        pipeline = Pipeline()
        options = SynthesisOptions(level=5, assume_csc=True)
        mapping = pipeline.map("sequencer", options)
        assert mapping.total_area > 0
        verification = pipeline.verify("sequencer", options)
        assert verification.speed_independent
        assert verification.checked_markings > 0
        # synthesize ran once, shared by map and verify
        assert pipeline.stage_calls["synthesize"] == 1

    def test_run_produces_a_json_serializable_report(self):
        report = run("sequencer", level=5, map_technology=True, verify=True)
        assert isinstance(report, Report)
        assert report.backend == "structural"
        assert report.literals > 0
        assert report.speed_independent is True
        assert report.total_seconds > 0
        data = report.to_dict()
        json.dumps(data)
        assert set(data) >= {"spec", "backend", "level", "synthesize", "analyze"}
        assert "circuit" not in json.dumps(data)

    def test_statebased_backend_through_run(self):
        report = run("handshake_seq", backend="statebased", verify=True)
        assert report.backend == "statebased"
        assert report.synthesis.markings == 4
        assert report.analysis is None  # no structural front-end
        assert report.speed_independent is True


class TestErrorPaths:
    def test_csc_failure_without_assume_csc(self):
        # latch_ctrl is the classic benchmark with the CSC violation
        with pytest.raises(SynthesisError, match="CSC"):
            Pipeline().synthesize("latch_ctrl", SynthesisOptions())


class TestLegacyShims:
    """The historical module-level API keeps working on top of the pipeline."""

    def test_prepare_approximation_stats_shape(self):
        from repro.benchmarks.classic import load_classic

        stg = load_classic("sequencer")
        approximation, stats = prepare_approximation(
            stg, SynthesisOptions(assume_csc=True)
        )
        assert approximation.stg is stg
        assert stats["csc_certified"] is True
        assert stats["sm_cover"] >= 1
        assert stats["conflicts_after"] >= 0
        assert stats["cubes"] > 0
        assert stats["analysis_seconds"] >= 0

    def test_legacy_synthesize_matches_the_pipeline(self):
        from repro.benchmarks.classic import load_classic

        stg = load_classic("sequencer")
        legacy = synthesize(stg, SynthesisOptions(level=5, assume_csc=True))
        artifact = Pipeline().synthesize(
            "sequencer", SynthesisOptions(level=5, assume_csc=True)
        )
        assert legacy.circuit.literal_count() == artifact.literals
        assert legacy.literal_count() == artifact.literals
