"""Corpus quarantine: store interplay and replay of committed entries.

The corpus quarantine is *primary evidence* (minimal counterexamples a
human committed), while the artifact store holds *derived, recomputable*
results.  These tests pin the boundary: store maintenance — ``clear()``,
``sweep()``, corrupt-entry quarantining into ``v1/quarantine/`` — must
never touch corpus counterexamples, even when the quarantine directory
lives under the store root.  The final test is the tier-1 regression gate:
every entry committed under ``corpus/quarantine/`` replays with its
recorded expectation.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.api.pipeline import Pipeline
from repro.api.spec import Spec
from repro.api.store import ArtifactStore
from repro.corpus.quarantine import (
    DEFAULT_QUARANTINE_DIR,
    QUARANTINE_ENV_VAR,
    CorpusQuarantine,
)
from repro.stg.parser import parse_g
from repro.synthesis.engine import SynthesisOptions

REPO_ROOT = Path(__file__).resolve().parent.parent


def _minimal_cell():
    """The canonical minimal counterexample shape: one handshake cell."""
    from repro.corpus.idioms import build_idiom

    return build_idiom("independent_cell", "u_")


class TestQuarantineStore:
    def test_env_var_overrides_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv(QUARANTINE_ENV_VAR, str(tmp_path / "override"))
        assert CorpusQuarantine().root == tmp_path / "override"
        monkeypatch.delenv(QUARANTINE_ENV_VAR)
        assert str(CorpusQuarantine().root) == DEFAULT_QUARANTINE_DIR

    def test_filing_is_idempotent_and_distinct_bugs_do_not_collide(self, tmp_path):
        quarantine = CorpusQuarantine(tmp_path)
        stg = _minimal_cell()
        first = quarantine.file(stg, {"check": "mapped", "expect": "failure"})
        second = quarantine.file(stg, {"check": "mapped", "expect": "failure"})
        assert first == second
        assert len(quarantine.entries()) == 1
        other = quarantine.file(stg, {"check": "compare", "expect": "failure"})
        assert other != first
        assert len(quarantine.entries()) == 2

    def test_counterexamples_survive_store_clear_and_sweep(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        # derived artifacts land in the store ...
        pipeline = Pipeline(store=store)
        pipeline.run(Spec.from_benchmark("fig1"), SynthesisOptions(), max_markings=400)
        assert store.stats()["entries"] > 0
        # ... while counterexamples are filed under the same root
        quarantine = CorpusQuarantine(tmp_path / "store" / "corpus" / "quarantine")
        path = quarantine.file(
            _minimal_cell(), {"check": "mapped", "expect": "failure"}
        )
        store.clear()
        swept = store.sweep()
        assert store.stats()["entries"] == 0
        assert path.is_file()
        assert path.with_suffix(".reason.json").is_file()
        assert swept["stale_quarantined"] == 0  # .g files are not store entries
        assert len(quarantine.entries()) == 1

    def test_corpus_tier_is_disjoint_from_store_quarantine(self, tmp_path):
        # the store's own v1/quarantine/ (corrupt derived entries) and the
        # corpus quarantine never see each other's files
        store = ArtifactStore(tmp_path / "store")
        quarantine = CorpusQuarantine(tmp_path / "store" / "corpus" / "quarantine")
        quarantine.file(_minimal_cell(), {"check": "mapped", "expect": "failure"})
        assert not list(store.quarantine_dir.glob("*.g"))
        swept = store.sweep()
        assert swept["stale_quarantined"] == 0
        assert len(quarantine.entries()) == 1

    def test_entry_with_missing_sidecar_defaults_to_expect_failure(self, tmp_path):
        quarantine = CorpusQuarantine(tmp_path)
        path = quarantine.file(_minimal_cell(), {"check": "mapped"})
        path.with_suffix(".reason.json").unlink()
        (entry,) = quarantine.entries()
        assert entry.reason == {}
        assert entry.expect == "failure"


class TestCommittedCounterexamples:
    """Tier-1 replay of the counterexamples committed in corpus/quarantine/."""

    quarantine = CorpusQuarantine(REPO_ROOT / "corpus" / "quarantine")

    def test_committed_entries_exist(self):
        assert len(self.quarantine.entries()) >= 2

    def test_committed_artifacts_are_canonical_g_text(self):
        from repro.stg.writer import write_g

        for entry in self.quarantine.entries():
            text = entry.path.read_text()
            assert write_g(parse_g(text)) == text, entry.name
            reason = json.loads(
                entry.path.with_suffix(".reason.json").read_text()
            )
            assert reason.get("expect") in ("failure", "pass"), entry.name

    @pytest.mark.parametrize(
        "entry",
        [pytest.param(e, id=e.name) for e in quarantine.entries()],
    )
    def test_committed_entries_replay_with_recorded_expectation(self, entry):
        single = CorpusQuarantine(entry.path.parent)
        results = [r for r in single.replay() if r.entry.path == entry.path]
        assert results, entry.name
        (result,) = results
        assert result.ok, (
            f"{entry.name}: expected {result.expected}, observed "
            f"{result.observed} — failures: "
            f"{[f.to_dict() for f in result.report.failures]}"
        )
