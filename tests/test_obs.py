"""Tests of the ``repro.obs`` observability subsystem.

Bottom-up, mirroring the module layout:

* metrics primitives (counter/gauge/histogram) and the *exact*
  cross-process snapshot merge the fleet supervisor performs;
* Prometheus text exposition and its ``repro top``-side parser;
* tracing primitives: span nesting, ``X-Repro-Trace`` propagation,
  stitching per-process sinks into one tree;
* the wired layers: pipeline stage metrics + spans, the SAT descent's
  phase spans and solver-work counters, the server's ``/metrics``
  endpoint, the scheduler's pool-boundary trace stitching;
* the acceptance pins: a traced request through a real 2-worker fleet
  yields a stitched client → HTTP handler → flight leader → stage tree
  over HTTP, a racing-pipeline cold miss stitches leader *and* follower
  into one trace, and fleet metric aggregation is elementwise-exact
  under seeded chaos;
* the ``repro trace`` / ``repro top`` CLI surfaces.
"""

from __future__ import annotations

import io
import json
import random
import threading
import time
import urllib.request
from contextlib import contextmanager

import pytest

from repro.api import SynthesisOptions
from repro.api.cli import main as cli_main
from repro.api.client import Client
from repro.api.fleet import FleetConfig, FleetSupervisor, SingleFlight
from repro.api.pipeline import Pipeline
from repro.api.scheduler import Scheduler, make_jobs
from repro.api.server import create_server
from repro.api.store import ArtifactStore
from repro.obs import Obs, activate, current_obs, fleet_metrics, get_obs
from repro.obs.expose import (
    load_snapshots,
    merge_snapshots,
    parse_prometheus,
    render_prometheus,
)
from repro.obs.metrics import DEFAULT_BUCKETS, Registry
from repro.obs.trace import (
    Tracer,
    list_traces,
    load_records,
    load_trace,
    parse_header,
    render_trace,
    span_tree,
)

OPTIONS = SynthesisOptions(level=5, assume_csc=True)


@pytest.fixture(autouse=True)
def _no_ambient_obs(monkeypatch):
    """Tests control observability explicitly, never via the caller's env."""
    monkeypatch.delenv("REPRO_OBS", raising=False)


# ---------------------------------------------------------------------- #
# Metrics primitives
# ---------------------------------------------------------------------- #


class TestMetricsPrimitives:
    def test_counter_accumulates_and_rejects_decrease(self):
        registry = Registry(service="t")
        counter = registry.counter("c_total", "help", ("kind",))
        counter.inc(kind="a")
        counter.inc(2.5, kind="a")
        counter.inc(kind="b")
        assert counter.value(kind="a") == 3.5
        assert counter.value(kind="b") == 1.0
        assert counter.value(kind="never") == 0.0
        with pytest.raises(ValueError):
            counter.inc(-1, kind="a")

    def test_label_names_are_enforced(self):
        registry = Registry()
        counter = registry.counter("c_total", labelnames=("kind",))
        with pytest.raises(ValueError):
            counter.inc()  # missing label
        with pytest.raises(ValueError):
            counter.inc(kind="a", extra="b")  # undeclared label

    def test_gauge_set_inc_dec(self):
        gauge = Registry().gauge("g")
        gauge.set(4.0)
        gauge.inc()
        gauge.dec(2.0)
        assert gauge.value() == 3.0

    def test_histogram_buckets_observations_exactly(self):
        hist = Registry().histogram("h_seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.1, 0.5, 5.0, 100.0):
            hist.observe(value)
        snapshot = hist._to_snapshot()
        series = snapshot["series"][json.dumps([])]
        # <=0.1: 0.05 and the boundary 0.1; <=1.0: 0.5; <=10: 5.0; overflow: 100
        assert series["counts"] == [2, 1, 1, 1]
        assert series["count"] == 5
        assert series["sum"] == pytest.approx(105.65)

    def test_histogram_quantile_is_a_bucket_bound(self):
        hist = Registry().histogram("h_seconds", buckets=(0.1, 1.0, 10.0))
        assert hist.quantile(0.5) is None  # empty
        for _ in range(99):
            hist.observe(0.05)
        hist.observe(5.0)
        assert hist.quantile(0.5) == 0.1
        assert hist.quantile(1.0) == 10.0

    def test_default_buckets_are_shared_and_sorted(self):
        assert DEFAULT_BUCKETS == tuple(sorted(DEFAULT_BUCKETS))
        assert DEFAULT_BUCKETS[0] == pytest.approx(0.0005)
        assert len(DEFAULT_BUCKETS) == 20

    def test_registry_get_or_create_is_idempotent_but_kind_strict(self):
        registry = Registry()
        a = registry.counter("x_total")
        assert registry.counter("x_total") is a
        with pytest.raises(ValueError):
            registry.gauge("x_total")


# ---------------------------------------------------------------------- #
# Snapshot persistence and the exact cross-process merge
# ---------------------------------------------------------------------- #


def _seeded_registry(service: str, seed: int) -> Registry:
    """A registry with deterministic pseudo-random content (a fake worker)."""
    rng = random.Random(seed)
    registry = Registry(service=service)
    counter = registry.counter("repro_requests_total", "", ("endpoint",))
    hist = registry.histogram("repro_request_seconds", "", ("endpoint",))
    gauge = registry.gauge("repro_fleet_workers")
    for _ in range(rng.randint(20, 60)):
        endpoint = rng.choice(("synthesize", "verify", "health"))
        counter.inc(rng.randint(1, 5), endpoint=endpoint)
        hist.observe(rng.uniform(0.0001, 300.0), endpoint=endpoint)
    gauge.set(rng.randint(1, 8))
    return registry


class TestSnapshotMerge:
    def test_merge_is_elementwise_exact(self, tmp_path):
        registries = [_seeded_registry(f"w{i}", seed=100 + i) for i in range(4)]
        for registry in registries:
            registry.write_snapshot(tmp_path / f"metrics-{registry.service}.json")
        snapshots = load_snapshots(tmp_path)
        assert len(snapshots) == 4
        merged = merge_snapshots(snapshots)
        assert merged["merged_from"] == 4

        # counters: merged value == arithmetic sum over the per-file values
        for key in merged["metrics"]["repro_requests_total"]["series"]:
            expected = sum(
                s["metrics"]["repro_requests_total"]["series"].get(key, 0.0)
                for s in snapshots
            )
            assert merged["metrics"]["repro_requests_total"]["series"][key] == expected

        # histograms: per-bucket counts, sum and count all add exactly
        family = merged["metrics"]["repro_request_seconds"]
        for key, series in family["series"].items():
            per_file = [
                s["metrics"]["repro_request_seconds"]["series"].get(key)
                for s in snapshots
            ]
            per_file = [p for p in per_file if p is not None]
            for slot in range(len(family["buckets"]) + 1):
                assert series["counts"][slot] == sum(
                    p["counts"][slot] for p in per_file
                )
            assert series["count"] == sum(p["count"] for p in per_file)
            assert series["sum"] == pytest.approx(sum(p["sum"] for p in per_file))

    def test_damaged_snapshot_degrades_to_skipped(self, tmp_path):
        _seeded_registry("w0", 1).write_snapshot(tmp_path / "metrics-w0.json")
        (tmp_path / "metrics-torn.json").write_text('{"metrics": {"x"')
        (tmp_path / "metrics-list.json").write_text("[1, 2]")
        snapshots = load_snapshots(tmp_path)
        assert len(snapshots) == 1

    def test_mixed_bucket_boundaries_are_not_merged(self):
        a = Registry("a")
        a.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        b = Registry("b")
        b.histogram("h", buckets=(1.0, 4.0)).observe(0.5)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        series = merged["metrics"]["h"]["series"][json.dumps([])]
        assert series["count"] == 1  # the mismatched snapshot was skipped

    def test_write_snapshot_is_atomic_and_isolated(self, tmp_path):
        registry = Registry("w")
        counter = registry.counter("c_total")
        counter.inc()
        path = registry.write_snapshot(tmp_path / "metrics-w.json")
        before = json.loads(path.read_text())
        counter.inc(10)  # later mutation must not leak into the old document
        assert before["metrics"]["c_total"]["series"][json.dumps([])] == 1.0
        assert not list(tmp_path.glob("*.tmp"))


# ---------------------------------------------------------------------- #
# Prometheus exposition
# ---------------------------------------------------------------------- #


class TestPrometheus:
    def test_render_and_parse_roundtrip(self):
        registry = _seeded_registry("w", seed=7)
        text = render_prometheus(registry.snapshot())
        assert "# TYPE repro_requests_total counter" in text
        assert "# TYPE repro_request_seconds histogram" in text
        families = parse_prometheus(text)
        for endpoint in ("synthesize", "verify", "health"):
            key = (("endpoint", endpoint),)
            if key in families["repro_requests_total"]:
                assert families["repro_requests_total"][key] == registry.counter(
                    "repro_requests_total", labelnames=("endpoint",)
                ).value(endpoint=endpoint)

    def test_histogram_exposition_is_cumulative_with_inf(self):
        registry = Registry("w")
        hist = registry.histogram("h_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 99.0):
            hist.observe(value)
        text = render_prometheus(registry.snapshot())
        lines = [l for l in text.splitlines() if l.startswith("h_seconds")]
        assert 'h_seconds_bucket{le="0.1"} 1' in lines
        assert 'h_seconds_bucket{le="1"} 2' in lines
        assert 'h_seconds_bucket{le="+Inf"} 3' in lines
        assert "h_seconds_count 3" in lines
        assert any(l.startswith("h_seconds_sum") for l in lines)


# ---------------------------------------------------------------------- #
# Tracing primitives
# ---------------------------------------------------------------------- #


class TestTracePrimitives:
    def test_header_roundtrip_and_malformed_values(self):
        tracer = Tracer(service="t")
        with tracer.span("root") as span:
            header = span.context.to_header()
        context = parse_header(header)
        assert context.trace_id == span.trace_id
        assert context.span_id == span.span_id
        for bad in (None, "", "justonepart", ":", "abc:", ":def", "xyz!:123", 7):
            assert parse_header(bad) is None

    def test_spans_nest_via_the_thread_local_stack(self, tmp_path):
        sink = tmp_path / "trace-t.jsonl"
        tracer = Tracer(sink=sink, service="t")
        with tracer.span("outer") as outer:
            assert tracer.current() == outer.context
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        assert tracer.current() is None
        records = load_records(tmp_path)
        assert [r["name"] for r in records] == ["inner", "outer"]  # finish order
        assert records[0]["parent"] == records[1]["span"]

    def test_explicit_parent_adopts_the_remote_context(self):
        tracer = Tracer(service="worker")
        remote = parse_header("aaaa1111:bbbb2222")
        with tracer.span("http:/synthesize", parent=remote) as span:
            assert span.trace_id == "aaaa1111"
            assert span.parent_id == "bbbb2222"

    def test_error_status_and_timers(self, tmp_path):
        tracer = Tracer(sink=tmp_path / "trace-t.jsonl", service="t")
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                time.sleep(0.01)
                raise RuntimeError("x")
        (record,) = load_records(tmp_path)
        assert record["status"] == "error"
        assert record["seconds"] >= 0.01
        assert record["cpu_seconds"] >= 0.0

    def test_sinkless_tracer_counts_but_drops(self):
        tracer = Tracer(service="t")
        with tracer.span("a"):
            pass
        assert tracer.emitted == 1

    def test_stitching_tolerates_torn_lines_and_orphans(self, tmp_path):
        tracer = Tracer(sink=tmp_path / "trace-a.jsonl", service="a")
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        # a torn final line from a SIGKILLed process
        with open(tmp_path / "trace-a.jsonl", "a") as handle:
            handle.write('{"trace": "deadbeef", "span": "tr')
        # an orphan whose parent never reached any sink
        (tmp_path / "trace-b.jsonl").write_text(
            json.dumps(
                {
                    "trace": "cafecafe",
                    "span": "0011",
                    "parent": "lost",
                    "name": "orphan",
                    "start": 1.0,
                    "seconds": 0.5,
                }
            )
            + "\n"
        )
        records = load_records(tmp_path)
        assert len(records) == 3
        roots = span_tree(load_trace(tmp_path, "cafecafe"))
        assert len(roots) == 1 and roots[0]["record"]["name"] == "orphan"
        summaries = list_traces(tmp_path)
        assert {s["trace"] for s in summaries} == {
            records[0]["trace"],
            "cafecafe",
        }

    def test_render_trace_draws_the_tree(self, tmp_path):
        tracer = Tracer(sink=tmp_path / "trace-t.jsonl", service="svc")
        with tracer.span("root") as root:
            with tracer.span("left"):
                pass
            with tracer.span("right"):
                pass
        text = render_trace(load_trace(tmp_path, root.trace_id))
        assert text.startswith(f"trace {root.trace_id}")
        assert "└─ root" in text
        assert "├─ left" in text
        assert "└─ right" in text
        assert "[svc]" in text
        assert render_trace([]) == "(no spans)"


# ---------------------------------------------------------------------- #
# The Obs bundle: grammar, env resolution, activation
# ---------------------------------------------------------------------- #


class TestObsBundle:
    def test_grammar_roundtrip(self, tmp_path):
        obs = Obs.parse(f"dir={tmp_path};service=cli;trace=off")
        assert obs.dir == tmp_path
        assert obs.service == "cli"
        assert not obs.trace_enabled and obs.metrics_enabled
        again = Obs.parse(obs.to_text())
        assert again.dir == obs.dir
        assert again.trace_enabled == obs.trace_enabled

    def test_off_tokens_and_bad_clauses(self):
        for text in ("off", "", "0", "false", "no"):
            assert Obs.parse(text) is None
        assert Obs.parse("on") is not None
        with pytest.raises(ValueError):
            Obs.parse("bogus")
        with pytest.raises(ValueError):
            Obs.parse("color=red")

    def test_get_obs_resolution_order(self, monkeypatch, tmp_path):
        assert get_obs(None) is None  # env unset by the autouse fixture
        monkeypatch.setenv("REPRO_OBS", "on")
        assert get_obs(None) is not None
        monkeypatch.setenv("REPRO_OBS", "off")
        assert get_obs(None) is None
        explicit = Obs()
        assert get_obs(explicit) is explicit
        parsed = get_obs(f"dir={tmp_path}")
        assert parsed is not None and parsed.dir == tmp_path

    def test_activate_scopes_the_thread_local(self):
        obs = Obs()
        assert current_obs() is None
        with activate(obs):
            assert current_obs() is obs
            with activate(None):
                assert current_obs() is None
            assert current_obs() is obs
        assert current_obs() is None

    def test_snapshot_path_and_trace_sink_live_in_dir(self, tmp_path):
        obs = Obs(dir=tmp_path, service="svc")
        assert obs.snapshot_path == tmp_path / "metrics-svc.json"
        assert obs.tracer.sink == tmp_path / "trace-svc.jsonl"
        obs.requests.inc(endpoint="health")
        assert obs.write_snapshot() == obs.snapshot_path
        assert Obs(service="nodir").write_snapshot() is None

    def test_render_metrics_is_prometheus_text(self):
        obs = Obs(service="svc")
        obs.requests.inc(endpoint="health")
        families = parse_prometheus(obs.render_metrics())
        assert families["repro_requests_total"][(("endpoint", "health"),)] == 1.0


# ---------------------------------------------------------------------- #
# Pipeline + SAT wiring
# ---------------------------------------------------------------------- #


class TestPipelineObs:
    def test_stage_resolutions_mirror_the_adhoc_counters(self, tmp_path):
        obs = Obs()
        pipeline = Pipeline(store=tmp_path / "store", obs=obs)
        pipeline.run("sequencer", OPTIONS)
        pipeline.run("sequencer", OPTIONS)  # memory hits
        computed = sum(
            obs.stage_resolutions.value(stage=stage, source="computed")
            for stage in pipeline.stage_calls
        )
        assert computed == sum(pipeline.stage_calls.values())
        assert obs.stage_resolutions.value(stage="synthesize", source="memory") >= 1
        # a fresh pipeline over the same store resolves from disk
        pipeline2 = Pipeline(store=tmp_path / "store", obs=obs)
        pipeline2.run("sequencer", OPTIONS)
        assert obs.stage_resolutions.value(stage="synthesize", source="store") >= 1
        # wall and CPU timers saw every computed stage
        snapshot = obs.stage_seconds._to_snapshot()
        observed = sum(s["count"] for s in snapshot["series"].values())
        assert observed == computed
        cpu = obs.stage_cpu_seconds._to_snapshot()
        assert sum(s["count"] for s in cpu["series"].values()) == computed

    def test_store_reads_and_writes_are_counted(self, tmp_path):
        obs = Obs()
        store = ArtifactStore(tmp_path / "store", lru_size=8, obs=obs)
        pipeline = Pipeline(store=store, cache=False, obs=obs)
        pipeline.run("sequencer", OPTIONS)
        assert obs.store_writes.value() == store.writes
        assert obs.store_reads.value(outcome="miss") == store.misses
        pipeline.run("sequencer", OPTIONS)  # cache off: hot-LRU hits
        assert (
            obs.store_reads.value(outcome="hit")
            + obs.store_reads.value(outcome="lru_hit")
            == store.hits
        )
        assert obs.store_reads.value(outcome="lru_hit") >= 1

    def test_stage_spans_nest_under_the_active_span(self, tmp_path):
        obs = Obs(dir=tmp_path / "run", service="test")
        pipeline = Pipeline(obs=obs)
        with obs.tracer.span("caller") as caller:
            pipeline.run("sequencer", OPTIONS)
        records = load_trace(tmp_path / "run", caller.trace_id)
        by_name = {r["name"]: r for r in records}
        assert "stage:synthesize" in by_name
        (root,) = span_tree(records)
        assert root["record"]["name"] == "caller"
        # analyze/refine nest under synthesize, which nests under caller
        synth = next(
            n for n in root["children"] if n["record"]["name"] == "stage:synthesize"
        )
        nested = {n["record"]["name"] for n in synth["children"]}
        assert "stage:analyze" in nested

    def test_sat_descent_reports_phases_and_solver_work(self, tmp_path):
        obs = Obs(dir=tmp_path / "run", service="test")
        pipeline = Pipeline(obs=obs)
        with obs.tracer.span("caller") as caller:
            pipeline.run("sequencer", OPTIONS, backend="sat")
        # solver work counters came up through the thread-local seam
        assert obs.sat_work.value(kind="propagations") > 0
        assert obs.sat_work.value(kind="decisions") > 0
        phases = obs.sat_phase_seconds._to_snapshot()["series"]
        phase_names = {json.loads(key)[0] for key in phases}
        assert phase_names == {"cubes", "literals", "enumerate"}
        # each phase ran once per (signal, kind) cover problem
        counts = {json.loads(k)[0]: v["count"] for k, v in phases.items()}
        assert counts["cubes"] == counts["literals"] == counts["enumerate"]
        # and the sat:* spans nest under the synthesize stage span
        records = load_trace(tmp_path / "run", caller.trace_id)
        sat_spans = [r for r in records if r["name"].startswith("sat:")]
        assert sat_spans
        stage = next(r for r in records if r["name"] == "stage:synthesize")
        parents = {r["parent"] for r in sat_spans}
        assert parents == {stage["span"]}

    def test_obs_off_records_nothing(self, tmp_path):
        pipeline = Pipeline(store=tmp_path / "store")
        assert pipeline.obs is None
        pipeline.run("sequencer", OPTIONS)
        assert pipeline.store.obs is None


# ---------------------------------------------------------------------- #
# Server: /metrics and request accounting
# ---------------------------------------------------------------------- #


@contextmanager
def _served(tmp_path, **kwargs):
    server = create_server(port=0, store=tmp_path / "store", **kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server, server.server_address[1]
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def _scrape(port: int) -> tuple[str, str]:
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}/metrics", timeout=10
    ) as response:
        return (
            response.read().decode("utf-8"),
            response.headers.get("Content-Type", ""),
        )


class TestServerObs:
    def test_metrics_endpoint_disabled_is_a_hint(self, tmp_path):
        with _served(tmp_path) as (_, port):
            text, content_type = _scrape(port)
        assert "disabled" in text
        assert content_type.startswith("text/plain")

    def test_metrics_endpoint_exposes_request_series(self, tmp_path):
        obs = Obs(service="server")
        with _served(tmp_path, obs=obs) as (server, port):
            client = Client(f"http://127.0.0.1:{port}")
            client.synthesize("sequencer", assume_csc=True)
            client.synthesize("sequencer", assume_csc=True)
            client.health()
            text, content_type = _scrape(port)
        assert content_type.startswith("text/plain; version=0.0.4")
        families = parse_prometheus(text)
        requests = families["repro_requests_total"]
        assert requests[(("endpoint", "synthesize"),)] == 2.0
        assert requests[(("endpoint", "health"),)] == 1.0
        # the stage resolution series carry the computed/memory split
        resolutions = families["repro_stage_resolutions_total"]
        assert (
            resolutions[(("source", "computed"), ("stage", "synthesize"))] == 1.0
        )
        assert (
            resolutions[(("source", "memory"), ("stage", "synthesize"))] == 1.0
        )
        hist = families["repro_request_seconds_count"]
        assert hist[(("endpoint", "synthesize"),)] == 2.0

    def test_request_errors_are_counted(self, tmp_path):
        obs = Obs(service="server")
        with _served(tmp_path, obs=obs) as (_, port):
            client = Client(f"http://127.0.0.1:{port}")
            with pytest.raises(Exception):
                client.synthesize("no_such_benchmark_anywhere")
        assert obs.request_errors.value(endpoint="synthesize") == 1.0
        assert obs.requests.value(endpoint="synthesize") == 1.0

    def test_post_without_header_is_traced_as_a_root(self, tmp_path):
        run = tmp_path / "run"
        obs = Obs(dir=run, service="server")
        with _served(tmp_path, obs=obs) as (_, port):
            Client(f"http://127.0.0.1:{port}").synthesize(
                "sequencer", assume_csc=True
            )
            Client(f"http://127.0.0.1:{port}").health()  # probe GET: untraced
        records = load_records(run)
        roots = [r for r in records if r["parent"] is None]
        assert [r["name"] for r in roots] == ["http:/synthesize"]

    def test_propagated_header_stitches_client_and_server(self, tmp_path):
        run = tmp_path / "run"
        server_obs = Obs(dir=run, service="server")
        client_obs = Obs(dir=run, service="client")
        with _served(tmp_path, obs=server_obs) as (_, port):
            client = Client(f"http://127.0.0.1:{port}", obs=client_obs)
            client.synthesize("sequencer", assume_csc=True)
        (summary,) = list_traces(run)
        assert summary["services"] == ["client", "server"]
        (root,) = span_tree(load_trace(run, summary["trace"]))
        assert root["record"]["name"] == "client:POST /synthesize"
        (http,) = root["children"]
        assert http["record"]["name"] == "http:/synthesize"
        assert http["record"]["service"] == "server"


# ---------------------------------------------------------------------- #
# Scheduler: spans and snapshots across the process-pool boundary
# ---------------------------------------------------------------------- #


class TestSchedulerObs:
    def test_sequential_jobs_count_into_the_registry(self, tmp_path):
        obs = Obs()
        scheduler = Scheduler(jobs=None, store=tmp_path / "store", obs=obs)
        results = list(scheduler.iter_results(make_jobs(["sequencer"], OPTIONS)))
        assert results[0].ok
        assert obs.jobs.value(status="start") == 1.0
        assert obs.jobs.value(status="done") == 1.0

    def test_pool_jobs_stitch_under_the_submitting_span(self, tmp_path):
        run = tmp_path / "run"
        obs = Obs(dir=run, service="driver")
        scheduler = Scheduler(jobs=2, store=tmp_path / "store", obs=obs)
        names = ["sequencer", "handshake_seq"]
        with obs.tracer.span("batch") as batch:
            results = list(scheduler.iter_results(make_jobs(names, OPTIONS)))
        assert all(r.ok for r in results)

        records = load_trace(run, batch.trace_id)
        jobs = [r for r in records if r["name"].startswith("job:")]
        assert {r["name"] for r in jobs} == {f"job:{n}" for n in names}
        # every pool-side job span adopted the submitting span as parent,
        # from a different process
        assert {r["parent"] for r in jobs} == {batch.span_id}
        driver_pid = next(r for r in records if r["name"] == "batch")["pid"]
        assert all(r["pid"] != driver_pid for r in jobs)
        # stage spans nest under their job span inside the pool process
        stages = [r for r in records if r["name"] == "stage:synthesize"]
        assert {r["parent"] for r in stages} <= {r["span"] for r in jobs}

        # every pool process flushed a snapshot; the merge sees all work
        merged = fleet_metrics(run)
        series = merged["metrics"]["repro_stage_resolutions_total"]["series"]
        computed = sum(
            value
            for key, value in series.items()
            if json.loads(key)[1] == "computed"
        )
        per_file = sum(
            value
            for snapshot in load_snapshots(run)
            for key, value in snapshot["metrics"]
            .get("repro_stage_resolutions_total", {"series": {}})["series"]
            .items()
            if json.loads(key)[1] == "computed"
        )
        assert computed == per_file > 0


# ---------------------------------------------------------------------- #
# Acceptance: the racing cold miss stitches leader AND follower
# ---------------------------------------------------------------------- #


class TestLeaderFollowerStitch:
    def test_flight_leader_and_wait_share_one_trace(self, tmp_path):
        run = tmp_path / "run"
        obs = Obs(dir=run, service="race")
        root = tmp_path / "store"
        pipelines = []
        for _ in range(2):
            store = ArtifactStore(root, obs=obs)
            pipelines.append(
                Pipeline(
                    store=store,
                    flights=SingleFlight(store, poll_interval=0.005, obs=obs),
                    faults="stage.delay@analyze=1~0.3",
                    obs=obs,
                )
            )
        errors = []

        def runner(index: int, parent) -> None:
            try:
                # adopt the test's root context on this worker thread so
                # both racers' spans land in one trace
                with obs.tracer.span(f"racer{index}", parent=parent):
                    if index:
                        time.sleep(0.08)
                    pipelines[index].run("sequencer", OPTIONS)
            except Exception as error:  # noqa: BLE001 — surfaced below
                errors.append(error)

        with obs.tracer.span("herd") as herd:
            threads = [
                threading.Thread(target=runner, args=(i, herd.context))
                for i in range(2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
        assert not errors
        records = load_trace(run, herd.trace_id)
        names = [r["name"] for r in records]
        assert "flight:leader" in names
        assert "flight:wait" in names
        # the follower's wait span belongs to the late racer and produced
        # a coalesced resolution in the metrics
        assert obs.flights.value(outcome="led") >= 1
        assert obs.flights.value(outcome="followed") >= 1
        assert obs.flights.value(outcome="degraded") == 0
        assert (
            obs.stage_resolutions.value(stage="synthesize", source="coalesced")
            >= 1
        )
        # stage computations happened exactly once between the two racers
        computed = {}
        for record in records:
            if record["name"].startswith("stage:"):
                computed[record["name"]] = computed.get(record["name"], 0) + 1
        assert computed and all(count == 1 for count in computed.values())


# ---------------------------------------------------------------------- #
# Acceptance: the real 2-worker fleet over HTTP
# ---------------------------------------------------------------------- #


@contextmanager
def _running_fleet(tmp_path, **overrides):
    settings = dict(
        port=0,
        workers=2,
        store=str(tmp_path / "store"),
        run_dir=str(tmp_path / "run"),
        heartbeat_interval=0.1,
        obs="on",
    )
    settings.update(overrides)
    supervisor = FleetSupervisor(FleetConfig(**settings), log_stream=io.StringIO())
    supervisor.start()
    stop = threading.Event()

    def supervise() -> None:
        while not stop.is_set():
            supervisor.poll()
            stop.wait(0.05)

    thread = threading.Thread(target=supervise, daemon=True)
    thread.start()
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        try:
            urllib.request.urlopen(
                f"http://127.0.0.1:{supervisor.port}/health", timeout=2
            )
            break
        except OSError:
            time.sleep(0.05)
    try:
        yield supervisor
    finally:
        stop.set()
        thread.join(timeout=5)
        supervisor.stop()


class TestFleetObsAcceptance:
    def test_traced_request_stitches_across_the_fleet(self, tmp_path):
        run_dir = tmp_path / "run"
        with _running_fleet(tmp_path) as supervisor:
            client = Client(
                f"http://127.0.0.1:{supervisor.port}",
                obs=Obs(dir=run_dir, service="client"),
                retries=4,
                backoff=0.1,
                timeout=60,
            )
            result = client.synthesize("sequencer", level=5, assume_csc=True)
            assert result.resolution["computed"] > 0  # genuinely cold

        # exactly one trace: client span -> worker http span -> flight
        # leader -> nested stage spans, across two processes
        traces = [
            t for t in list_traces(run_dir) if t["root"] == "client:POST /synthesize"
        ]
        assert len(traces) == 1
        summary = traces[0]
        assert summary["services"][0] == "client"
        assert any(s.startswith("worker") for s in summary["services"])
        records = load_trace(run_dir, summary["trace"])
        (root,) = span_tree(records)
        assert root["record"]["name"] == "client:POST /synthesize"
        assert root["record"]["service"] == "client"
        (http,) = root["children"]
        assert http["record"]["name"] == "http:/synthesize"
        assert http["record"]["service"].startswith("worker")
        (leader,) = http["children"]
        assert leader["record"]["name"] == "flight:leader"
        (synth,) = leader["children"]
        assert synth["record"]["name"] == "stage:synthesize"
        nested = {n["record"]["name"] for n in synth["children"]}
        assert any(n in nested for n in ("flight:leader", "stage:analyze"))
        # the rendered tree is what `repro trace show` prints
        text = render_trace(records)
        assert "client:POST /synthesize" in text and "stage:synthesize" in text

    def test_fleet_aggregation_is_exact_under_seeded_chaos(self, tmp_path):
        run_dir = tmp_path / "run"
        specs = ["sequencer", "handshake_seq", "glatch_3"]
        with _running_fleet(
            tmp_path, faults="seed=11;stage.delay@synthesize=0.4~0.05"
        ) as supervisor:
            client = Client(
                f"http://127.0.0.1:{supervisor.port}",
                retries=8,
                backoff=0.1,
                timeout=60,
            )
            failures: list[str] = []
            served = [0]
            lock = threading.Lock()

            def load(slot: int) -> None:
                for step in range(6):
                    name = specs[(slot + step) % len(specs)]
                    try:
                        client.synthesize(name, level=5, assume_csc=True)
                        with lock:
                            served[0] += 1
                    except Exception as error:  # noqa: BLE001 — collected
                        failures.append(f"{name}: {error!r}")

            threads = [
                threading.Thread(target=load, args=(i,)) for i in range(3)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert failures == []
            time.sleep(0.4)  # at least one heartbeat flush after the load
            merged = supervisor.metrics()

        assert merged is not None and merged["merged_from"] >= 3
        snapshots = load_snapshots(run_dir)
        # counters: each merged series equals the arithmetic sum of the
        # per-process snapshot files — elementwise, exactly
        for name in ("repro_requests_total", "repro_stage_resolutions_total"):
            for key, value in merged["metrics"][name]["series"].items():
                expected = sum(
                    s["metrics"].get(name, {"series": {}})["series"].get(key, 0.0)
                    for s in snapshots
                )
                assert value == expected, (name, key)
        # histogram buckets add exactly too
        family = merged["metrics"]["repro_request_seconds"]
        for key, series in family["series"].items():
            per_file = [
                s["metrics"]
                .get("repro_request_seconds", {"series": {}})["series"]
                .get(key)
                for s in snapshots
            ]
            per_file = [p for p in per_file if p is not None]
            assert series["counts"] == [
                sum(counts) for counts in zip(*(p["counts"] for p in per_file))
            ]
            assert series["count"] == sum(p["count"] for p in per_file)
        # and the fleet served every request the clients sent: the final
        # worker snapshots (flushed on drain) account for all 18
        synthesize_total = sum(
            value
            for key, value in merged["metrics"]["repro_requests_total"][
                "series"
            ].items()
            if json.loads(key) == ["synthesize"]
        )
        assert synthesize_total >= served[0] == 18
        # the supervisor's own gauge is part of the merge
        assert merged["metrics"]["repro_fleet_workers"]["series"][
            json.dumps([])
        ] == 2.0

    def test_fleet_herd_coalesces_across_workers(self, tmp_path):
        """A cold herd over real HTTP: someone leads, followers coalesce."""
        herd_size = 8
        with _running_fleet(
            tmp_path, faults="seed=3;stage.delay@synthesize=1~0.4"
        ) as supervisor:
            port = supervisor.port
            resolutions: list[dict] = []
            barrier = threading.Barrier(herd_size)

            def stampede() -> None:
                barrier.wait()
                client = Client(
                    f"http://127.0.0.1:{port}", retries=6, backoff=0.1, timeout=60
                )
                resolutions.append(
                    client.synthesize("philosophers_3", assume_csc=True).resolution
                )

            herd = [threading.Thread(target=stampede) for _ in range(herd_size)]
            for thread in herd:
                thread.start()
            for thread in herd:
                thread.join(timeout=120)
            time.sleep(0.4)
            merged = supervisor.metrics()
        assert len(resolutions) == herd_size
        computed = sum(1 for r in resolutions if r.get("computed", 0) > 0)
        assert computed <= 2, resolutions  # at most one degraded straggler
        # the flight outcomes surfaced in the fleet-wide metric view
        flights = merged["metrics"]["repro_flight_total"]["series"]
        led = sum(v for k, v in flights.items() if json.loads(k) == ["led"])
        assert led >= 1


# ---------------------------------------------------------------------- #
# CLI: repro trace / repro top
# ---------------------------------------------------------------------- #


def _run_cli(capsys, *argv):
    code = cli_main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestObsCli:
    @pytest.fixture()
    def run_dir(self, tmp_path):
        obs = Obs(dir=tmp_path / "run", service="cli")
        pipeline = Pipeline(obs=obs)
        with obs.tracer.span("cli:synthesize"):
            pipeline.run("sequencer", OPTIONS)
        obs.write_snapshot()
        return tmp_path / "run"

    def test_trace_ls_and_show(self, capsys, run_dir):
        code, out, _ = _run_cli(capsys, "trace", "ls", "--dir", str(run_dir))
        assert code == 0
        assert "cli:synthesize" in out
        trace_id = out.split()[0]
        code, out, _ = _run_cli(capsys, "trace", "show", trace_id, "--dir", str(run_dir))
        assert code == 0
        assert "stage:synthesize" in out and "ms" in out
        code, out, _ = _run_cli(
            capsys, "trace", "show", trace_id, "--dir", str(run_dir), "--json"
        )
        assert code == 0
        records = json.loads(out)
        assert all(r["trace"] == trace_id for r in records)

    def test_trace_show_requires_an_id_and_real_trace(self, capsys, run_dir):
        code, _, err = _run_cli(capsys, "trace", "show", "--dir", str(run_dir))
        assert code == 2 and "trace id" in err
        code, _, err = _run_cli(
            capsys, "trace", "show", "feedc0de", "--dir", str(run_dir)
        )
        assert code == 2 and "no spans" in err

    def test_trace_ls_empty_dir(self, capsys, tmp_path):
        code, out, _ = _run_cli(capsys, "trace", "ls", "--dir", str(tmp_path))
        assert code == 0 and "no traces" in out

    def test_top_once_over_a_run_dir(self, capsys, run_dir):
        code, out, _ = _run_cli(
            capsys, "top", "--run-dir", str(run_dir), "--once"
        )
        assert code == 0
        assert "repro top" in out
        assert "stages" in out and "computed" in out

    def test_top_json_sample(self, capsys, run_dir):
        code, out, _ = _run_cli(
            capsys, "top", "--run-dir", str(run_dir), "--once", "--json"
        )
        assert code == 0
        sample = json.loads(out)
        assert sample["stages"]["computed"] >= 1
        assert sample["req_per_s"] is None  # single sample: no rate yet

    def test_top_over_a_live_server_url(self, capsys, tmp_path):
        obs = Obs(service="server")
        with _served(tmp_path, obs=obs) as (_, port):
            Client(f"http://127.0.0.1:{port}").synthesize(
                "sequencer", assume_csc=True
            )
            code, out, _ = _run_cli(
                capsys,
                "top",
                "--url",
                f"http://127.0.0.1:{port}",
                "--iterations",
                "2",
                "--interval",
                "0.05",
            )
        assert code == 0
        assert "requests" in out

    def test_top_requires_exactly_one_source(self, capsys, tmp_path):
        code, out, _ = _run_cli(capsys, "top", "--once")
        assert code == 2
        code, out, _ = _run_cli(
            capsys,
            "top",
            "--once",
            "--run-dir",
            str(tmp_path),
            "--url",
            "http://127.0.0.1:1",
        )
        assert code == 2

    def test_top_unreachable_source_fails_cleanly(self, capsys, tmp_path):
        code, out, _ = _run_cli(
            capsys, "top", "--once", "--url", "http://127.0.0.1:9"
        )
        assert code == 1 and "cannot sample" in out
