"""Tests of the state-based oracle engine (regions, coding, next-state)."""

from __future__ import annotations

import pytest

from repro.benchmarks.classic import load_classic
from repro.statebased.coding import analyze_state_coding, check_csc, check_usc
from repro.statebased.nextstate import next_state_function, next_state_functions
from repro.statebased.regions import compute_signal_regions
from repro.statebased.synthesis import StateBasedSynthesisError, synthesize_state_based
from repro.stg.encoding import encode_reachability_graph


class TestRegions:
    def test_fig1_excitation_regions(self, fig1):
        regions = compute_signal_regions(fig1)
        assert len(regions.er("d-")) == 1
        assert len(regions.er("d+/1")) == 1
        assert len(regions.er("a+")) == 1
        # ER and QR of the same transition are disjoint
        for transition in fig1.transitions:
            assert not (regions.er(transition) & regions.qr(transition))

    def test_generalized_regions_partition_next_state(self, fig1):
        regions = compute_signal_regions(fig1)
        encoded = regions.encoded
        for signal in fig1.non_input_signals:
            on = regions.ger(signal, "+") | regions.gqr(signal, 1)
            off = regions.ger(signal, "-") | regions.gqr(signal, 0)
            assert not (on & off)
            assert on | off == set(encoded.markings)

    def test_restricted_quiescent_regions(self, fig1):
        regions = compute_signal_regions(fig1)
        shared = regions.qr("d+/1") & regions.qr("d+/2")
        assert regions.rqr("d+/1") == regions.qr("d+/1") - shared

    def test_backward_regions_precede_excitation(self, fig1):
        regions = compute_signal_regions(fig1)
        backward = regions.br("d+/1")
        assert backward
        assert not (backward & regions.er("d+/1"))


class TestCoding:
    def test_fig1_violates_usc_but_satisfies_csc(self, fig1):
        assert not check_usc(fig1)
        assert check_csc(fig1)

    def test_fig5_violates_csc_and_fig6_fixes_it(self, fig5, fig6):
        assert not check_csc(fig5)
        assert check_csc(fig6)

    def test_latch_ctrl_csc_conflict_details(self):
        stg = load_classic("latch_ctrl")
        report = analyze_state_coding(stg)
        assert not report.satisfies_csc
        assert all(conflict.is_csc_conflict for conflict in report.csc_conflicts)


class TestNextStateFunctions:
    def test_functions_are_consistent_and_complete(self, fig1):
        functions = next_state_functions(fig1)
        assert set(functions) == {"c", "d"}
        for function in functions.values():
            assert function.is_consistent()
            assert function.is_complete()

    def test_values_match_region_membership(self, fig1):
        regions = compute_signal_regions(fig1)
        encoded = regions.encoded
        function = next_state_function(fig1, "d", regions)
        for marking in encoded.markings:
            code = encoded.code_of(marking)
            value = function.evaluate(code)
            if marking in regions.ger("d", "+") | regions.gqr("d", 1):
                assert value == 1
            elif marking in regions.ger("d", "-") | regions.gqr("d", 0):
                assert value == 0


class TestStateBasedSynthesis:
    def test_fig1_synthesis_produces_expected_gates(self, fig1):
        result = synthesize_state_based(fig1)
        circuit = result.circuit
        assert set(circuit.signals) == {"c", "d"}
        # the running example collapses to simple combinational gates
        assert circuit.literal_count() <= 8

    def test_csc_violation_rejected(self, fig5):
        with pytest.raises(StateBasedSynthesisError):
            synthesize_state_based(fig5)

    def test_internal_signal_makes_fig6_synthesizable(self, fig6):
        result = synthesize_state_based(fig6)
        assert set(result.circuit.signals) == {"y", "s"}

    def test_circuit_behaviour_matches_specification(self, glatch3):
        result = synthesize_state_based(glatch3)
        encoded = encode_reachability_graph(glatch3)
        regions = result.regions
        from repro.statebased.nextstate import next_state_value

        for marking in encoded.markings:
            code = encoded.code_of(marking)
            for signal in glatch3.non_input_signals:
                implied = next_state_value(glatch3, regions, signal, marking)
                if implied is not None:
                    assert result.circuit.next_value(signal, code) == implied
