"""Tests of the Petri-net kernel: structure, firing, properties, SM-covers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.petri.invariants import place_invariants, token_count_of_invariant
from repro.petri.marking import Marking
from repro.petri.net import PetriNet
from repro.petri.properties import (
    is_free_choice,
    is_live,
    is_marked_graph,
    is_safe,
    is_state_machine,
    redundant_places,
    validate_synthesis_preconditions,
)
from repro.petri.reachability import (
    StateSpaceLimitExceeded,
    build_reachability_graph,
    concurrent_pairs_from_rg,
    count_reachable_markings,
)
from repro.petri.smcover import compute_sm_components, compute_sm_cover, is_sm_component


def simple_cycle(length: int = 3) -> PetriNet:
    """p0 -> t0 -> p1 -> t1 -> ... -> p0, one token."""
    net = PetriNet("cycle")
    for i in range(length):
        net.add_place(f"p{i}", tokens=1 if i == 0 else 0)
        net.add_transition(f"t{i}")
    for i in range(length):
        net.add_arc(f"p{i}", f"t{i}")
        net.add_arc(f"t{i}", f"p{(i + 1) % length}")
    return net


def fork_join() -> PetriNet:
    """A marked graph with a fork into two branches and a join."""
    net = PetriNet("forkjoin")
    for name in ["p0", "pa", "pb", "pa2", "pb2", "pend"]:
        net.add_place(name)
    net.set_initial_tokens("p0", 1)
    for name in ["fork", "ta", "tb", "join", "loop"]:
        net.add_transition(name)
    net.add_arc("p0", "fork")
    net.add_arc("fork", "pa")
    net.add_arc("fork", "pb")
    net.add_arc("pa", "ta")
    net.add_arc("pb", "tb")
    net.add_arc("ta", "pa2")
    net.add_arc("tb", "pb2")
    net.add_arc("pa2", "join")
    net.add_arc("pb2", "join")
    net.add_arc("join", "pend")
    net.add_arc("pend", "loop")
    net.add_arc("loop", "p0")
    return net


class TestNetStructure:
    def test_node_management(self):
        net = simple_cycle()
        assert net.num_places() == 3
        assert net.num_transitions() == 3
        assert net.preset("t0") == frozenset({"p0"})
        assert net.postset("t0") == frozenset({"p1"})
        assert net.is_place("p0") and net.is_transition("t1")

    def test_duplicate_node_names_rejected(self):
        net = PetriNet()
        net.add_place("x")
        with pytest.raises(ValueError):
            net.add_transition("x")

    def test_arc_must_be_bipartite(self):
        net = PetriNet()
        net.add_place("p")
        net.add_place("q")
        with pytest.raises(ValueError):
            net.add_arc("p", "q")

    def test_copy_and_subnet(self):
        net = fork_join()
        clone = net.copy()
        assert set(clone.places) == set(net.places)
        assert clone.initial_marking == net.initial_marking
        sub = net.subnet(["p0", "fork", "pa"])
        assert set(sub.places) == {"p0", "pa"}
        assert sub.preset("fork") == frozenset({"p0"})


class TestFiring:
    def test_enabling_and_firing(self):
        net = simple_cycle()
        marking = net.initial_marking
        assert net.is_enabled("t0", marking)
        assert not net.is_enabled("t1", marking)
        after = net.fire("t0", marking)
        assert after["p1"] == 1 and after["p0"] == 0

    def test_firing_disabled_transition_raises(self):
        net = simple_cycle()
        with pytest.raises(ValueError):
            net.fire("t1", net.initial_marking)

    def test_fire_sequence_and_feasibility(self):
        net = simple_cycle()
        final = net.fire_sequence(["t0", "t1", "t2"])
        assert final == net.initial_marking
        assert net.is_feasible(["t0", "t1"])
        assert not net.is_feasible(["t1"])

    def test_marking_is_hashable_and_compact(self):
        marking = Marking({"p": 1, "q": 0})
        assert "q" not in marking
        assert hash(marking) == hash(Marking(["p"]))


class TestReachability:
    def test_cycle_has_length_many_markings(self):
        graph = build_reachability_graph(simple_cycle(4))
        assert len(graph) == 4
        assert graph.is_strongly_connected()

    def test_fork_join_concurrency(self):
        graph = build_reachability_graph(fork_join())
        pairs = concurrent_pairs_from_rg(graph)
        assert frozenset(("ta", "tb")) in pairs

    def test_marking_limit(self):
        with pytest.raises(StateSpaceLimitExceeded):
            build_reachability_graph(fork_join(), max_markings=2)

    def test_count_matches_graph(self):
        net = fork_join()
        assert count_reachable_markings(net) == len(build_reachability_graph(net))


class TestProperties:
    def test_structural_classes(self):
        cycle = simple_cycle()
        assert is_state_machine(cycle)
        assert is_marked_graph(cycle)
        assert is_free_choice(cycle)
        fj = fork_join()
        assert is_marked_graph(fj)
        assert not is_state_machine(fj)
        assert is_free_choice(fj)

    def test_behavioural_properties(self):
        net = fork_join()
        graph = build_reachability_graph(net)
        assert is_safe(net, graph)
        assert is_live(net, graph)
        assert redundant_places(net, graph) == []
        assert validate_synthesis_preconditions(net, graph) == []

    def test_redundant_place_detected(self):
        net = simple_cycle()
        # a place marked with a token that is never required
        net.add_place("extra", tokens=1)
        net.add_arc("t0", "extra")
        net.add_arc("extra", "t1")
        graph = build_reachability_graph(net)
        # "extra" mirrors p1, so one of them never constrains enabling
        assert "extra" in redundant_places(net, graph) or "p1" in redundant_places(net, graph)

    def test_non_live_net_detected(self):
        net = PetriNet()
        net.add_place("p", tokens=1)
        net.add_place("q")
        net.add_transition("t")
        net.add_arc("p", "t")
        net.add_arc("t", "q")
        graph = build_reachability_graph(net)
        assert not is_live(net, graph)


class TestInvariantsAndSMCover:
    def test_cycle_invariant(self):
        net = simple_cycle()
        invariants = place_invariants(net)
        assert any(set(inv) == {"p0", "p1", "p2"} for inv in invariants)
        for invariant in invariants:
            assert token_count_of_invariant(net, invariant) == 1

    def test_sm_components_of_fork_join(self):
        net = fork_join()
        components = compute_sm_components(net)
        assert components, "a marked graph must have cycle SM-components"
        for component in components:
            assert is_sm_component(net, component.places)
        cover = compute_sm_cover(net, components)
        covered = set()
        for component in cover:
            covered |= component.places
        assert covered == set(net.places)

    def test_sm_cover_of_choice_net(self):
        net = PetriNet("choice")
        net.add_place("p", tokens=1)
        net.add_place("qa")
        net.add_place("qb")
        for t in ["a", "b", "ra", "rb"]:
            net.add_transition(t)
        net.add_arc("p", "a")
        net.add_arc("p", "b")
        net.add_arc("a", "qa")
        net.add_arc("b", "qb")
        net.add_arc("qa", "ra")
        net.add_arc("qb", "rb")
        net.add_arc("ra", "p")
        net.add_arc("rb", "p")
        cover = compute_sm_cover(net)
        covered = set()
        for component in cover:
            covered |= component.places
        assert covered == {"p", "qa", "qb"}


@st.composite
def random_marked_graph(draw):
    """A random strongly connected marked graph made of fused cycles."""
    length = draw(st.integers(min_value=2, max_value=5))
    extra = draw(st.integers(min_value=0, max_value=2))
    net = PetriNet("random_mg")
    for i in range(length):
        net.add_place(f"p{i}", tokens=1 if i == 0 else 0)
        net.add_transition(f"t{i}")
        net.add_arc(f"p{i}", f"t{i}")
    for i in range(length):
        net.add_arc(f"t{i}", f"p{(i + 1) % length}")
    # add chords: extra place from t_i back to t_j's input
    for k in range(extra):
        source = draw(st.integers(min_value=0, max_value=length - 1))
        target = draw(st.integers(min_value=0, max_value=length - 1))
        name = f"chord{k}"
        tokens = 1 if target <= source else 0
        net.add_place(name, tokens=tokens)
        net.add_arc(f"t{source}", name)
        net.add_arc(name, f"t{target}")
    return net


class TestRandomNets:
    @given(random_marked_graph())
    @settings(max_examples=25, deadline=None)
    def test_firing_preserves_token_count_on_cycles(self, net):
        graph = build_reachability_graph(net, max_markings=2000)
        invariants = place_invariants(net)
        initial = net.initial_marking
        for invariant in invariants:
            expected = sum(initial[p] * w for p, w in invariant.items())
            for marking in graph:
                observed = sum(marking[p] * w for p, w in invariant.items())
                assert observed == expected

    @given(random_marked_graph())
    @settings(max_examples=25, deadline=None)
    def test_marked_graphs_are_free_choice(self, net):
        assert is_free_choice(net)
        assert is_marked_graph(net)
