"""Batch throughput of the durable workspace: cold vs. warm store vs. server.

PR 5's claim is architectural: once a spec's artifacts are persisted in the
content-addressed store, every later consumer — a fresh process, a batch
worker, a request against the long-lived daemon — pays (almost) nothing for
the synthesis front-end.  This bench quantifies that by pushing the classic
registry suite through three flavours of the same pipeline:

* **cold store** — empty store, every stage computed and persisted;
* **warm store** — a *fresh* pipeline over the now-populated store: every
  stage resolves from disk (``stage_calls`` is asserted zero);
* **warm server** — the same store behind ``repro serve``, driven through
  :class:`repro.api.client.Client` over HTTP (adds request plumbing and
  report re-serialization on top of the warm-store path).

The rows land in ``BENCH_PR5.json`` as specs/sec plus per-flavour seconds.
"""

from __future__ import annotations

import threading
import time

from repro.api import Pipeline, Spec, SynthesisOptions
from repro.api.client import Client
from repro.api.server import create_server
from repro.benchmarks.classic import classic_names

#: every registry benchmark the suite synthesizes end-to-end in tests
def _suite() -> list[str]:
    names = classic_names(synthesizable_only=True)
    names += ["glatch_3", "glatch_5", "muller_pipeline_2", "philosophers_3"]
    return names


def _run_suite(pipeline: Pipeline, names: list[str]) -> int:
    options = SynthesisOptions(assume_csc=True)
    literals = 0
    for name in names:
        report = pipeline.run(name, options, map_technology=True)
        literals += report.literals
    return literals


def test_store_batch_throughput(benchmark, perf_record, print_table, tmp_path):
    names = _suite()
    store = tmp_path / "store"

    # --- cold: compute + persist everything -------------------------------- #
    start = time.perf_counter()
    cold_pipeline = Pipeline(store=store)
    cold_literals = _run_suite(cold_pipeline, names)
    cold_seconds = time.perf_counter() - start

    # --- warm store: a fresh process-equivalent pipeline -------------------- #
    def warm_run():
        pipeline = Pipeline(store=store)
        literals = _run_suite(pipeline, names)
        return literals, pipeline

    warm_literals, warm_pipeline = benchmark.pedantic(
        warm_run, iterations=1, rounds=1
    )
    start = time.perf_counter()
    warm_run()
    warm_seconds = time.perf_counter() - start

    assert warm_literals == cold_literals
    assert sum(warm_pipeline.stage_calls.values()) == 0, "warm store must compute nothing"

    # --- warm server: the same store behind the HTTP daemon ----------------- #
    server = create_server(port=0, store=store)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        client = Client(f"http://127.0.0.1:{server.server_address[1]}")
        # prime the server's in-memory cache (store-resolved)
        server_literals = 0
        for name in names:
            server_literals += client.synthesize(
                name, assume_csc=True, map_technology=True
            ).report.literals
        start = time.perf_counter()
        for name in names:
            result = client.synthesize(name, assume_csc=True, map_technology=True)
            assert result.cached
        server_seconds = time.perf_counter() - start
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
    assert server_literals == cold_literals

    count = len(names)
    rows = [
        {
            "flavour": "cold store (compute + persist)",
            "seconds": round(cold_seconds, 3),
            "specs_per_s": round(count / cold_seconds, 1) if cold_seconds else None,
        },
        {
            "flavour": "warm store (fresh pipeline, disk hits)",
            "seconds": round(warm_seconds, 3),
            "specs_per_s": round(count / warm_seconds, 1) if warm_seconds else None,
        },
        {
            "flavour": "warm server (HTTP round trips)",
            "seconds": round(server_seconds, 3),
            "specs_per_s": round(count / server_seconds, 1) if server_seconds else None,
        },
    ]
    print_table(rows, title=f"Durable workspace — {count}-spec suite throughput")
    store_stats = warm_pipeline.store.stats()
    perf_record["results"]["store"] = {
        "specs": count,
        "cold_store_s": round(cold_seconds, 4),
        "warm_store_s": round(warm_seconds, 4),
        "warm_server_s": round(server_seconds, 4),
        "cold_specs_per_s": round(count / cold_seconds, 2) if cold_seconds else None,
        "warm_specs_per_s": round(count / warm_seconds, 2) if warm_seconds else None,
        "server_specs_per_s": round(count / server_seconds, 2) if server_seconds else None,
        "warm_vs_cold_speedup": round(cold_seconds / warm_seconds, 2)
        if warm_seconds
        else None,
        "store_entries": store_stats["entries"],
        "store_bytes": store_stats["bytes"],
    }


def test_store_smoke(benchmark, tmp_path):
    """CI smoke case: one spec cold, then warm with zero computations."""
    store = tmp_path / "store"
    options = SynthesisOptions(assume_csc=True)
    Pipeline(store=store).run("sequencer", options, map_technology=True)

    def warm():
        pipeline = Pipeline(store=store)
        report = pipeline.run("sequencer", options, map_technology=True)
        assert sum(pipeline.stage_calls.values()) == 0
        return report.literals

    literals = benchmark.pedantic(warm, iterations=1, rounds=3)
    assert literals > 0
