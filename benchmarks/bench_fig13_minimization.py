"""Fig. 13 — average area across the minimization levels M1..M5 + TM."""

from __future__ import annotations

from repro.benchmarks.classic import classic_names
from repro.experiments.fig13 import fig13_rows


def test_fig13_minimization_progression(benchmark, print_table):
    """Regenerate Fig. 13 over the classic benchmark suite."""
    names = classic_names(synthesizable_only=True)
    rows = benchmark.pedantic(fig13_rows, args=(names,), iterations=1, rounds=1)
    print_table(rows, title="Fig. 13 — average area per minimization level")
    # enabling the minimizations never makes the circuits larger, and the
    # fully minimized point improves on the initial per-region covers
    literals = {row["level"]: row["avg_literals"] for row in rows}
    assert literals["M5"] <= literals["M1"] + 1e-9
    assert literals["M3"] <= literals["M2"] + 1e-9
    assert all(row["avg_area"] > 0 for row in rows)
