"""Corpus & fuzzing-farm throughput plus the k-bounded packed kernel.

PR 7's three performance claims, measured on one machine:

* **generation throughput** — seeded compositional specs per second
  through the idiom/mutation generator including the validity filter
  (every candidate is explored, classified and hash-stabilized);
* **campaign throughput** — full differential check suites per second,
  sequential vs. fanned out over the process-pool scheduler;
* **k-bounded packed kernel** — reachability on unsafe (multi-token)
  nets: the SWAR k-bit field encoding of ``CompiledBoundedNet`` against
  the dict-based ``_reference_build_reachability_graph`` multiset BFS
  that used to be the *only* path for such nets.

The rows land in ``BENCH_PR7.json``.
"""

from __future__ import annotations

import time

from repro.corpus.campaign import CampaignConfig, run_campaign
from repro.corpus.generator import GeneratorConfig, generate_corpus
from repro.corpus.idioms import build_idiom
from repro.petri.reachability import (
    _reference_build_reachability_graph,
    build_reachability_graph,
)
from repro.stg.stg import STG

GEN_CONFIG = GeneratorConfig(max_markings=600)


def _k_bounded_net(cells: int, credit: int):
    """A handshake array whose credit pools force the k-bounded kernel."""
    merged = STG("kbench")
    for index in range(cells):
        component = build_idiom("credit_handshake", f"c{index}_", {"credit": credit})
        for signal, signal_type in component.signals.items():
            merged.add_signal(signal, signal_type)
        for transition in component.transitions:
            merged.add_transition(transition)
        for place in component.places:
            merged.net.add_place(place)
            for target in component.net.postset(place):
                merged.net.add_arc(place, target)
            for source in component.net.preset(place):
                merged.net.add_arc(source, place)
        for place, count in component.initial_marking.items():
            merged.net.set_initial_tokens(place, count)
    return merged.net


def test_corpus_generation_throughput(benchmark, perf_record, print_table):
    count = 150

    def generate():
        return list(generate_corpus(count, seed=42, config=GEN_CONFIG))

    corpus = benchmark.pedantic(generate, iterations=1, rounds=1)
    start = time.perf_counter()
    generate()
    seconds = time.perf_counter() - start

    by_class: dict = {}
    for corpus_spec in corpus:
        by_class[corpus_spec.klass] = by_class.get(corpus_spec.klass, 0) + 1
    consistent = sum(cs.consistent for cs in corpus)

    # --- campaign: the same specs through the full differential suite ---- #
    start = time.perf_counter()
    sequential = run_campaign(
        CampaignConfig(count=count, seed=42, jobs=0, max_markings=600, shrink=False)
    )
    sequential_seconds = time.perf_counter() - start
    assert sequential.ok, [f.to_dict() for f in sequential.findings]

    start = time.perf_counter()
    pooled = run_campaign(
        CampaignConfig(count=count, seed=42, jobs=4, max_markings=600, shrink=False)
    )
    pooled_seconds = time.perf_counter() - start
    assert pooled.digest == sequential.digest

    rows = [
        {
            "stage": "generate (idioms + mutations + validity filter)",
            "seconds": round(seconds, 3),
            "specs_per_s": round(count / seconds, 1),
        },
        {
            "stage": "campaign, sequential (full differential suite)",
            "seconds": round(sequential_seconds, 3),
            "specs_per_s": round(count / sequential_seconds, 1),
        },
        {
            "stage": "campaign, pool scheduler (4 workers)",
            "seconds": round(pooled_seconds, 3),
            "specs_per_s": round(count / pooled_seconds, 1),
        },
    ]
    print_table(rows, title=f"Corpus & fuzzing farm — {count}-spec campaign")
    perf_record["results"]["corpus"] = {
        "specs": count,
        "by_class": dict(sorted(by_class.items())),
        "consistent": consistent,
        "generate_s": round(seconds, 4),
        "generate_specs_per_s": round(count / seconds, 2),
        "campaign_sequential_s": round(sequential_seconds, 4),
        "campaign_sequential_specs_per_s": round(count / sequential_seconds, 2),
        "campaign_pool_s": round(pooled_seconds, 4),
        "campaign_pool_specs_per_s": round(count / pooled_seconds, 2),
        "campaign_pool_speedup": round(sequential_seconds / pooled_seconds, 2)
        if pooled_seconds
        else None,
        "digest": sequential.digest,
    }


def test_bounded_kernel_vs_reference(benchmark, perf_record, print_table):
    """Packed k-bounded exploration vs. the dict-based multiset BFS."""
    cases = [
        ("credit_cells_4x3", _k_bounded_net(4, 3)),
        ("credit_cells_5x3", _k_bounded_net(5, 3)),
        ("credit_cells_6x2", _k_bounded_net(6, 2)),
    ]
    rows = []
    record: dict = {}
    for name, net in cases:
        start = net.initial_marking

        def packed(net=net):
            return build_reachability_graph(net)

        def reference(net=net, start=start):
            return _reference_build_reachability_graph(net, start)

        graph = packed()
        assert graph._compiled is not None, "must run on the packed kernel"
        states = len(graph)

        start_time = time.perf_counter()
        packed()
        packed_seconds = time.perf_counter() - start_time

        start_time = time.perf_counter()
        reference_graph = reference()
        reference_seconds = time.perf_counter() - start_time
        assert len(reference_graph) == states

        rows.append(
            {
                "case": name,
                "states": states,
                "packed_s": round(packed_seconds, 4),
                "reference_s": round(reference_seconds, 4),
                "speedup": round(reference_seconds / packed_seconds, 1)
                if packed_seconds
                else None,
            }
        )
        record[name] = {
            "states": states,
            "packed_s": round(packed_seconds, 5),
            "reference_s": round(reference_seconds, 5),
            "speedup": round(reference_seconds / packed_seconds, 2)
            if packed_seconds
            else None,
        }

    benchmark.pedantic(
        lambda: build_reachability_graph(cases[0][1]), iterations=1, rounds=3
    )
    print_table(rows, title="k-bounded reachability — packed kernel vs. reference")
    perf_record["results"]["bounded_kernel"] = record


def test_corpus_smoke(benchmark):
    """CI smoke case: a tiny campaign must stay clean and deterministic."""

    def campaign():
        report = run_campaign(
            CampaignConfig(
                count=5, seed=7, jobs=0, max_markings=300, shrink=False
            )
        )
        assert report.ok
        return report.digest

    first = benchmark.pedantic(campaign, iterations=1, rounds=1)
    assert campaign() == first
