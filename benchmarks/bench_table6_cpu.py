"""Table VI — CPU time, structural vs. state-based, on large-RG STGs."""

from __future__ import annotations

import time

from repro.benchmarks import scalable
from repro.experiments.table6 import table6_rows
from repro.petri.reachability import count_reachable_markings


def test_table6_cpu_comparison(benchmark, print_table, perf_record):
    """Regenerate Table VI.

    The bit-packed kernel makes the structural flow cheap enough to run the
    wide instances (``independent_cells(60)``, ``muller_pipeline(64)``) in
    the harness; the full sweep including the 10^27-marking instance runs in
    the same code path.
    """
    cases = [
        ("independent_cells_5", lambda: scalable.independent_cells(5), 4 ** 5),
        ("independent_cells_8", lambda: scalable.independent_cells(8), 4 ** 8),
        ("independent_cells_20", lambda: scalable.independent_cells(20), 4 ** 20),
        ("independent_cells_45", lambda: scalable.independent_cells(45), 4 ** 45),
        ("independent_cells_60", lambda: scalable.independent_cells(60), 4 ** 60),
        ("muller_pipeline_8", lambda: scalable.muller_pipeline(8), None),
        ("muller_pipeline_16", lambda: scalable.muller_pipeline(16), None),
        ("muller_pipeline_64", lambda: scalable.muller_pipeline(64), None),
    ]
    rows = benchmark.pedantic(
        table6_rows, args=(cases,), kwargs={"baseline_limit": 50_000},
        iterations=1, rounds=1,
    )
    print_table(rows, title="Table VI — CPU time: structural vs state-based")
    perf_record["results"]["table6"] = rows
    # The structural flow completes on every instance, including the ones
    # whose state space the baseline cannot enumerate.
    assert all(isinstance(row["structural_s"], float) for row in rows)
    blowups = [row for row in rows if row["statebased_s"] == "blow-up"]
    assert blowups, "expected at least one state-based blow-up row"


def test_kernel_marking_count(benchmark, perf_record):
    """Bit-packed BFS over the muller_pipeline(16) state space.

    The seed (dict-based) implementation needed ~8 s for the 131072
    markings (recorded as the baseline in BENCH_PR1.json).  The regression
    guard compares the kernel against the reference implementation measured
    on *this* machine (on the 12-stage instance, to keep the reference run
    short), so the assertion is robust to host speed.
    """
    from repro.petri.reachability import _reference_count_reachable_markings

    net = scalable.muller_pipeline(16).net
    timings: list[float] = []

    def count() -> int:
        start = time.perf_counter()
        markings = count_reachable_markings(net)
        timings.append(time.perf_counter() - start)
        return markings

    markings = benchmark.pedantic(count, iterations=1, rounds=1)
    seconds = timings[-1]
    assert markings == 131072
    perf_record["results"].setdefault("count_reachable_markings_s", {})[
        "muller_pipeline_16"
    ] = round(seconds, 4)
    perf_record["results"].setdefault("count_reachable_markings", {})[
        "muller_pipeline_16"
    ] = markings

    # Same-machine speedup guard on the 12-stage instance.
    small = scalable.muller_pipeline(12).net
    start = time.perf_counter()
    reference_markings = _reference_count_reachable_markings(
        small, small.initial_marking
    )
    reference_seconds = time.perf_counter() - start
    start = time.perf_counter()
    kernel_markings = count_reachable_markings(small)
    kernel_seconds = time.perf_counter() - start
    assert kernel_markings == reference_markings
    speedup = reference_seconds / kernel_seconds if kernel_seconds > 0 else float("inf")
    perf_record["results"]["kernel_vs_reference_muller_12"] = {
        "reference_s": round(reference_seconds, 4),
        "kernel_s": round(kernel_seconds, 4),
        "speedup": round(speedup, 2),
    }
    assert speedup > 3, (
        f"kernel only {speedup:.2f}x faster than the reference BFS "
        f"({kernel_seconds:.3f}s vs {reference_seconds:.3f}s)"
    )
