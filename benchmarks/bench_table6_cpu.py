"""Table VI — CPU time, structural vs. state-based, on large-RG STGs."""

from __future__ import annotations

from repro.benchmarks import scalable
from repro.experiments.table6 import table6_rows


def test_table6_cpu_comparison(benchmark, print_table):
    """Regenerate Table VI (reduced sizes keep the harness fast; the full
    sweep including the 10^27-marking instance runs in the same code path)."""
    cases = [
        ("independent_cells_5", lambda: scalable.independent_cells(5), 4 ** 5),
        ("independent_cells_8", lambda: scalable.independent_cells(8), 4 ** 8),
        ("independent_cells_20", lambda: scalable.independent_cells(20), 4 ** 20),
        ("independent_cells_45", lambda: scalable.independent_cells(45), 4 ** 45),
        ("muller_pipeline_8", lambda: scalable.muller_pipeline(8), None),
        ("muller_pipeline_16", lambda: scalable.muller_pipeline(16), None),
    ]
    rows = benchmark.pedantic(
        table6_rows, args=(cases,), kwargs={"baseline_limit": 50_000},
        iterations=1, rounds=1,
    )
    print_table(rows, title="Table VI — CPU time: structural vs state-based")
    # The structural flow completes on every instance, including the ones
    # whose state space the baseline cannot enumerate.
    assert all(isinstance(row["structural_s"], float) for row in rows)
    blowups = [row for row in rows if row["statebased_s"] == "blow-up"]
    assert blowups, "expected at least one state-based blow-up row"
