"""Table VII — CPU time for the scalable examples (philosophers, pipelines)."""

from __future__ import annotations

from repro.experiments.table7 import table7_rows


def test_table7_scalable_examples(benchmark, print_table, perf_record):
    """Regenerate Table VII (instance sizes raised now that the bit-packed
    kernel carries both flows)."""
    rows = benchmark.pedantic(
        table7_rows,
        kwargs={
            "philosophers": (3, 4, 5),
            "pipelines": (4, 8, 16, 32),
            "baseline_limit": 50_000,
        },
        iterations=1,
        rounds=1,
    )
    print_table(rows, title="Table VII — CPU time: scalable examples")
    perf_record["results"]["table7"] = rows
    structural_times = [row["structural_s"] for row in rows]
    assert all(isinstance(t, float) for t in structural_times)
    # structural synthesis of the largest pipeline stays fast (well under a
    # minute even on modest hardware; the paper reports seconds as well)
    assert max(structural_times) < 60.0
