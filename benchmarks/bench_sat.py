"""Exact SAT synthesis: encode/solve cost and the optimality-gap table.

PR 8's performance story is a *workload*, not a speedup: exact synthesis
is the first open-ended solver load in the batch system.  Two measures:

* **per-spec encode vs. solve seconds** — candidate-cube enumeration +
  CNF construction (`build_encoding` over every signal's set/reset/
  complete problems) against the full CDCL descent (`exact_synthesize`);
* **the optimality-gap table** — the 13-spec registry through
  `experiments.optimality_gap.gap_rows`, pinning `exact ≤ structural`
  and `exact ≤ statebased` with full `compare()` agreement.

The rows land in ``BENCH_PR8.json``.
"""

from __future__ import annotations

import time

from repro.benchmarks.registry import get_benchmark
from repro.experiments.optimality_gap import GAP_SPECS, gap_rows
from repro.sat.encode import build_encoding
from repro.sat.synthesize import _signal_problems, exact_synthesize
from repro.statebased.regions import compute_signal_regions


def _encode_only_seconds(stg) -> tuple[float, int, int]:
    """Candidate enumeration + CNF build time for every signal problem."""
    regions = compute_signal_regions(stg, compute_backward=False)
    start = time.perf_counter()
    candidates = clauses = 0
    for signal in stg.non_input_signals:
        for problem in _signal_problems(regions, signal):
            encoding = build_encoding(
                problem, budget=4096, primes_only=problem.kind == "complete"
            )
            candidates += len(encoding.candidates)
            clauses += len(encoding.clauses)
    return time.perf_counter() - start, candidates, clauses


def test_sat_encode_vs_solve(benchmark, perf_record, print_table):
    """Per-spec cost split: CNF construction vs. CDCL descent."""
    cases = ["fig6", "converter_2to4", "sequencer", "dma_ctrl", "muller_pipeline_2"]

    def run_all():
        return {name: exact_synthesize(get_benchmark(name)) for name in cases}

    results = benchmark.pedantic(run_all, iterations=1, rounds=1)

    rows = []
    record: dict = {}
    for name in cases:
        stg = get_benchmark(name)
        encode_s, candidates, clauses = _encode_only_seconds(stg)
        stats = results[name].statistics
        conflicts = sum(
            phase.get("conflicts", 0)
            for per_signal in stats["signals"].values()
            for phase in per_signal.values()
            if isinstance(phase, dict)
        )
        minima = 1
        for count in stats["minima"].values():
            minima *= max(1, count)
        rows.append(
            {
                "spec": name,
                "signals": len(stg.non_input_signals),
                "candidates": candidates,
                "clauses": clauses,
                "encode_s": round(encode_s, 4),
                "total_s": round(stats["seconds"], 4),
                "conflicts": conflicts,
                "minima": minima,
            }
        )
        record[name] = {
            "encode_s": round(encode_s, 6),
            "total_s": round(stats["seconds"], 6),
            "candidates": candidates,
            "clauses": clauses,
            "conflicts": conflicts,
            "minima": minima,
            "literals": results[name].circuit.literal_count(),
        }
    print_table(rows, title="Exact synthesis — encode vs. solve cost")
    perf_record["results"].setdefault("sat", {})["encode_solve"] = record


def test_sat_optimality_gap_table(benchmark, perf_record, print_table):
    """The 13-spec gap table; soundness and agreement are hard asserts."""
    rows = benchmark.pedantic(
        lambda: gap_rows(names=list(GAP_SPECS)), iterations=1, rounds=1
    )
    solved = [row for row in rows if row["status"] == "ok"]
    assert solved, "no spec solved within budget"
    assert all(row["sound"] for row in solved), rows
    assert all(row["matching"] for row in solved), rows
    print_table(
        [
            {
                key: row.get(key)
                for key in (
                    "spec",
                    "status",
                    "structural_lits",
                    "statebased_lits",
                    "exact_lits",
                    "gap_lits",
                    "minima",
                    "seconds",
                )
            }
            for row in rows
        ],
        title="Optimality gap — structural / state-based / exact minima",
    )
    total = rows[-1]
    perf_record["results"].setdefault("sat", {})["gap_table"] = {
        "rows": rows,
        "specs": len(rows) - 1,
        "solved": len(solved),
        "structural_lits": total["structural_lits"],
        "statebased_lits": total["statebased_lits"],
        "exact_lits": total["exact_lits"],
        "gap_lits": total["gap_lits"],
    }


def test_sat_smoke(benchmark):
    """CI smoke case: one small spec, exact and agreeing, in milliseconds."""
    from repro.api import Pipeline, SynthesisOptions, compare
    from repro.api.spec import Spec

    def run():
        pipeline = Pipeline()
        spec = Spec.from_benchmark("fig6")
        options = SynthesisOptions(assume_csc=True)
        exact = pipeline.synthesize(spec, options, backend="sat")
        report = compare(
            spec, options, pipeline=pipeline, backends=("statebased", "sat")
        )
        return exact, report

    exact, report = benchmark.pedantic(run, iterations=1, rounds=3)
    assert report.matching
    assert exact.details["exact"] is True
    assert exact.literals <= report.structural.synthesis.literals


def test_sat_pysat_vs_cdcl(benchmark, perf_record, print_table):
    """Backend comparison: the in-tree CDCL against pysat's Minisat.

    Skips cleanly when the optional ``python-sat`` extra is absent (the
    default image); with it installed the table pins that both backends
    reach the *same* literal minima — the backend is a speed knob, never a
    quality knob — and records the per-spec wall-clock split.
    """
    from repro.sat.solver import pysat_available

    if not pysat_available():
        import pytest

        pytest.skip("python-sat not installed; CDCL-only environment")

    cases = ["fig6", "converter_2to4", "sequencer", "dma_ctrl"]

    def run_both():
        out = {}
        for name in cases:
            stg = get_benchmark(name)
            started = time.perf_counter()
            cdcl = exact_synthesize(stg, prefer="cdcl")
            cdcl_s = time.perf_counter() - started
            started = time.perf_counter()
            ps = exact_synthesize(stg, prefer="pysat")
            pysat_s = time.perf_counter() - started
            out[name] = (cdcl, cdcl_s, ps, pysat_s)
        return out

    results = benchmark.pedantic(run_both, iterations=1, rounds=1)

    rows = []
    record: dict = {}
    for name in cases:
        cdcl, cdcl_s, ps, pysat_s = results[name]
        cdcl_lits = cdcl.circuit.literal_count()
        pysat_lits = ps.circuit.literal_count()
        # both backends descend to the same proven minimum
        assert cdcl_lits == pysat_lits, name
        rows.append(
            {
                "spec": name,
                "cdcl_s": round(cdcl_s, 4),
                "pysat_s": round(pysat_s, 4),
                "speedup": round(cdcl_s / pysat_s, 2) if pysat_s else None,
                "literals": cdcl_lits,
            }
        )
        record[name] = {
            "cdcl_s": round(cdcl_s, 6),
            "pysat_s": round(pysat_s, 6),
            "literals": cdcl_lits,
        }
    print_table(rows, title="Exact synthesis — CDCL vs. pysat backend")
    perf_record["results"].setdefault("sat", {})["pysat_vs_cdcl"] = record
