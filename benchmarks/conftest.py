"""Shared helpers for the benchmark harness.

Every bench module regenerates one table or figure of the paper's evaluation
section; the resulting rows are printed so that running

    pytest benchmarks/ --benchmark-only -s

produces the reproduced tables alongside the timing numbers.  Bench modules
also push their rows into the session-scoped ``perf_record`` fixture, which
is persisted as ``BENCH_PR10.json`` at the repo root when the session ends —
the machine-readable perf trajectory consumed by later PRs (``BENCH_PR1``
recorded the bit-packed kernel; PR2 the cached-pipeline sweep of the
unified API; PR3 gate-netlist construction and gate-level differential
verification; PR4 the compiled state-based engine and bit-parallel mapped
verification; PR5 the durable-workspace batch throughput from
``bench_store.py``; PR7 the corpus generator / fuzzing-farm throughput and
the k-bounded packed reachability kernel from ``bench_corpus.py``; PR8 the
exact SAT backend's encode/solve costs and the optimality-gap table from
``bench_sat.py``; PR9 the prefork serving fleet's saturation throughput,
tail latency and thundering-herd coalescing from ``bench_fleet.py``; PR10
the observability subsystem's serving-overhead budget from
``bench_obs.py``).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.reporting import format_table, write_perf_record

#: Timings of the seed (pre-kernel, dict-based) implementation, measured on
#: the same cases the bench modules run, so BENCH_PR1.json carries
#: before/after numbers for the bit-packed kernel in a single record.
SEED_BASELINE = {
    "count_reachable_markings_s": {"muller_pipeline_16": 7.971},
    "table6_structural_s": {
        "independent_cells_5": 0.007,
        "independent_cells_8": 0.012,
        "independent_cells_20": 0.066,
        "independent_cells_45": 0.506,
        "muller_pipeline_8": 0.055,
        "muller_pipeline_16": 0.392,
        "total": 1.038,
    },
}

#: PR 3 record (BENCH_PR3.json, same machine): the dict-based state-based
#: columns of Table VI and the per-code event-simulation verification
#: throughput the compiled state-based engine (PR 4) is measured against.
PR3_BASELINE = {
    "table6_statebased_s": {
        "independent_cells_5": 10.432,
        "muller_pipeline_8": 2.051,
        "total": 12.483,
    },
    "verify_mapped_codes_per_s": 25876,
}


@pytest.fixture(scope="session")
def print_table():
    """Print a reproduced table (always emitted, even without ``-s``,
    via the terminal reporter at the end of the run)."""
    emitted: list[str] = []

    def _print(rows, columns=None, title=None):
        text = format_table(rows, columns=columns, title=title)
        emitted.append(text)
        print("\n" + text)
        return text

    yield _print


#: results keys every full benchmark session produces; the record is only
#: persisted when all of them are present.
_REQUIRED_SECTIONS = (
    "table6",
    "table7",
    "count_reachable_markings_s",
    "fig13_pipeline",
    "mapping",
    "statebased",
    "store",
    "corpus",
    "bounded_kernel",
    "sat",
    "fleet",
    "obs",
)


@pytest.fixture(scope="session")
def perf_record(request):
    """Session-wide perf record, persisted as BENCH_PR10.json on teardown."""
    record: dict = {
        "pr": 10,
        "kernel": (
            "repro.obs: end-to-end observability — cross-process distributed "
            "tracing over X-Repro-Trace, an exactly-mergeable fleet metrics "
            "registry with Prometheus /metrics exposition, and the repro top "
            "dashboard — at near-zero serving overhead when off"
        ),
        "seed_baseline": SEED_BASELINE,
        "pr3_baseline": PR3_BASELINE,
        "results": {},
    }
    yield record
    # Only persist complete, passing runs: a partial invocation (single
    # module, -k, aborted session) or a failing session must not clobber the
    # committed perf trajectory with an incomplete or unrepresentative record.
    if any(key not in record["results"] for key in _REQUIRED_SECTIONS):
        return
    if request.session.testsfailed:
        return
    repo_root = Path(__file__).resolve().parent.parent
    # Derive headline speedups for the cases that have a seed counterpart.
    table6 = record["results"].get("table6", [])
    structural = {
        row["benchmark"]: row["structural_s"]
        for row in table6
        if isinstance(row.get("structural_s"), float)
    }
    seed = SEED_BASELINE["table6_structural_s"]
    shared = [name for name in structural if name in seed and name != "total"]
    speedups = {
        name: round(seed[name] / structural[name], 2)
        for name in shared
        if structural[name] > 0
    }
    if shared:
        seed_total = sum(seed[name] for name in shared)
        new_total = sum(structural[name] for name in shared)
        if new_total > 0:
            speedups["table6_structural_total"] = round(seed_total / new_total, 2)
    count = record["results"].get("count_reachable_markings_s", {})
    for name, seconds in count.items():
        baseline = SEED_BASELINE["count_reachable_markings_s"].get(name)
        if baseline and seconds > 0:
            speedups[f"count_reachable_markings:{name}"] = round(baseline / seconds, 2)
    pipeline = record["results"].get("fig13_pipeline", {})
    if pipeline.get("speedup"):
        speedups["fig13_sweep_cached_pipeline"] = pipeline["speedup"]
    record["speedup_vs_seed"] = speedups
    statebased = record["results"].get("statebased", {})
    speedups_pr3 = {}
    synthesis = statebased.get("synthesis", {})
    if synthesis.get("speedup_vs_pr3"):
        speedups_pr3["table6_statebased_total"] = synthesis["speedup_vs_pr3"]
    verification = statebased.get("mapped_verification", {})
    if verification.get("speedup_vs_pr3"):
        speedups_pr3["verify_mapped_throughput"] = verification["speedup_vs_pr3"]
    record["speedup_vs_pr3"] = speedups_pr3
    store_results = record["results"].get("store", {})
    if store_results.get("warm_vs_cold_speedup"):
        record["store_throughput"] = {
            "warm_vs_cold_speedup": store_results["warm_vs_cold_speedup"],
            "warm_specs_per_s": store_results.get("warm_specs_per_s"),
            "server_specs_per_s": store_results.get("server_specs_per_s"),
        }
    corpus_results = record["results"].get("corpus", {})
    if corpus_results:
        record["corpus_throughput"] = {
            "generate_specs_per_s": corpus_results.get("generate_specs_per_s"),
            "campaign_sequential_specs_per_s": corpus_results.get(
                "campaign_sequential_specs_per_s"
            ),
            "campaign_pool_specs_per_s": corpus_results.get(
                "campaign_pool_specs_per_s"
            ),
            "campaign_pool_speedup": corpus_results.get("campaign_pool_speedup"),
        }
    bounded = record["results"].get("bounded_kernel", {})
    if bounded:
        record["bounded_kernel_speedup_vs_reference"] = {
            name: data.get("speedup") for name, data in bounded.items()
        }
    sat_results = record["results"].get("sat", {})
    gap = sat_results.get("gap_table", {})
    if gap:
        record["optimality_gap"] = {
            "solved": gap.get("solved"),
            "specs": gap.get("specs"),
            "structural_lits": gap.get("structural_lits"),
            "statebased_lits": gap.get("statebased_lits"),
            "exact_lits": gap.get("exact_lits"),
            "gap_lits": gap.get("gap_lits"),
        }
    fleet_results = record["results"].get("fleet", {})
    if fleet_results:
        record["fleet_serving"] = {
            "cores": fleet_results.get("cores"),
            "best_req_per_s": fleet_results.get("best_req_per_s"),
            "vs_pr5_server": fleet_results.get("vs_pr5_server"),
            "p99_ms": {
                workers: row.get("p99_ms")
                for workers, row in fleet_results.get("saturation", {}).items()
            },
            "herd_coalescing_hit_rate": fleet_results.get("herd", {}).get(
                "coalescing_hit_rate"
            ),
        }
    obs_results = record["results"].get("obs", {})
    if obs_results:
        record["observability_overhead"] = {
            "off_req_per_s": obs_results.get("off_req_per_s"),
            "on_req_per_s": obs_results.get("on_req_per_s"),
            "on_over_off": obs_results.get("on_over_off"),
        }
    write_perf_record(repo_root / "BENCH_PR10.json", record)
