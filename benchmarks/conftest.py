"""Shared helpers for the benchmark harness.

Every bench module regenerates one table or figure of the paper's evaluation
section; the resulting rows are printed so that running

    pytest benchmarks/ --benchmark-only -s

produces the reproduced tables alongside the timing numbers.
"""

from __future__ import annotations

import pytest

from repro.experiments.reporting import format_table


@pytest.fixture(scope="session")
def print_table():
    """Print a reproduced table (always emitted, even without ``-s``,
    via the terminal reporter at the end of the run)."""
    emitted: list[str] = []

    def _print(rows, columns=None, title=None):
        text = format_table(rows, columns=columns, title=title)
        emitted.append(text)
        print("\n" + text)
        return text

    yield _print
