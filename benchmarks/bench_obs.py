"""Serving overhead of the observability subsystem (obs off vs. on).

``repro.obs`` promises the :mod:`repro.api.faults` deal: when off, every
layer holds ``None`` and pays one ``is None`` check per operation; when on,
counters are dict increments, histograms a bucket scan, and spans one JSONL
append per request.  This bench prices that promise on the steady-state
serving workload — warm ``/synthesize`` requests against one in-process
server — measured twice under identical concurrent load:

* **off** — ``create_server(...)`` with no obs (the default);
* **on**  — the full bundle: metrics + request spans + a JSONL trace sink
  and snapshot directory on disk.

Both req/s numbers and their ratio land in ``BENCH_PR10.json``
(``results.obs``); the acceptance budget is ≤5% cost, asserted here with
slack for noisy shared runners (the recorded ratio carries the real
number).
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request
from contextlib import contextmanager

from repro.api import Pipeline, SynthesisOptions
from repro.api.server import create_server
from repro.benchmarks.classic import classic_names
from repro.obs import Obs
from repro.obs.expose import parse_prometheus
from repro.obs.trace import list_traces

OPTIONS = SynthesisOptions(assume_csc=True)


def _suite() -> list[str]:
    names = classic_names(synthesizable_only=True)
    names += ["glatch_3", "glatch_5", "muller_pipeline_2", "philosophers_3"]
    return names


def _post(port: int, path: str, payload: dict, timeout: float = 60.0) -> dict:
    data = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=data,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


@contextmanager
def _served(store, obs=None):
    server = create_server(port=0, store=store, obs=obs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server.server_address[1]
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def _hammer(port: int, names: list[str], threads: int, duration: float) -> float:
    """Warm ``/synthesize`` load; returns achieved requests per second."""
    counts = [0] * threads
    errors: list[str] = []
    barrier = threading.Barrier(threads + 1)

    def worker(slot: int) -> None:
        barrier.wait()
        deadline = time.perf_counter() + duration
        step = 0
        while time.perf_counter() < deadline:
            name = names[(slot + step) % len(names)]
            try:
                payload = _post(port, "/synthesize", {"spec": name, "assume_csc": True})
                assert "report" in payload
            except Exception as error:  # noqa: BLE001 — a loss fails the bench
                errors.append(f"{name}: {type(error).__name__}: {error}")
                return
            counts[slot] += 1
            step += 1

    pool = [threading.Thread(target=worker, args=(i,)) for i in range(threads)]
    for thread in pool:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in pool:
        thread.join()
    elapsed = time.perf_counter() - started
    assert errors == [], errors[:5]
    return sum(counts) / elapsed


def test_obs_serving_overhead(benchmark, perf_record, print_table, tmp_path):
    """Warm req/s with observability off vs. fully on (≤5% budget)."""
    names = _suite()
    store = tmp_path / "store"
    pipeline = Pipeline(store=store)
    for name in names:  # prewarm once: both measurements serve cache hits
        pipeline.run(name, OPTIONS)

    concurrency = 4
    duration = 1.2
    rounds = 4

    def measure(obs) -> float:
        with _served(store, obs=obs) as port:
            for name in names:  # connection + memory-cache warmup round
                _post(port, "/synthesize", {"spec": name, "assume_csc": True})
            return _hammer(port, names, concurrency, duration)

    # interleave off/on measurements — flipping which mode goes first each
    # round — and keep each mode's best: machine drift over the session
    # (and any warmup ordering bias) would otherwise dwarf the per-request
    # cost being priced
    run_dir = tmp_path / "run"
    on_obs = Obs(dir=run_dir, service="bench")
    off_samples: list[float] = []
    on_samples: list[float] = []

    def one_round(off_first: bool) -> None:
        if off_first:
            off_samples.append(measure(None))
            on_samples.append(measure(on_obs))
        else:
            on_samples.append(measure(on_obs))
            off_samples.append(measure(None))

    benchmark.pedantic(one_round, args=(True,), iterations=1, rounds=1)
    for index in range(1, rounds):
        one_round(off_first=index % 2 == 0)
    off_rps = max(off_samples)
    on_rps = max(on_samples)

    # the on-run really recorded: per-request spans hit the sink and the
    # request counters grew with the load
    assert list_traces(run_dir), "obs-on run produced no trace records"
    scraped = parse_prometheus(on_obs.render_metrics())
    synthesized = sum(
        value
        for labels, value in scraped["repro_requests_total"].items()
        if dict(labels).get("endpoint") == "synthesize"
    )
    assert synthesized >= len(names)

    ratio = on_rps / off_rps if off_rps else 0.0
    print_table(
        [
            {"obs": "off", "req_per_s": round(off_rps, 1), "vs_off": 1.0},
            {
                "obs": "on (metrics + traces)",
                "req_per_s": round(on_rps, 1),
                "vs_off": round(ratio, 3),
            },
        ],
        title="Observability overhead — warm /synthesize throughput",
    )
    perf_record["results"]["obs"] = {
        "off_req_per_s": round(off_rps, 1),
        "on_req_per_s": round(on_rps, 1),
        "on_over_off": round(ratio, 4),
        "concurrency": concurrency,
        "budget": "on >= 0.95 * off (asserted at 0.80 for runner noise)",
    }
    # the acceptance budget is 5%; assert with slack so a noisy shared
    # runner cannot flake the suite — the recorded ratio is the real number
    assert ratio >= 0.80, f"observability cost too high: on/off = {ratio:.3f}"


def test_obs_smoke(benchmark, tmp_path):
    """CI smoke case: scrape ``/metrics``, stitch one trace, in milliseconds."""
    from repro.api.client import Client

    store = tmp_path / "store"
    Pipeline(store=store).run("sequencer", OPTIONS)
    run_dir = tmp_path / "run"

    def run():
        obs = Obs(dir=run_dir, service="server")
        with _served(store, obs=obs) as port:
            client = Client(
                f"http://127.0.0.1:{port}", obs=Obs(dir=run_dir, service="client")
            )
            client.synthesize("sequencer", assume_csc=True)
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics", timeout=10
            ) as response:
                return parse_prometheus(response.read().decode("utf-8"))

    families = benchmark.pedantic(run, iterations=1, rounds=3)
    assert "repro_requests_total" in families
    assert "repro_request_seconds_bucket" in families
    stitched = [
        t for t in list_traces(run_dir) if t["root"] == "client:POST /synthesize"
    ]
    assert stitched and "client" in stitched[0]["services"]
