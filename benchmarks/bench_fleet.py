"""Saturation throughput, tail latency and coalescing of the serving fleet.

PR 5 measured the single-process daemon at ~530-650 warm requests/s and
called the `ThreadingHTTPServer` the bottleneck; PR 9's fleet preforks N
``SO_REUSEPORT`` workers over one shared store to convert cores into
throughput.  This bench drives the *real* fleet (supervisor + worker
subprocesses, the same path ``repro serve --workers N`` takes) and records:

* **saturation** — achieved requests/s plus p50/p99 latency for warm
  ``/synthesize`` requests at 1, 2 and N workers under a fixed concurrent
  load (the PR 5 comparable is ``server_specs_per_s`` in ``BENCH_PR5``);
* **thundering herd** — K concurrent cold requests for one uncached spec:
  fleet-wide single-flight coalescing must compute it exactly once, and
  the recorded *coalescing hit rate* is the fraction of herd requests that
  were served without recomputing.

The box's core count is recorded alongside: on a single-core runner the
prefork fleet cannot exceed one core's worth of work, so the 1→N scaling
column is flat there by construction — the scaling claim is per-core, the
zero-loss robustness claims (chaos suite, CI smoke) hold regardless.
"""

from __future__ import annotations

import io
import json
import os
import threading
import time
import urllib.request
from contextlib import contextmanager

from repro.api import Pipeline, SynthesisOptions
from repro.api.fleet import FleetConfig, FleetSupervisor
from repro.benchmarks.classic import classic_names

OPTIONS = SynthesisOptions(assume_csc=True)

#: the 13-spec warm workload (the same suite bench_store.py measures)
def _suite() -> list[str]:
    names = classic_names(synthesizable_only=True)
    names += ["glatch_3", "glatch_5", "muller_pipeline_2", "philosophers_3"]
    return names


def _post(port: int, path: str, payload: dict, timeout: float = 60.0) -> dict:
    data = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=data,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def _get(port: int, path: str, timeout: float = 10.0) -> dict:
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=timeout
    ) as response:
        return json.loads(response.read().decode("utf-8"))


@contextmanager
def _fleet(store, run_dir, workers: int):
    config = FleetConfig(
        port=0, workers=workers, store=str(store), run_dir=str(run_dir)
    )
    supervisor = FleetSupervisor(config, log_stream=io.StringIO())
    supervisor.start()
    stop = threading.Event()

    def supervise() -> None:
        while not stop.is_set():
            supervisor.poll()
            stop.wait(0.1)

    thread = threading.Thread(target=supervise, daemon=True)
    thread.start()
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        try:
            _get(supervisor.port, "/health", timeout=2)
            break
        except OSError:
            time.sleep(0.05)
    try:
        yield supervisor
    finally:
        stop.set()
        thread.join(timeout=5)
        supervisor.stop()


def _percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _saturate(
    port: int, names: list[str], threads: int, duration: float
) -> tuple[int, float, list[float]]:
    """Drive warm ``/synthesize`` load; returns (requests, seconds, latencies)."""
    latencies: list[list[float]] = [[] for _ in range(threads)]
    errors: list[str] = []
    barrier = threading.Barrier(threads + 1)

    def hammer(slot: int) -> None:
        barrier.wait()
        deadline = time.perf_counter() + duration
        step = 0
        while time.perf_counter() < deadline:
            name = names[(slot + step) % len(names)]
            started = time.perf_counter()
            try:
                payload = _post(port, "/synthesize", {"spec": name, "assume_csc": True})
                assert "report" in payload
            except Exception as error:  # noqa: BLE001 — a loss fails the bench
                errors.append(f"{name}: {type(error).__name__}: {error}")
                return
            latencies[slot].append(time.perf_counter() - started)
            step += 1

    workers = [threading.Thread(target=hammer, args=(i,)) for i in range(threads)]
    for worker in workers:
        worker.start()
    barrier.wait()
    started = time.perf_counter()
    for worker in workers:
        worker.join()
    elapsed = time.perf_counter() - started
    assert errors == [], errors[:5]
    flat = [sample for bucket in latencies for sample in bucket]
    return len(flat), elapsed, flat


def test_fleet_saturation_throughput(benchmark, perf_record, print_table, tmp_path):
    names = _suite()
    store = tmp_path / "store"
    # prewarm the shared store once: the fleet then serves store/LRU hits,
    # which is the steady-state serving workload
    pipeline = Pipeline(store=store)
    for name in names:
        pipeline.run(name, OPTIONS)

    cores = os.cpu_count() or 1
    top = max(4, min(8, cores))
    concurrency = 6
    duration = 1.5
    rows = []
    by_workers: dict[str, dict] = {}
    for workers in (1, 2, top):
        with _fleet(store, tmp_path / f"run{workers}", workers) as supervisor:
            port = supervisor.port
            for name in names:  # connection/cache warmup round
                _post(port, "/synthesize", {"spec": name, "assume_csc": True})

            def measured():
                return _saturate(port, names, concurrency, duration)

            count, elapsed, latencies = (
                benchmark.pedantic(measured, iterations=1, rounds=1)
                if workers == 1
                else measured()
            )
            assert supervisor.respawns == 0  # clean run: no crashes hidden
        row = {
            "workers": workers,
            "requests": count,
            "req_per_s": round(count / elapsed, 1),
            "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 2),
            "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 2),
        }
        rows.append(row)
        by_workers[str(workers)] = row
    print_table(
        rows,
        title=(
            f"Fleet saturation — warm /synthesize, {concurrency} concurrent "
            f"clients, {cores} core(s)"
        ),
    )

    # ------------------------------------------------------------------ #
    # Thundering herd: K cold requests for one spec, one computation
    # ------------------------------------------------------------------ #
    herd_size = 12
    herd_store = tmp_path / "herd-store"
    with _fleet(herd_store, tmp_path / "run-herd", top) as supervisor:
        port = supervisor.port
        _get(port, "/health")
        resolutions: list[dict] = []
        barrier = threading.Barrier(herd_size)

        def stampede() -> None:
            barrier.wait()
            payload = _post(
                port, "/synthesize", {"spec": "philosophers_3", "assume_csc": True}
            )
            resolutions.append(payload["resolution"])

        herd = [threading.Thread(target=stampede) for _ in range(herd_size)]
        started = time.perf_counter()
        for thread in herd:
            thread.start()
        for thread in herd:
            thread.join(timeout=120)
        herd_seconds = time.perf_counter() - started
        # fleet-wide single flight: the cold spec was computed once; every
        # other herd member coalesced onto that computation (allow one
        # degraded straggler — a follower whose wait deadline passed)
        computed = sum(1 for r in resolutions if r.get("computed", 0) > 0)
        coalesced = sum(1 for r in resolutions if r.get("coalesced", 0) > 0)
        assert len(resolutions) == herd_size
        assert computed <= 2, resolutions
    hit_rate = 1.0 - computed / herd_size
    herd_rows = [
        {
            "herd": herd_size,
            "computed": computed,
            "coalesced_requests": coalesced,
            "hit_rate": round(hit_rate, 3),
            "seconds": round(herd_seconds, 3),
        }
    ]
    print_table(
        herd_rows, title="Thundering herd — one cold spec, fleet-wide coalescing"
    )

    best = max(row["req_per_s"] for row in rows)
    pr5_server = 650.71  # BENCH_PR5/PR8 store section: server_specs_per_s
    perf_record["results"]["fleet"] = {
        "cores": cores,
        "concurrency": concurrency,
        "duration_s": duration,
        "saturation": by_workers,
        "best_req_per_s": best,
        "pr5_server_req_per_s": pr5_server,
        "vs_pr5_server": round(best / pr5_server, 2),
        "herd": {
            "size": herd_size,
            "computed_requests": computed,
            "coalesced_requests": coalesced,
            "coalescing_hit_rate": round(hit_rate, 3),
            "seconds": round(herd_seconds, 4),
        },
    }


def test_fleet_smoke(benchmark, tmp_path):
    """CI smoke case: a 1-worker fleet answers a request end-to-end."""
    store = tmp_path / "store"
    Pipeline(store=store).run("sequencer", OPTIONS)

    def serve_once():
        with _fleet(store, tmp_path / "run", 1) as supervisor:
            payload = _post(
                supervisor.port, "/synthesize", {"spec": "sequencer", "assume_csc": True}
            )
            assert payload["resolution"]["computed"] == 0
            return payload["report"]["synthesize"]["literals"]

    literals = benchmark.pedantic(serve_once, iterations=1, rounds=1)
    assert literals > 0
