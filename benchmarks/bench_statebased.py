"""Compiled state-based engine: synthesis CPU time and verification throughput.

PR 4 ported the state-based back end onto machine integers: packed int codes
computed during the BFS, bitset regions, mask-based USC/CSC grouping,
orthogonal-complement dc-sets, and a bit-parallel straight-line evaluator
for mapped gate netlists.  This bench records what the port is worth:

* the Table VI state-based columns (the enumerable registry cases) against
  the PR 3 record of the same runs;
* a same-machine oracle comparison (compiled chain vs. the retained
  ``_reference_*`` dict implementations) so the speedup is auditable
  independent of historical wall-clock;
* registry-wide ``verify_mapped_netlist`` throughput in codes/second
  against the PR 3 differential-verification record.

The rows land in ``BENCH_PR4.json`` under ``statebased``.
"""

from __future__ import annotations

import time

from repro.api import Pipeline, Spec, SynthesisOptions
from repro.gates.verify import (
    _reference_verify_mapped_netlist,
    verify_mapped_netlist,
)
from repro.petri.reachability import build_reachability_graph
from repro.statebased.coding import (
    _reference_analyze_state_coding,
    analyze_state_coding,
)
from repro.statebased.regions import (
    _reference_signal_region_sets,
    compute_signal_regions,
)
from repro.stg.encoding import (
    _reference_encode_reachability_graph,
    encode_reachability_graph,
)
from repro.statebased.synthesis import synthesize_state_based
from repro.synthesis import map_circuit

#: specs small enough for exhaustive gate-level differential simulation
VERIFY_CASES = (
    ("glatch_5", 2),
    ("muller_pipeline_8", 3),
    ("philosophers_5", 3),
    ("independent_cells_5", 3),
)


def test_statebased_synthesis_cpu(benchmark, print_table, perf_record):
    """Table VI state-based columns on the compiled engine vs. PR 3.

    The PR 3 record (same machine, same cases, same
    ``pipeline.run(..., backend="statebased")`` methodology) is the
    ``pr3_baseline`` the perf-record fixture carries.
    """
    baseline = {
        name: seconds
        for name, seconds in perf_record["pr3_baseline"]["table6_statebased_s"].items()
        if name != "total"
    }

    def run_all() -> list[dict]:
        rows = []
        for name in baseline:
            spec = Spec.from_benchmark(name)
            pipeline = Pipeline()
            start = time.perf_counter()
            report = pipeline.run(
                spec,
                SynthesisOptions(level=3),
                backend="statebased",
                max_markings=200_000,
            )
            seconds = time.perf_counter() - start
            rows.append(
                {
                    "benchmark": name,
                    "markings": report.synthesis.markings,
                    "statebased_s": round(seconds, 4),
                    "pr3_statebased_s": baseline[name],
                    "speedup_vs_pr3": round(baseline[name] / seconds, 1),
                    "literals": report.literals,
                }
            )
        return rows

    rows = benchmark.pedantic(run_all, iterations=1, rounds=1)
    print_table(rows, title="State-based synthesis — compiled engine vs PR 3")
    total = sum(row["statebased_s"] for row in rows)
    pr3_total = sum(baseline.values())
    record = perf_record["results"].setdefault("statebased", {})
    record["synthesis"] = {
        "cases": rows,
        "total_s": round(total, 4),
        "pr3_total_s": pr3_total,
        "speedup_vs_pr3": round(pr3_total / total, 1),
    }
    assert total > 0
    assert pr3_total / total >= 5, (
        f"state-based synthesis total only {pr3_total / total:.1f}x faster "
        f"than the PR 3 record ({total:.3f}s vs {pr3_total:.3f}s)"
    )


def test_statebased_oracle_comparison(benchmark, perf_record):
    """Same-machine compiled-vs-reference chain (encode + regions + coding)."""
    stg = Spec.from_benchmark("muller_pipeline_8").stg
    graph = build_reachability_graph(stg.net)

    def compiled_chain():
        encoded = encode_reachability_graph(stg, graph)
        regions = compute_signal_regions(stg, encoded)
        analyze_state_coding(stg, encoded)
        return regions

    def reference_chain():
        encoded = _reference_encode_reachability_graph(stg, graph)
        _reference_signal_region_sets(stg, encoded)
        _reference_analyze_state_coding(stg, encoded)
        return encoded

    start = time.perf_counter()
    reference_chain()
    reference_seconds = time.perf_counter() - start

    timings: list[float] = []

    def run() -> None:
        start = time.perf_counter()
        compiled_chain()
        timings.append(time.perf_counter() - start)

    benchmark.pedantic(run, iterations=1, rounds=1)
    compiled_seconds = timings[-1]
    speedup = (
        reference_seconds / compiled_seconds if compiled_seconds > 0 else float("inf")
    )
    record = perf_record["results"].setdefault("statebased", {})
    record["oracle_vs_compiled_muller_8"] = {
        "reference_s": round(reference_seconds, 4),
        "compiled_s": round(compiled_seconds, 4),
        "speedup": round(speedup, 1),
    }
    assert speedup > 3, (
        f"compiled chain only {speedup:.2f}x faster than the reference "
        f"({compiled_seconds:.3f}s vs {reference_seconds:.3f}s)"
    )


def test_mapped_verification_throughput(benchmark, print_table, perf_record):
    """Registry-wide gate-level differential verification in codes/second."""
    pipeline = Pipeline()
    prepared = []
    for name, level in VERIFY_CASES:
        spec = Spec.from_benchmark(name)
        options = SynthesisOptions(level=level, assume_csc=True)
        circuit = pipeline.synthesize(spec, options).circuit
        prepared.append((spec, circuit, map_circuit(circuit).netlist))

    def run_all() -> list[dict]:
        rows = []
        for spec, circuit, netlist in prepared:
            # best of 3: the first run after the synthesis benches tends to
            # absorb a GC pause, which would misstate the steady-state cost
            seconds = float("inf")
            for _ in range(3):
                start = time.perf_counter()
                report = verify_mapped_netlist(spec.stg, circuit, netlist)
                seconds = min(seconds, time.perf_counter() - start)
            assert report.equivalent, (spec.name, report.mismatches[:3])
            rows.append(
                {
                    "benchmark": spec.name,
                    "codes": report.checked_codes,
                    "verify_mapped_s": round(seconds, 5),
                    "codes_per_s": round(report.checked_codes / seconds),
                }
            )
        return rows

    rows = benchmark.pedantic(run_all, iterations=1, rounds=1)
    # same-machine reference leg (event-driven per-code simulation)
    reference_seconds = 0.0
    for spec, circuit, netlist in prepared:
        start = time.perf_counter()
        reference = _reference_verify_mapped_netlist(spec.stg, circuit, netlist)
        reference_seconds += time.perf_counter() - start
        assert reference.equivalent

    print_table(rows, title="Mapped-netlist differential verification (bit-parallel)")
    total_codes = sum(row["codes"] for row in rows)
    total_seconds = sum(row["verify_mapped_s"] for row in rows)
    throughput = total_codes / total_seconds
    pr3_throughput = perf_record["pr3_baseline"]["verify_mapped_codes_per_s"]
    record = perf_record["results"].setdefault("statebased", {})
    record["mapped_verification"] = {
        "cases": rows,
        "codes": total_codes,
        "total_s": round(total_seconds, 5),
        "codes_per_s": round(throughput),
        "pr3_codes_per_s": round(pr3_throughput),
        "speedup_vs_pr3": round(throughput / pr3_throughput, 1),
        "reference_s": round(reference_seconds, 5),
        "reference_codes_per_s": round(total_codes / reference_seconds),
        "speedup_vs_reference": round(
            (total_codes / total_seconds) / (total_codes / reference_seconds), 1
        ),
    }
    assert throughput / pr3_throughput >= 5, (
        f"mapped verification only "
        f"{throughput / pr3_throughput:.1f}x the PR 3 throughput"
    )


def test_statebased_smoke(benchmark):
    """Fast regression guard run by CI (``-k smoke``): one full state-based
    synthesis plus one mapped verification on small specs."""

    def run() -> None:
        spec = Spec.from_benchmark("sequencer")
        result = synthesize_state_based(spec.stg)
        assert result.circuit.signals
        netlist = map_circuit(result.circuit).netlist
        report = verify_mapped_netlist(spec.stg, result.circuit, netlist)
        assert report.equivalent and report.checked_codes > 0

    benchmark.pedantic(run, iterations=1, rounds=1)
