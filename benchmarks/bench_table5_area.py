"""Table V — per-benchmark area, structural flow vs. state-based baseline."""

from __future__ import annotations

from repro.experiments.table5 import table5_rows


def test_table5_area_comparison(benchmark, print_table):
    """Regenerate Table V over the classic benchmark suite."""
    rows = benchmark.pedantic(table5_rows, iterations=1, rounds=1)
    print_table(rows, title="Table V — area comparison (literals / mapped area)")
    totals = rows[-1]
    assert totals["benchmark"] == "TOTAL"
    # Every synthesized circuit is speed independent.
    assert totals["base_SI"] and totals["s3c_SI"]
    # The structural flow stays within a small constant factor of the fully
    # state-based minimizer (the paper reports comparable or better area
    # against prior tools; our baseline is an idealized exact minimizer).
    assert totals["s3c_full_lits"] <= 2.0 * totals["base_lits"]
    # Full minimization is never worse than the level-3 flow.
    assert totals["s3c_full_lits"] <= totals["s3c_lits"]
