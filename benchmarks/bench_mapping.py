"""Gate-level back end: mapping construction and event-simulation cost.

PR 3 rewrote the ``map`` stage from an area-summing estimator into a real
netlist constructor (:mod:`repro.gates`), and added the ``verify_mapped``
differential leg that event-simulates the mapped netlist on every reachable
state code.  This bench records what both cost on representative workloads:

* netlist construction (``map_circuit``) across the classic suite plus the
  scalable families, per library;
* full gate-level differential verification (reachability enumeration +
  one ``settle`` per distinct state code) on the latch-heavy cases.

The rows land in ``BENCH_PR3.json`` under ``mapping`` so later PRs can
track the gate-level flow's cost alongside the synthesis-kernel numbers.
"""

from __future__ import annotations

import time

from repro.api import Pipeline, Spec, SynthesisOptions
from repro.gates import GateLevelSimulator, verify_mapped_netlist
from repro.synthesis import map_circuit

#: (spec name, synthesis level) for the mapping-construction sweep
MAP_CASES = (
    ("sequencer", 5),
    ("parallelizer", 5),
    ("rw_port", 5),
    ("glatch_8", 2),
    ("muller_pipeline_16", 3),
    ("independent_cells_20", 3),
    ("independent_cells_45", 3),
)

#: specs small enough for exhaustive gate-level differential simulation
SIMULATE_CASES = (
    ("glatch_5", 2),
    ("muller_pipeline_8", 3),
    ("philosophers_5", 3),
    ("independent_cells_5", 3),
)

LIBRARIES = ("generic-cmos", "two-input-only", "latch-free")


def _map_all(pipeline: Pipeline, library: str) -> dict[str, dict]:
    rows: dict[str, dict] = {}
    for name, level in MAP_CASES:
        spec = Spec.from_benchmark(name)
        options = SynthesisOptions(level=level, assume_csc=True)
        circuit = pipeline.synthesize(spec, options).circuit
        start = time.perf_counter()
        mapped = map_circuit(circuit, library)
        seconds = time.perf_counter() - start
        rows[name] = {
            "map_s": round(seconds, 5),
            "gates": mapped.netlist.num_gates(),
            "area": mapped.total_area,
        }
    return rows


def bench_mapping_construction(benchmark, perf_record, print_table):
    """Netlist construction time per benchmark and library."""
    pipeline = Pipeline()
    # warm the synthesis cache so the timing isolates the map stage
    for name, level in MAP_CASES:
        pipeline.synthesize(
            Spec.from_benchmark(name), SynthesisOptions(level=level, assume_csc=True)
        )
    per_library = benchmark.pedantic(
        lambda: {library: _map_all(pipeline, library) for library in LIBRARIES},
        iterations=1,
        rounds=1,
    )
    rows = []
    for name, _level in MAP_CASES:
        row = {"benchmark": name}
        for library in LIBRARIES:
            entry = per_library[library][name]
            row[f"{library}_s"] = entry["map_s"]
            row[f"{library}_gates"] = entry["gates"]
        rows.append(row)
    print_table(rows, title="Gate netlist construction (map stage)")
    perf_record["results"].setdefault("mapping", {})["construction"] = per_library


def bench_gate_level_differential(benchmark, perf_record, print_table):
    """Event simulation of the mapped netlist over all reachable codes."""
    pipeline = Pipeline()
    prepared = []
    for name, level in SIMULATE_CASES:
        spec = Spec.from_benchmark(name)
        options = SynthesisOptions(level=level, assume_csc=True)
        circuit = pipeline.synthesize(spec, options).circuit
        netlist = pipeline.map(spec, options).netlist
        prepared.append((name, spec, circuit, netlist))

    def _verify_all():
        results = {}
        for name, spec, circuit, netlist in prepared:
            start = time.perf_counter()
            report = verify_mapped_netlist(spec.stg, circuit, netlist)
            seconds = time.perf_counter() - start
            assert report.equivalent, (name, report.mismatches[:3])
            results[name] = {
                "verify_mapped_s": round(seconds, 5),
                "codes": report.checked_codes,
                "markings": report.checked_markings,
                "gates": netlist.num_gates(),
            }
        return results

    results = benchmark.pedantic(_verify_all, iterations=1, rounds=1)

    # per-settle micro cost on the largest case
    name, spec, circuit, netlist = prepared[-1]
    simulator = GateLevelSimulator(netlist)
    code = {s: 0 for s in spec.stg.signal_names}
    start = time.perf_counter()
    iterations = 2000
    for _ in range(iterations):
        simulator.settle(code)
    settle_us = (time.perf_counter() - start) / iterations * 1e6

    rows = [dict(benchmark=key, **value) for key, value in results.items()]
    print_table(rows, title="Gate-level differential verification")
    perf_record["results"].setdefault("mapping", {})["differential"] = results
    perf_record["results"]["mapping"]["settle_us_per_call"] = round(settle_us, 2)
