"""Staged-pipeline caching: Fig. 13 level sweep, cached vs. recomputed.

The seed exposed one-shot ``synthesize(stg, options)`` as the public entry
point, so an M1..M5 sweep through the public API re-ran the analysis
front-end (concurrency, consistency, approximation, SM-cover, refinement,
CSC) once per level; the experiment scripts had to re-wire the reuse by
hand.  The unified :class:`repro.api.Pipeline` memoises the ``analyze`` /
``refine`` artifacts on the spec hash, so the same sweep pays for the
front-end once per benchmark.  This bench measures both flavours over the
classic suite and records the speedup in the PR2 perf record.
"""

from __future__ import annotations

import time

from repro.api import Pipeline, Spec, SynthesisOptions
from repro.benchmarks.classic import classic_names, load_classic
from repro.synthesis.engine import synthesize

LEVELS = (1, 2, 3, 4, 5)


def _sweep_per_level_recomputation(names: list[str]) -> int:
    """Seed-style sweep: one full ``synthesize`` call per (benchmark, level)."""
    total_literals = 0
    for name in names:
        stg = load_classic(name)
        for level in LEVELS:
            result = synthesize(stg, SynthesisOptions(level=level, assume_csc=True))
            total_literals += result.circuit.literal_count()
    return total_literals


def _sweep_cached_pipeline(names: list[str]) -> tuple[int, Pipeline]:
    """Unified-API sweep: one pipeline, front-end computed once per benchmark."""
    pipeline = Pipeline()
    total_literals = 0
    for name in names:
        spec = Spec.from_benchmark(name)
        for level in LEVELS:
            artifact = pipeline.synthesize(
                spec, SynthesisOptions(level=level, assume_csc=True)
            )
            total_literals += artifact.literals
    return total_literals, pipeline


def test_fig13_sweep_cached_pipeline(benchmark, perf_record, print_table):
    """Cached-pipeline M1..M5 sweep vs. seed per-level recomputation."""
    names = classic_names(synthesizable_only=True)

    start = time.perf_counter()
    legacy_literals = _sweep_per_level_recomputation(names)
    per_level_seconds = time.perf_counter() - start

    (cached_literals, pipeline) = benchmark.pedantic(
        _sweep_cached_pipeline, args=(names,), iterations=1, rounds=1
    )
    start = time.perf_counter()
    _sweep_cached_pipeline(names)
    cached_seconds = time.perf_counter() - start

    # identical circuits, one analysis per benchmark instead of one per level
    assert cached_literals == legacy_literals
    assert pipeline.stage_calls["analyze"] == len(names)
    assert pipeline.stage_calls["synthesize"] == len(LEVELS) * len(names)

    speedup = per_level_seconds / cached_seconds if cached_seconds > 0 else None
    rows = [
        {
            "sweep": "per-level recomputation (seed API)",
            "seconds": round(per_level_seconds, 3),
            "front_end_runs": len(LEVELS) * len(names),
        },
        {
            "sweep": "cached pipeline (repro.api)",
            "seconds": round(cached_seconds, 3),
            "front_end_runs": len(names),
        },
    ]
    print_table(rows, title="Fig. 13 sweep — analysis front-end reuse")
    perf_record["results"]["fig13_pipeline"] = {
        "benchmarks": len(names),
        "levels": len(LEVELS),
        "per_level_recomputation_s": round(per_level_seconds, 4),
        "cached_pipeline_s": round(cached_seconds, 4),
        "speedup": round(speedup, 2) if speedup else None,
        "total_literals": cached_literals,
    }
