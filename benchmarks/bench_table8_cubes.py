"""Table VIII — markings / nodes / cubes trade-off of the approximations."""

from __future__ import annotations

from repro.experiments.table8 import table8_rows


def test_table8_cube_efficiency(benchmark, print_table):
    """Regenerate Table VIII."""
    rows = benchmark.pedantic(table8_rows, iterations=1, rounds=1)
    print_table(rows, title="Table VIII — markings vs nodes vs cubes")
    per_benchmark = [row for row in rows if not str(row["benchmark"]).startswith(("SMALL", "LARGE"))]
    # The number of cubes stays within a small multiple of the node count
    # (the paper reports 2.4-2.6 cubes per node).
    assert all(row["cubes_per_node"] <= 6 for row in per_benchmark)
    # For the large instances each cube stands for a huge number of markings.
    large = [
        row for row in per_benchmark
        if isinstance(row["markings"], int) and row["markings"] > 10_000
    ]
    assert all(row["markings_per_cube"] > 50 for row in large)
