.model min_mapped
.inputs u_r
.outputs u_a
.graph
u_a+ u_r-
u_a- u_r+
u_r+ u_a+
u_r- u_a-
.marking { <u_a-,u_r+> }
.initial u_a=0 u_r=0
.end
