.model twin_place
.inputs r
.outputs a
.graph
a+ r-
a- <a-,r+> pool
r+ a+
r- a-
<a-,r+> r+
pool r+
.marking { <a-,r+> pool=3 }
.end
