"""Exact two-level synthesis by cardinality-constrained SAT descent.

The exact backend searches the same correctness space the paper's flows
approximate: equation (2) cover correctness plus the Property 1
monotonicity/acknowledgement condition, on the exact state-based regions.
Per signal it solves three :class:`~repro.sat.encode.CoverProblem`
instances — ``set``/``reset`` (monotone excitation functions) and
``complete`` (the combinational next-state function) — each to the
**lexicographic minimum** (fewest cubes, then fewest literals):

1. *gate descent*: solve once, then tighten a unary counter over the
   selection variables one unit clause at a time until UNSAT — the last
   satisfiable bound is the provable minimum cube count;
2. *literal descent*: fresh solver pinned to the minimum cube count,
   same game on a weighted counter (cube weight = literal count);
3. *enumeration*: fresh solver pinned to both minima; every model is a
   minimum implementation and is excluded by a blocking clause over its
   selected cubes until the space is dry (or ``max_solutions`` truncates).

The implementation architecture is then chosen exactly: minimum literal
cost among the combinational complex gate, the set/reset C-latch and the
collapsed gated latch (single-cube covers with equal support at Hamming
distance one, costed as in Appendix D).  Level-5 structural covers can
leave this space through M5 backward expansion (they lean on the opposite
network holding the latch); the optimality-gap experiment therefore
reports the structural baseline at the strongest level inside the space.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Optional

from repro.obs import current_obs

from repro.boolean.interning import mask_of_tuple
from repro.sat.encode import (
    CoverProblem,
    SatBudgetExceeded,
    SignalEncoding,
    add_counter,
    build_encoding,
    cover_of_masks,
)
from repro.sat.solver import new_solver
from repro.statebased.coding import analyze_state_coding
from repro.statebased.regions import SignalRegions, compute_signal_regions
from repro.statebased.synthesis import StateBasedSynthesisError
from repro.stg.consistency import check_consistency_state_based
from repro.stg.encoding import encode_reachability_graph
from repro.stg.stg import STG
from repro.synthesis.netlist import (
    Architecture,
    Circuit,
    combinational_implementation,
    latch_implementation,
)

__all__ = [
    "ExactSynthesisError",
    "ExactSynthesisResult",
    "ProblemSolution",
    "exact_synthesize",
    "minimize_problem",
]


class ExactSynthesisError(StateBasedSynthesisError):
    """The specification admits no cover in the exact search space."""


@dataclass
class ProblemSolution:
    """All lexicographic minima of one :class:`CoverProblem`."""

    problem: CoverProblem
    #: minimum cube count / minimum literal count (at that cube count)
    gates: int
    literals: int
    #: every minimum implementation, as sorted packed-cube mask lists
    solutions: list[list[tuple[int, int]]]
    #: True when ``max_solutions`` cut the enumeration short
    truncated: bool = False
    candidates: int = 0
    stats: dict = field(default_factory=dict)
    #: the built CNF (kept for the gated-latch search; not serialized)
    encoding: Optional[SignalEncoding] = None


@dataclass
class ExactSynthesisResult:
    """Provably minimum circuit plus the exact regions and statistics."""

    circuit: Circuit
    regions: SignalRegions
    statistics: dict = field(default_factory=dict)


#: solver work counters surfaced into the ``repro_sat_total`` metric
_SOLVER_WORK = ("conflicts", "propagations", "decisions", "restarts", "learned")


def _observe_phase(obs, phase: str, solver, started: float) -> None:
    """Feed one descent phase's wall time and solver work into the registry.

    Each phase runs on a *fresh* solver, so its ``stats`` dict is exactly
    this phase's work — no delta bookkeeping needed.
    """
    if obs is None:
        return
    obs.sat_phase_seconds.observe(time.perf_counter() - started, phase=phase)
    stats = getattr(solver, "stats", None) or {}
    for kind in _SOLVER_WORK:
        amount = stats.get(kind, 0)
        if amount:
            obs.sat_work.inc(float(amount), kind=kind)


def _fresh_solver(encoding: SignalEncoding, seed: int, prefer: Optional[str]):
    solver = new_solver(seed=seed, prefer=prefer)
    solver.ensure_vars(encoding.num_vars)
    if not solver.add_clauses(encoding.clauses):
        raise ExactSynthesisError(
            f"{encoding.problem.signal}/{encoding.problem.kind}: "
            "cover constraints are unsatisfiable"
        )
    return solver


def _add_counter_to(solver, items, width):
    """Attach a counter to a live solver; returns its output variables."""
    clauses: list[list[int]] = []
    next_var, outputs = add_counter(clauses, items, width, solver.num_vars)
    solver.ensure_vars(next_var)
    solver.add_clauses(clauses)
    return outputs


def _descend(solver, encoding: SignalEncoding, items, first: int) -> int:
    """Tighten ``sum(items) ≤ B`` until UNSAT; return the minimum sum.

    ``first`` is the weighted sum of an already-found model; the counter is
    built once at that width and each tightening is a single unit clause.
    """
    best = first
    if best <= 0:
        return best
    outputs = _add_counter_to(solver, items, best)
    weight_of = dict(items)
    while best > 0:
        if not solver.add_clause([-outputs[best - 1]]):
            break
        if solver.solve() is not True:
            break
        model = solver.model()
        best = sum(
            weight_of[var]
            for var in encoding.select_vars
            if model.get(var)
        )
    return best


def minimize_problem(
    problem: CoverProblem,
    budget: int = 4096,
    max_solutions: int = 64,
    seed: int = 0,
    prefer: Optional[str] = None,
) -> ProblemSolution:
    """Lexicographic (cubes, literals) minimization plus full enumeration."""
    start = time.perf_counter()
    encoding = build_encoding(
        problem, budget=budget, primes_only=problem.kind == "complete"
    )
    if not problem.on_codes:
        return ProblemSolution(
            problem=problem,
            gates=0,
            literals=0,
            solutions=[[]],
            candidates=len(encoding.candidates),
            stats={"seconds": time.perf_counter() - start},
            encoding=encoding,
        )
    if any(not clause for clause in encoding.clauses):
        raise ExactSynthesisError(
            f"{problem.signal}/{problem.kind}: an on-set code has no valid "
            "covering cube (state coding conflict?)"
        )
    stats = {"candidates": len(encoding.candidates)}
    unit_items = [(var, 1) for var in encoding.select_vars]
    weights = encoding.weights()
    weighted_items = [
        (var, weight) for var, weight in zip(encoding.select_vars, weights)
    ]
    obs = current_obs()

    def _span(phase: str):
        if obs is None:
            return nullcontext()
        return obs.tracer.span(
            "sat:" + phase, signal=problem.signal, kind=problem.kind
        )

    # phase 1: minimum cube count
    phase_started = time.perf_counter()
    with _span("cubes"):
        solver = _fresh_solver(encoding, seed, prefer)
        if solver.solve() is not True:
            raise ExactSynthesisError(
                f"{problem.signal}/{problem.kind}: no monotone cover exists"
            )
        first = len(encoding.selection_of_model(solver.model()))
        gates = _descend(solver, encoding, unit_items, first)
    conflicts = getattr(solver, "stats", {}).get("conflicts", 0)
    _observe_phase(obs, "cubes", solver, phase_started)

    # phase 2: minimum literal count at that cube count
    phase_started = time.perf_counter()
    with _span("literals"):
        solver = _fresh_solver(encoding, seed, prefer)
        gate_outs = _add_counter_to(solver, unit_items, gates + 1)
        solver.add_clause([-gate_outs[gates]])
        if solver.solve() is not True:  # pragma: no cover - phase 1 proved SAT
            raise ExactSynthesisError(
                f"{problem.signal}/{problem.kind}: minimum-gate bound lost"
            )
        model = solver.model()
        first = sum(
            weights[i] for i in encoding.selection_of_model(model)
        )
        literals = _descend(solver, encoding, weighted_items, first)
    conflicts += getattr(solver, "stats", {}).get("conflicts", 0)
    _observe_phase(obs, "literals", solver, phase_started)

    # phase 3: enumerate every (gates, literals) minimum
    phase_started = time.perf_counter()
    with _span("enumerate"):
        solver = _fresh_solver(encoding, seed, prefer)
        gate_outs = _add_counter_to(solver, unit_items, gates + 1)
        solver.add_clause([-gate_outs[gates]])
        lit_outs = _add_counter_to(solver, weighted_items, literals + 1)
        solver.add_clause([-lit_outs[literals]])
        solutions: list[list[tuple[int, int]]] = []
        truncated = False
        while solver.solve() is True:
            model = solver.model()
            selection = encoding.selection_of_model(model)
            solutions.append(sorted(encoding.candidates[i] for i in selection))
            if len(solutions) >= max_solutions:
                truncated = True
                break
            if not solver.add_clause([-encoding.select_vars[i] for i in selection]):
                break
    conflicts += getattr(solver, "stats", {}).get("conflicts", 0)
    _observe_phase(obs, "enumerate", solver, phase_started)
    if not solutions:  # pragma: no cover - phases 1-2 proved feasibility
        raise ExactSynthesisError(
            f"{problem.signal}/{problem.kind}: enumeration found no model"
        )
    stats["conflicts"] = conflicts
    stats["seconds"] = time.perf_counter() - start
    return ProblemSolution(
        problem=problem,
        gates=gates,
        literals=literals,
        solutions=solutions,
        truncated=truncated,
        candidates=len(encoding.candidates),
        stats=stats,
        encoding=encoding,
    )


# ---------------------------------------------------------------------- #
# Per-signal problem construction
# ---------------------------------------------------------------------- #


def _signal_problems(
    regions: SignalRegions, signal: str
) -> tuple[CoverProblem, CoverProblem, CoverProblem]:
    """(set, reset, complete) cover problems of one signal."""
    encoded = regions.encoded
    indexed = encoded.indexed()
    codes = encoded.packed_codes
    signals_mask = mask_of_tuple(tuple(encoded.stg.signal_names))

    def states_of(bits: int) -> list[int]:
        states = []
        while bits:
            low = bits & -bits
            bits ^= low
            states.append(low.bit_length() - 1)
        return states

    def quiescent_of(bits: int):
        states = tuple((s, codes[s]) for s in states_of(bits))
        edges = tuple(
            (source, state)
            for state, _ in states
            for _, source in indexed.pred[state]
            if bits >> source & 1
        )
        return states, edges

    def off_of(bits: int) -> tuple[tuple[int, int], ...]:
        cover = encoded.merged_cover_of_codes(regions.code_set(bits))
        return tuple((cube.care_mask, cube.value_mask) for cube in cover)

    ger_plus = regions.ger_bits(signal, "+")
    ger_minus = regions.ger_bits(signal, "-")
    gqr_one = regions.gqr_bits(signal, 1)
    gqr_zero = regions.gqr_bits(signal, 0)

    set_states, set_edges = quiescent_of(gqr_one)
    reset_states, reset_edges = quiescent_of(gqr_zero)
    set_problem = CoverProblem(
        signal=signal,
        kind="set",
        signals_mask=signals_mask,
        on_codes=tuple(sorted(regions.code_set(ger_plus))),
        off_pairs=off_of(ger_minus | gqr_zero),
        quiescent_states=set_states,
        quiescent_edges=set_edges,
    )
    reset_problem = CoverProblem(
        signal=signal,
        kind="reset",
        signals_mask=signals_mask,
        on_codes=tuple(sorted(regions.code_set(ger_minus))),
        off_pairs=off_of(ger_plus | gqr_one),
        quiescent_states=reset_states,
        quiescent_edges=reset_edges,
    )
    complete_problem = CoverProblem(
        signal=signal,
        kind="complete",
        signals_mask=signals_mask,
        on_codes=tuple(sorted(regions.code_set(ger_plus | gqr_one))),
        off_pairs=off_of(ger_minus | gqr_zero),
    )
    return set_problem, reset_problem, complete_problem


# ---------------------------------------------------------------------- #
# Gated-latch search (Appendix D, exact)
# ---------------------------------------------------------------------- #


def _valid_single_cubes(solution: ProblemSolution, budget: int) -> list[tuple[int, int]]:
    """Candidate cubes that alone form a correct monotone cover."""
    problem = solution.problem
    encoding = solution.encoding or build_encoding(problem, budget=budget)
    edges = problem.quiescent_edges
    valid = []
    for care, value in encoding.candidates:
        if any((code & care) != value for code in problem.on_codes):
            continue
        covered = {
            state
            for state, code in problem.quiescent_states
            if (code & care) == value
        }
        if any(
            state in covered and source not in covered
            for source, state in edges
        ):
            continue
        valid.append((care, value))
    return valid


def _best_gated_latch(
    set_solution: ProblemSolution,
    reset_solution: ProblemSolution,
    budget: int,
) -> Optional[tuple[int, list[tuple[tuple[int, int], tuple[int, int]]]]]:
    """Minimum-cost (set cube, reset cube) pairs collapsible to a gated latch.

    Eligibility follows :func:`repro.synthesis.engine._try_gated_latch`:
    both covers single cubes with identical support at Hamming distance
    one; the cost is the Appendix D count — the shared literals plus the
    data and control inputs.
    """
    if not set_solution.problem.on_codes or not reset_solution.problem.on_codes:
        return None
    set_cubes = _valid_single_cubes(set_solution, budget)
    if not set_cubes:
        return None
    reset_cubes = _valid_single_cubes(reset_solution, budget)
    best_cost: Optional[int] = None
    best_pairs: list[tuple[tuple[int, int], tuple[int, int]]] = []
    by_care: dict[int, list[int]] = {}
    for care, value in set_cubes:
        by_care.setdefault(care, []).append(value)
    for care, reset_value in reset_cubes:
        for set_value in by_care.get(care, ()):
            if ((set_value ^ reset_value)).bit_count() != 1:
                continue
            cost = care.bit_count() + 1
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_pairs = [((care, set_value), (care, reset_value))]
            elif cost == best_cost:
                best_pairs.append(((care, set_value), (care, reset_value)))
    if best_cost is None:
        return None
    return best_cost, sorted(best_pairs)


# ---------------------------------------------------------------------- #
# The exact synthesis driver
# ---------------------------------------------------------------------- #


def exact_synthesize(
    stg: STG,
    signals: Optional[list[str]] = None,
    check_specification: bool = True,
    max_markings: Optional[int] = None,
    assume_csc: bool = False,
    candidate_budget: int = 4096,
    max_solutions: int = 64,
    seed: int = 0,
    prefer: Optional[str] = None,
) -> ExactSynthesisResult:
    """Synthesize the provably minimum-literal circuit of a specification.

    Mirrors :func:`repro.statebased.synthesis.synthesize_state_based`'s
    contract (same reachability analysis, specification checks and region
    extraction) but replaces heuristic two-level minimization with the SAT
    descent of :func:`minimize_problem`, then picks the cheapest of the
    three implementation architectures per signal.  ``candidate_budget``
    bounds the per-problem implicant space and ``max_solutions`` the
    enumeration; blowing the former raises
    :class:`~repro.sat.encode.SatBudgetExceeded` (a capacity skip, not a
    synthesis failure).
    """
    start = time.perf_counter()
    stats: dict = {}
    from repro.petri.reachability import build_reachability_graph

    graph = build_reachability_graph(stg.net, max_markings=max_markings)
    stats["markings"] = len(graph)
    encoded = encode_reachability_graph(stg, graph)

    if check_specification:
        report = check_consistency_state_based(stg, graph)
        if not report.consistent:
            raise ExactSynthesisError(f"inconsistent STG: {report.message}")
        if not assume_csc:
            coding = analyze_state_coding(stg, encoded)
            if not coding.satisfies_csc:
                raise ExactSynthesisError(
                    f"CSC violations: {len(coding.csc_conflicts)} conflicting pairs"
                )

    targets = signals if signals is not None else stg.non_input_signals
    regions = compute_signal_regions(stg, encoded, signals=targets)
    variables = tuple(stg.signal_names)

    circuit = Circuit(name=stg.name, signal_order=variables)
    signal_stats: dict[str, dict] = {}
    for signal in targets:
        implementation, info = _synthesize_signal(
            regions,
            signal,
            variables,
            budget=candidate_budget,
            max_solutions=max_solutions,
            seed=seed,
            prefer=prefer,
        )
        circuit.implementations[signal] = implementation
        signal_stats[signal] = info
    stats["signals"] = signal_stats
    stats["minima"] = {
        signal: info["minima"] for signal, info in signal_stats.items()
    }
    stats["seconds"] = time.perf_counter() - start
    circuit.metadata["sat"] = {
        "exact": True,
        "signals": signal_stats,
    }
    return ExactSynthesisResult(circuit=circuit, regions=regions, statistics=stats)


def _synthesize_signal(
    regions: SignalRegions,
    signal: str,
    variables: tuple[str, ...],
    budget: int,
    max_solutions: int,
    seed: int,
    prefer: Optional[str],
):
    """Minimum implementation of one signal across all architectures."""
    set_problem, reset_problem, complete_problem = _signal_problems(regions, signal)
    set_solution = minimize_problem(
        set_problem, budget=budget, max_solutions=max_solutions, seed=seed, prefer=prefer
    )
    reset_solution = minimize_problem(
        reset_problem, budget=budget, max_solutions=max_solutions, seed=seed, prefer=prefer
    )
    complete_solution = minimize_problem(
        complete_problem,
        budget=budget,
        max_solutions=max_solutions,
        seed=seed,
        prefer=prefer,
    )
    gated = _best_gated_latch(set_solution, reset_solution, budget)

    latch_cost = set_solution.literals + reset_solution.literals
    costs = [
        ("complex-gate", complete_solution.literals),
        ("gated-latch", gated[0] if gated else None),
        ("set-reset-latch", latch_cost),
    ]
    choice = min(
        (cost, order)
        for order, (_, cost) in enumerate(costs)
        if cost is not None
    )[1]
    architecture = costs[choice][0]

    if architecture == "complex-gate":
        cover = cover_of_masks(complete_solution.solutions[0], variables)
        implementation = combinational_implementation(signal, cover)
        minima = len(complete_solution.solutions)
    elif architecture == "gated-latch":
        assert gated is not None
        _, pairs = gated
        set_pair, reset_pair = pairs[0]
        implementation = latch_implementation(
            signal,
            cover_of_masks([set_pair], variables),
            cover_of_masks([reset_pair], variables),
            architecture=Architecture.GATED_LATCH,
        )
        minima = len(pairs)
    else:
        implementation = latch_implementation(
            signal,
            cover_of_masks(set_solution.solutions[0], variables),
            cover_of_masks(reset_solution.solutions[0], variables),
        )
        minima = len(set_solution.solutions) * len(reset_solution.solutions)

    info = {
        "architecture": implementation.architecture.value,
        "literals": implementation.literal_count(),
        "minima": minima,
        "truncated": any(
            s.truncated for s in (set_solution, reset_solution, complete_solution)
        ),
        "set": _solution_summary(set_solution),
        "reset": _solution_summary(reset_solution),
        "complete": _solution_summary(complete_solution),
        "gated_cost": gated[0] if gated else None,
    }
    return implementation, info


def _solution_summary(solution: ProblemSolution) -> dict:
    return {
        "gates": solution.gates,
        "literals": solution.literals,
        "solutions": len(solution.solutions),
        "candidates": solution.candidates,
        "truncated": solution.truncated,
        "conflicts": solution.stats.get("conflicts", 0),
    }
