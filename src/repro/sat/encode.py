"""CNF encoding of the exact two-level synthesis problem of one signal.

The synthesis of a set/reset/complete cover is encoded as *cube selection*:

* the candidate space is every implicant of ``on ∪ dc`` — all packed
  ``(care, value)`` cubes over the signal universe that avoid the off-set
  and cover at least one relevant reachable code (an on-set code, or a
  quiescent-region code the monotonicity constraint can mention).  The
  space is enumerated by literal-dropping expansion from the relevant
  minterms, so it contains the primes *and* every smaller implicant —
  under the monotonicity side constraints a minimum solution may need a
  non-prime cube, which a primes-only space would miss;
* one selection variable per candidate cube; **on-set coverage** is one
  clause per on-set code (the disjunction of the candidates covering it);
  **off-set exclusion** holds by construction of the candidate space;
* the paper's monotonicity/acknowledgement condition (Property 1, the
  state-based oracle of :func:`repro.synthesis.conditions.check_monotonicity_state_based`)
  becomes a side constraint: an auxiliary variable per quiescent-region
  state, tied to the disjunction of the candidates covering its code, with
  one implication per reachability-graph edge inside the region —
  ``covered(state) → covered(predecessor)``;
* cost bounds are sequential-counter (Sinz LTseq) cardinality constraints
  over the selection variables — unweighted for the gate count, and with
  each selection variable repeated ``literals(cube)`` times for the
  literal count (a repeated input counts with multiplicity, which is
  exactly a weighted counter with unary weights).

All cube arithmetic runs on the packed integer ``(care, value)`` masks of
:mod:`repro.boolean.interning`'s process-global variable order; cubes only
materialize as :class:`~repro.boolean.cube.Cube` objects when a model is
decoded back into a :class:`~repro.boolean.cover.Cover`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube
from repro.boolean.interning import var_name

__all__ = [
    "SatBudgetExceeded",
    "CoverProblem",
    "SignalEncoding",
    "enumerate_implicants",
    "build_encoding",
    "add_at_most",
    "add_counter",
    "cube_of_masks",
    "cover_of_masks",
]


class SatBudgetExceeded(RuntimeError):
    """The candidate-cube (or solution) budget of exact synthesis ran out.

    Deliberately *not* a :class:`~repro.synthesis.engine.SynthesisError`:
    exceeding a budget means "this spec is too large for the exact
    backend", which callers (gap tables, corpus checks) report as a skip,
    not as an unsynthesizable specification.
    """


@dataclass(frozen=True)
class CoverProblem:
    """One cover-synthesis instance: what to cover, avoid and acknowledge.

    ``kind`` is ``"set"``/``"reset"`` (monotonicity-constrained excitation
    functions) or ``"complete"`` (the full next-state function of a
    combinational complex gate — no quiescent side constraints, matching
    the state-based baseline's contract).
    """

    signal: str
    kind: str
    #: packed mask of the whole signal universe (candidate support bound)
    signals_mask: int
    #: distinct reachable codes the cover must contain
    on_codes: tuple[int, ...]
    #: ``(care, value)`` pairs of the off-set cover (minterm-exact)
    off_pairs: tuple[tuple[int, int], ...]
    #: ``(state_index, code)`` of every quiescent-region state
    quiescent_states: tuple[tuple[int, int], ...] = ()
    #: ``(pred_state, state)`` edges inside the quiescent region
    quiescent_edges: tuple[tuple[int, int], ...] = ()


def enumerate_implicants(
    signals_mask: int,
    seed_codes: Sequence[int],
    off_pairs: Sequence[tuple[int, int]],
    budget: int = 4096,
    primes_only: bool = False,
) -> list[tuple[int, int]]:
    """Every implicant covering at least one seed code, packed and deduped.

    Expansion drops one cared literal at a time starting from the seed
    minterms; a cube that intersects the off-set is pruned together with
    its supersets (a larger cube covers strictly more vertices, so it
    intersects the off-set too).  Raises :class:`SatBudgetExceeded` once
    more than ``budget`` distinct valid cubes have been produced.

    ``primes_only`` keeps only the maximal cubes.  That is sound for pure
    covering problems (kind ``"complete"``): any implicant has a prime
    superset with the same coverage and strictly fewer literals per
    dropped care bit, so no minimum-gate or minimum-literal solution ever
    selects a non-prime.  It is **unsound** under monotonicity side
    constraints, where expanding a cube can newly cover a quiescent state
    whose predecessor chain is not covered.
    """
    seen: set[tuple[int, int]] = set()
    frontier: list[tuple[int, int]] = []
    for code in sorted(seed_codes):
        care, value = signals_mask, code & signals_mask
        pair = (care, value)
        if pair in seen:
            continue
        # a seed minterm inside the off-set is a state-coding conflict;
        # letting it through would silently "cover" the code with itself
        if any(not (value ^ v2) & care & c2 for c2, v2 in off_pairs):
            continue
        seen.add(pair)
        frontier.append(pair)
    while frontier:
        care, value = frontier.pop()
        bits = care
        while bits:
            low = bits & -bits
            bits ^= low
            candidate = (care ^ low, value & ~low)
            if candidate in seen:
                continue
            c1, v1 = candidate
            blocked = False
            for c2, v2 in off_pairs:
                if not (v1 ^ v2) & c1 & c2:
                    blocked = True
                    break
            if blocked:
                continue
            if len(seen) >= budget:
                raise SatBudgetExceeded(
                    f"candidate-cube budget exceeded ({budget}) while "
                    "enumerating implicants"
                )
            seen.add(candidate)
            frontier.append(candidate)
    if primes_only:
        seen = {
            (care, value)
            for care, value in seen
            if not any(
                ((care ^ bit), value & ~bit) in seen
                for bit in _bits_of(care)
            )
        }
    # deterministic order: most-specific first, then by packed masks
    return sorted(seen, key=lambda p: (-p[0].bit_count(), p[0], p[1]))


def _bits_of(mask: int):
    while mask:
        low = mask & -mask
        mask ^= low
        yield low


@dataclass
class SignalEncoding:
    """The CNF of one :class:`CoverProblem` over a fixed candidate space."""

    problem: CoverProblem
    #: packed ``(care, value)`` candidate cubes, in selection-variable order
    candidates: list[tuple[int, int]]
    #: selection variable of each candidate (``i``-th candidate → var ``i+1``)
    select_vars: list[int]
    #: auxiliary coverage variable per quiescent state index
    state_vars: dict[int, int] = field(default_factory=dict)
    clauses: list[list[int]] = field(default_factory=list)
    num_vars: int = 0

    def weights(self) -> list[int]:
        """Literal count of each candidate (the weighted-cardinality input)."""
        return [care.bit_count() for care, _ in self.candidates]

    def selection_of_model(self, model: dict[int, bool]) -> list[int]:
        """Indices of the selected candidates under a satisfying model."""
        return [i for i, var in enumerate(self.select_vars) if model.get(var)]

    def masks_of_model(self, model: dict[int, bool]) -> list[tuple[int, int]]:
        """The selected candidate cubes of a satisfying model."""
        return [self.candidates[i] for i in self.selection_of_model(model)]


def build_encoding(
    problem: CoverProblem, budget: int = 4096, primes_only: bool = False
) -> SignalEncoding:
    """Candidate enumeration plus coverage/monotonicity clauses.

    The full selection is always a model: it covers every on-set code (each
    minterm is its own candidate), excludes the off-set by construction,
    and covers the *entire* quiescent region, which satisfies every
    monotonicity implication — so the encoding is satisfiable whenever the
    problem is well-formed.
    """
    seeds = list(problem.on_codes) + [code for _, code in problem.quiescent_states]
    candidates = enumerate_implicants(
        problem.signals_mask,
        seeds,
        problem.off_pairs,
        budget=budget,
        primes_only=primes_only and not problem.quiescent_states,
    )
    select_vars = list(range(1, len(candidates) + 1))
    encoding = SignalEncoding(
        problem=problem,
        candidates=candidates,
        select_vars=select_vars,
        num_vars=len(candidates),
    )
    clauses = encoding.clauses

    def covering(code: int) -> list[int]:
        return [
            select_vars[i]
            for i, (care, value) in enumerate(candidates)
            if (code & care) == value
        ]

    # on-set coverage: every on code needs at least one selected candidate
    for code in problem.on_codes:
        clauses.append(covering(code))

    # monotonicity (Property 1): auxiliary y_state ↔ OR(selected covering
    # cubes); y_state → y_pred along every in-region edge
    cover_vars_of_code: dict[int, list[int]] = {}
    for state, code in problem.quiescent_states:
        over = cover_vars_of_code.get(code)
        if over is None:
            over = covering(code)
            cover_vars_of_code[code] = over
        encoding.num_vars += 1
        y = encoding.num_vars
        encoding.state_vars[state] = y
        for s in over:
            clauses.append([-s, y])
        clauses.append([-y] + over)
    for pred, state in problem.quiescent_edges:
        clauses.append([-encoding.state_vars[state], encoding.state_vars[pred]])
    return encoding


def add_at_most(
    clauses: list[list[int]],
    lits: Sequence[int],
    bound: int,
    next_var: int,
) -> int:
    """Sinz sequential-counter encoding of ``sum(lits) ≤ bound``.

    Literals may repeat — a literal listed ``w`` times counts with
    multiplicity ``w``, which is how the weighted (literal-count) bound is
    expressed.  Auxiliary variables are allocated from ``next_var + 1``;
    the new allocation watermark is returned.
    """
    n = len(lits)
    if bound < 0:
        clauses.append([])  # trivially unsatisfiable
        return next_var
    if bound == 0:
        for lit in set(lits):
            clauses.append([-lit])
        return next_var
    if bound >= n:
        return next_var
    # registers[i][j] ⇔ "at least j+1 of lits[0..i] are true"
    prev: list[int] = []
    for i, x in enumerate(lits[:-1]):
        regs = [next_var + j + 1 for j in range(bound)]
        next_var += bound
        clauses.append([-x, regs[0]])
        if prev:
            clauses.append([-prev[0], regs[0]])
        for j in range(1, bound):
            if prev:
                clauses.append([-x, -prev[j - 1], regs[j]])
                clauses.append([-prev[j], regs[j]])
            else:
                clauses.append([-regs[j]])
        if prev:
            clauses.append([-x, -prev[bound - 1]])
        prev = regs
    clauses.append([-lits[-1], -prev[bound - 1]])
    return next_var


def add_counter(
    clauses: list[list[int]],
    items: Sequence[tuple[int, int]],
    width: int,
    next_var: int,
) -> tuple[int, list[int]]:
    """Weighted unary counter with reusable threshold outputs.

    ``items`` are ``(literal, weight)`` pairs; the returned ``outputs`` list
    has ``outputs[j]`` forced true whenever the weighted sum of the true
    literals is at least ``j + 1`` (sums beyond ``width`` clamp onto the
    last output).  Only that direction is encoded, which is all a
    descending ``sum ≤ B`` search needs: each tightening is one unit clause
    ``[-outputs[B]]``, so one counter serves a whole chain of incrementally
    stricter bounds on the same solver.  Returns ``(next_var, outputs)``.
    """
    if width <= 0 or not items:
        return next_var, []
    top = width - 1
    prev: list[int] = []
    for lit, weight in items:
        regs = [next_var + j + 1 for j in range(width)]
        next_var += width
        for j in range(min(weight, width)):
            clauses.append([-lit, regs[j]])
        for j, p in enumerate(prev):
            clauses.append([-p, regs[j]])
            clauses.append([-lit, -p, regs[min(j + weight, top)]])
        prev = regs
    return next_var, prev


# ---------------------------------------------------------------------- #
# Mask ↔ Cube decoding
# ---------------------------------------------------------------------- #


def cube_of_masks(care: int, value: int) -> Cube:
    """Materialize a packed ``(care, value)`` pair as a :class:`Cube`."""
    literals: dict[str, int] = {}
    bits = care
    while bits:
        low = bits & -bits
        bits ^= low
        index = low.bit_length() - 1
        literals[var_name(index)] = 1 if value & low else 0
    return Cube(literals)


def cover_of_masks(
    pairs: Sequence[tuple[int, int]], variables: Sequence[str]
) -> Cover:
    """Materialize packed cube pairs as a :class:`Cover` over ``variables``."""
    return Cover([cube_of_masks(care, value) for care, value in pairs], variables)
