"""Exact synthesis on SAT: dependency-free CDCL solver plus CNF encodings.

``repro.sat`` is the third synthesis backend of the reproduction.  Where
the structural flow approximates (ROADMAP item 2's open question was "by
how much?"), this subsystem answers with certificates: a pure-python CDCL
solver (:mod:`repro.sat.solver`), a selection-variable CNF encoding of
cover correctness and monotonicity (:mod:`repro.sat.encode`), and a
cardinality-descent driver that reaches provably minimum-gate /
minimum-literal implementations and enumerates all of them
(:mod:`repro.sat.synthesize`).  The optimality-gap experiment
(:mod:`repro.experiments.optimality_gap`) turns the difference into a
table.
"""

from repro.sat.encode import SatBudgetExceeded
from repro.sat.solver import CDCLSolver, new_solver, pysat_available
from repro.sat.synthesize import (
    ExactSynthesisError,
    ExactSynthesisResult,
    exact_synthesize,
)

__all__ = [
    "CDCLSolver",
    "ExactSynthesisError",
    "ExactSynthesisResult",
    "SatBudgetExceeded",
    "exact_synthesize",
    "new_solver",
    "pysat_available",
]
