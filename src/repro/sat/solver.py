"""A dependency-free CDCL SAT solver (plus a naive DPLL reference oracle).

The solver implements the standard conflict-driven clause-learning loop:

* two-watched-literal unit propagation,
* first-UIP conflict analysis with non-chronological backjumping,
* VSIDS-style variable activities with exponential decay,
* Luby-sequence restarts with phase saving,
* incremental use: clauses may be added between ``solve()`` calls (the
  exclude-model enumeration loop of :mod:`repro.sat.synthesize`), and
  ``solve(assumptions)`` solves under temporary unit assumptions.

Everything is deterministic given the ``seed`` (which only perturbs the
*initial* activities to break ties differently between seeds): identical
inputs replay identical search trees, which the differential tests and the
store-cacheable synthesis artifacts rely on.

If the optional `pysat` package is installed, :func:`new_solver` can hand
out a :class:`PysatSolver` adapter behind the same interface
(``REPRO_SAT_SOLVER=pysat`` or ``prefer="pysat"``); tier-1 never requires
it — the pure-python engine is the default and the only code path
exercised in CI's dependency-free job.
"""

from __future__ import annotations

import os
import random
from typing import Iterable, Optional, Sequence

__all__ = [
    "CDCLSolver",
    "PysatSolver",
    "new_solver",
    "pysat_available",
    "_reference_dpll",
]


def _luby(x: int) -> int:
    """The x-th term (0-based) of the Luby restart sequence: 1 1 2 1 1 2 4 …"""
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) >> 1
        seq -= 1
        x %= size
    return 1 << seq


class CDCLSolver:
    """Conflict-driven clause learning over DIMACS-style signed literals.

    Variables are positive integers ``1..num_vars``; a literal is ``v`` or
    ``-v``.  ``add_clause`` grows the variable universe on demand.
    """

    def __init__(self, num_vars: int = 0, seed: int = 0):
        self.seed = seed
        self._num_vars = 0
        # clause store: problem and learnt clauses share one arena
        self._clauses: list[list[int]] = []
        self._watches: list[list[int]] = [[], []]  # per literal index
        self._assign: list[int] = [0]  # 1 true, -1 false, 0 unassigned
        self._level: list[int] = [0]
        self._reason: list[Optional[int]] = [None]
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._activity: list[float] = [0.0]
        self._saved_phase: list[int] = [-1]
        self._var_inc = 1.0
        self._var_decay = 1.0 / 0.95
        self._restart_base = 64
        self._rng = random.Random(seed)
        self._ok = True
        self.stats = {
            "decisions": 0,
            "conflicts": 0,
            "propagations": 0,
            "restarts": 0,
            "learned": 0,
        }
        if num_vars:
            self.ensure_vars(num_vars)

    # ------------------------------------------------------------------ #
    # Variables and values
    # ------------------------------------------------------------------ #

    @property
    def num_vars(self) -> int:
        return self._num_vars

    def new_var(self) -> int:
        """Allocate and return a fresh variable."""
        self._num_vars += 1
        self._assign.append(0)
        self._level.append(0)
        self._reason.append(None)
        # a seed-dependent epsilon so distinct seeds break activity ties
        # differently while any single seed stays fully deterministic
        self._activity.append(self._rng.random() * 1e-6)
        self._saved_phase.append(-1)
        self._watches.append([])
        self._watches.append([])
        return self._num_vars

    def ensure_vars(self, count: int) -> None:
        """Grow the variable universe to at least ``count`` variables."""
        while self._num_vars < count:
            self.new_var()

    @staticmethod
    def _widx(lit: int) -> int:
        """Watch-list index of a literal."""
        return (lit << 1) if lit > 0 else ((-lit << 1) | 1)

    def _value(self, lit: int) -> int:
        """1 if the literal is true, -1 false, 0 unassigned."""
        v = self._assign[abs(lit)]
        return v if lit > 0 else -v

    def value_of(self, var: int) -> Optional[bool]:
        """Value of a variable in the current (final) assignment."""
        v = self._assign[var]
        return None if v == 0 else v > 0

    def model(self) -> dict[int, bool]:
        """The satisfying assignment after a successful ``solve``."""
        return {v: self._assign[v] > 0 for v in range(1, self._num_vars + 1)}

    # ------------------------------------------------------------------ #
    # Clauses
    # ------------------------------------------------------------------ #

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a clause; returns False if the formula became trivially UNSAT.

        May be called between ``solve()`` calls — the trail is unwound to
        the root level first, so learnt knowledge is kept but nothing above
        level 0 survives.
        """
        if not self._ok:
            return False
        self._cancel_until(0)
        seen: dict[int, int] = {}
        clause: list[int] = []
        for lit in lits:
            lit = int(lit)
            var = abs(lit)
            if var == 0:
                raise ValueError("0 is not a literal")
            self.ensure_vars(var)
            if self._value(lit) == 1:
                return True  # satisfied at the root level
            if self._value(lit) == -1:
                continue  # false at the root level: drop the literal
            prev = seen.get(var)
            if prev is None:
                seen[var] = lit
                clause.append(lit)
            elif prev != lit:
                return True  # tautology (v and not v)
        if not clause:
            self._ok = False
            return False
        if len(clause) == 1:
            self._enqueue(clause[0], None)
            self._ok = self._propagate() is None
            return self._ok
        ci = len(self._clauses)
        self._clauses.append(clause)
        self._watches[self._widx(clause[0])].append(ci)
        self._watches[self._widx(clause[1])].append(ci)
        return True

    def add_clauses(self, clauses: Iterable[Sequence[int]]) -> bool:
        """Add many clauses; returns the final ``ok`` flag."""
        ok = True
        for clause in clauses:
            ok = self.add_clause(clause)
            if not ok:
                break
        return ok

    # ------------------------------------------------------------------ #
    # Trail
    # ------------------------------------------------------------------ #

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _enqueue(self, lit: int, reason: Optional[int]) -> bool:
        var = abs(lit)
        if self._assign[var] != 0:
            return self._value(lit) == 1
        self._assign[var] = 1 if lit > 0 else -1
        self._level[var] = self._decision_level()
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _cancel_until(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        bound = self._trail_lim[level]
        for lit in reversed(self._trail[bound:]):
            var = abs(lit)
            self._saved_phase[var] = self._assign[var]
            self._assign[var] = 0
            self._reason[var] = None
        del self._trail[bound:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    # ------------------------------------------------------------------ #
    # Propagation
    # ------------------------------------------------------------------ #

    def _propagate(self) -> Optional[int]:
        """Unit propagation; returns a conflicting clause index or None."""
        clauses = self._clauses
        watches = self._watches
        while self._qhead < len(self._trail):
            lit = self._trail[self._qhead]
            self._qhead += 1
            self.stats["propagations"] += 1
            neg = -lit
            widx = self._widx(neg)
            watchers = watches[widx]
            i = j = 0
            n = len(watchers)
            conflict: Optional[int] = None
            while i < n:
                ci = watchers[i]
                i += 1
                clause = clauses[ci]
                if clause[0] == neg:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) == 1:
                    watchers[j] = ci
                    j += 1
                    continue
                moved = False
                for k in range(2, len(clause)):
                    if self._value(clause[k]) != -1:
                        clause[1], clause[k] = clause[k], clause[1]
                        watches[self._widx(clause[1])].append(ci)
                        moved = True
                        break
                if moved:
                    continue
                # clause is unit or conflicting under the current trail
                watchers[j] = ci
                j += 1
                if self._value(first) == -1:
                    conflict = ci
                    while i < n:  # keep the remaining watchers intact
                        watchers[j] = watchers[i]
                        j += 1
                        i += 1
                    break
                self._enqueue(first, ci)
            del watchers[j:]
            if conflict is not None:
                self._qhead = len(self._trail)
                return conflict
        return None

    # ------------------------------------------------------------------ #
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------ #

    def _bump(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            inverse = 1e-100
            for v in range(1, self._num_vars + 1):
                self._activity[v] *= inverse
            self._var_inc *= inverse

    def _analyze(self, confl: int) -> tuple[list[int], int]:
        seen = bytearray(self._num_vars + 1)
        learnt: list[int] = [0]  # slot 0 holds the asserting literal
        bt_level = 0
        counter = 0
        p: Optional[int] = None
        index = len(self._trail)
        current = self._decision_level()
        while True:
            clause = self._clauses[confl]
            for q in clause if p is None else clause[1:]:
                var = abs(q)
                if not seen[var] and self._level[var] > 0:
                    seen[var] = 1
                    self._bump(var)
                    if self._level[var] >= current:
                        counter += 1
                    else:
                        learnt.append(q)
                        if self._level[var] > bt_level:
                            bt_level = self._level[var]
            while True:
                index -= 1
                p = self._trail[index]
                if seen[abs(p)]:
                    break
            counter -= 1
            if counter == 0:
                break
            seen[abs(p)] = 0
            confl = self._reason[abs(p)]
        learnt[0] = -p
        return learnt, bt_level

    def _record_learnt(self, learnt: list[int]) -> None:
        self.stats["learned"] += 1
        if len(learnt) == 1:
            self._enqueue(learnt[0], None)
            return
        # the second watch must sit at the backjump level (highest level
        # among the non-asserting literals) for the invariant to hold
        best = 1
        for k in range(2, len(learnt)):
            if self._level[abs(learnt[k])] > self._level[abs(learnt[best])]:
                best = k
        learnt[1], learnt[best] = learnt[best], learnt[1]
        ci = len(self._clauses)
        self._clauses.append(learnt)
        self._watches[self._widx(learnt[0])].append(ci)
        self._watches[self._widx(learnt[1])].append(ci)
        self._enqueue(learnt[0], ci)

    # ------------------------------------------------------------------ #
    # Decisions
    # ------------------------------------------------------------------ #

    def _pick_branch_var(self) -> Optional[int]:
        best = None
        best_act = -1.0
        activity = self._activity
        assign = self._assign
        for var in range(1, self._num_vars + 1):
            if assign[var] == 0 and activity[var] > best_act:
                best_act = activity[var]
                best = var
        return best

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #

    def solve(
        self,
        assumptions: Sequence[int] = (),
        max_conflicts: Optional[int] = None,
    ) -> Optional[bool]:
        """Solve the current formula (optionally under unit assumptions).

        Returns True (satisfiable; read the assignment via :meth:`model`),
        False (unsatisfiable — under the assumptions, if any were given), or
        None when ``max_conflicts`` was exhausted first.
        """
        if not self._ok:
            return False
        self._cancel_until(0)
        if self._propagate() is not None:
            self._ok = False
            return False
        assumptions = [int(a) for a in assumptions]
        for lit in assumptions:
            self.ensure_vars(abs(lit))
        restarts = 0
        budget = self._restart_base * _luby(restarts + 1)
        conflicts_since_restart = 0
        total_conflicts = 0
        while True:
            confl = self._propagate()
            if confl is not None:
                self.stats["conflicts"] += 1
                total_conflicts += 1
                conflicts_since_restart += 1
                if self._decision_level() == 0:
                    self._ok = False
                    return False
                learnt, bt_level = self._analyze(confl)
                self._cancel_until(bt_level)
                self._record_learnt(learnt)
                self._var_inc *= self._var_decay
                if max_conflicts is not None and total_conflicts >= max_conflicts:
                    self._cancel_until(0)
                    return None
                continue
            if conflicts_since_restart >= budget:
                self.stats["restarts"] += 1
                restarts += 1
                budget = self._restart_base * _luby(restarts + 1)
                conflicts_since_restart = 0
                self._cancel_until(0)
                continue
            # place pending assumptions first, one decision level each
            level = self._decision_level()
            if level < len(assumptions):
                lit = assumptions[level]
                value = self._value(lit)
                if value == -1:
                    return False  # refuted under the earlier assumptions
                self._trail_lim.append(len(self._trail))
                if value == 0:
                    self._enqueue(lit, None)
                continue
            var = self._pick_branch_var()
            if var is None:
                return True
            self.stats["decisions"] += 1
            self._trail_lim.append(len(self._trail))
            phase = self._saved_phase[var]
            self._enqueue(var if phase > 0 else -var, None)


# ---------------------------------------------------------------------- #
# Optional pysat fast path
# ---------------------------------------------------------------------- #


def pysat_available() -> bool:
    """True when the optional `pysat` package can actually be imported."""
    try:
        from pysat.solvers import Solver  # noqa: F401
    except Exception:  # pragma: no cover - absent in the reference env
        return False
    return True  # pragma: no cover


class PysatSolver:
    """Adapter exposing a `pysat` solver behind the CDCLSolver interface.

    Only constructed when `pysat` imports; tier-1 never instantiates it.
    """

    def __init__(self, num_vars: int = 0, seed: int = 0, engine: str = "glucose3"):
        from pysat.solvers import Solver

        self.seed = seed
        self._solver = Solver(name=engine)
        self._num_vars = num_vars
        self._model: dict[int, bool] = {}
        # the same key set as CDCLSolver.stats, so instrumentation reads a
        # uniform surface; pysat fills in what its accum_stats() exposes
        self.stats = {
            "conflicts": 0,
            "decisions": 0,
            "propagations": 0,
            "restarts": 0,
            "learned": 0,
        }

    @property
    def num_vars(self) -> int:
        return self._num_vars

    def new_var(self) -> int:
        self._num_vars += 1
        return self._num_vars

    def ensure_vars(self, count: int) -> None:
        self._num_vars = max(self._num_vars, count)

    def add_clause(self, lits) -> bool:
        lits = [int(l) for l in lits]
        for lit in lits:
            self.ensure_vars(abs(lit))
        self._solver.add_clause(lits)
        return True

    def add_clauses(self, clauses) -> bool:
        for clause in clauses:
            self.add_clause(clause)
        return True

    def solve(self, assumptions=(), max_conflicts=None) -> Optional[bool]:
        result = self._solver.solve(assumptions=list(assumptions))
        if result:
            self._model = {abs(l): l > 0 for l in self._solver.get_model() or ()}
        try:  # pragma: no cover - depends on the optional extra
            accumulated = self._solver.accum_stats() or {}
            for key in ("conflicts", "decisions", "propagations", "restarts"):
                if key in accumulated:
                    self.stats[key] = int(accumulated[key])
        except Exception:  # noqa: BLE001 - stats are best-effort telemetry
            pass
        return bool(result)

    def value_of(self, var: int) -> Optional[bool]:
        return self._model.get(var)

    def model(self) -> dict[int, bool]:
        return dict(self._model)


def new_solver(seed: int = 0, prefer: Optional[str] = None):
    """Construct a solver: the pure-python CDCL engine, or `pysat` if asked.

    ``prefer`` (or ``$REPRO_SAT_SOLVER``) selects ``"cdcl"`` (default),
    ``"pysat"`` (errors if absent), or ``"auto"`` (pysat when available).
    """
    choice = (prefer or os.environ.get("REPRO_SAT_SOLVER") or "cdcl").lower()
    if choice == "cdcl":
        return CDCLSolver(seed=seed)
    if choice == "pysat":
        if not pysat_available():
            raise RuntimeError(
                "REPRO_SAT_SOLVER=pysat requested but the pysat package is "
                "not installed (tier-1 stays dependency-free: use cdcl)"
            )
        return PysatSolver(seed=seed)  # pragma: no cover
    if choice == "auto":
        if pysat_available():  # pragma: no cover
            return PysatSolver(seed=seed)
        return CDCLSolver(seed=seed)
    raise ValueError(f"unknown SAT solver preference {choice!r}")


# ---------------------------------------------------------------------- #
# Reference oracle
# ---------------------------------------------------------------------- #


def _reference_dpll(
    clauses: Sequence[Sequence[int]], num_vars: Optional[int] = None
) -> tuple[bool, Optional[dict[int, bool]]]:
    """Naive DPLL with unit propagation — the differential oracle.

    Exponential and recursion-based: only for the randomized differential
    tests (small formulas), never for synthesis.
    """
    if num_vars is None:
        num_vars = max((abs(l) for c in clauses for l in c), default=0)
    assignment: dict[int, bool] = {}

    def propagate(clauses):
        """Exhaustive unit propagation; returns residual clauses or None."""
        changed = True
        while changed:
            changed = False
            units = [c[0] for c in clauses if len(c) == 1]
            if not units:
                break
            for unit in units:
                var, value = abs(unit), unit > 0
                if assignment.get(var, value) != value:
                    return None
                assignment[var] = value
                residual = []
                for clause in clauses:
                    if unit in clause:
                        continue
                    reduced = [l for l in clause if l != -unit]
                    if not reduced:
                        return None
                    residual.append(reduced)
                clauses = residual
                changed = True
        return clauses

    def recurse(clauses) -> bool:
        clauses = propagate(clauses)
        if clauses is None:
            return False
        if not clauses:
            return True
        var = min(abs(l) for c in clauses for l in c)
        saved = dict(assignment)
        for value in (False, True):
            lit = var if value else -var
            assignment.clear()
            assignment.update(saved)
            if recurse(clauses + [[lit]]):
                return True
        assignment.clear()
        assignment.update(saved)
        return False

    normalized = [list(dict.fromkeys(int(l) for l in c)) for c in clauses]
    if any(not clause for clause in normalized):
        return False, None
    # tautological clauses (v and not v) are always satisfied: drop them
    if recurse([c for c in normalized if not any(-l in c for l in c)]):
        for var in range(1, num_vars + 1):
            assignment.setdefault(var, False)
        return True, assignment
    return False, None
