"""The corpus quarantine: minimal counterexamples as committed artifacts.

When a campaign confirms a failure, the shrunken STG is *filed* here as a
canonical ``.g`` file next to a ``.reason.json`` sidecar recording what
failed, whether the fault was injected, and the recipe/seed that produced
the original.  The directory is a regression corpus: tier-1 replays every
entry through the differential check suite and asserts the recorded
expectation (``"failure"`` — the bug must still reproduce under its
recorded fault configuration — or ``"pass"`` — a once-broken spec that the
fix must keep green).

This tier is deliberately *outside* the content-addressed artifact store:
``ArtifactStore.clear()``/``sweep()`` manage derived, recomputable results,
while quarantined counterexamples are primary evidence and must survive
both (see ``tests/test_corpus_quarantine.py``).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.api.faults import get_injector
from repro.api.spec import Spec
from repro.stg.stg import STG
from repro.stg.writer import write_g

#: Environment override for the quarantine root (CI points it at a tmpdir).
QUARANTINE_ENV_VAR = "REPRO_CORPUS_QUARANTINE"

#: Default location, relative to the current working directory.
DEFAULT_QUARANTINE_DIR = os.path.join("corpus", "quarantine")


@dataclass
class QuarantineEntry:
    """One filed counterexample: the ``.g`` artifact plus its reason."""

    path: Path
    reason: dict

    @property
    def name(self) -> str:
        return self.path.stem

    @property
    def spec(self) -> Spec:
        return Spec.from_file(self.path)

    @property
    def expect(self) -> str:
        """``"failure"`` (must still reproduce) or ``"pass"`` (must stay green)."""
        return self.reason.get("expect", "failure")


@dataclass
class ReplayResult:
    """Outcome of replaying one quarantined entry."""

    entry: QuarantineEntry
    report: object
    expected: str
    observed: str

    @property
    def ok(self) -> bool:
        return self.expected == self.observed


class CorpusQuarantine:
    """A directory of minimal counterexample STGs with reason sidecars."""

    def __init__(self, root: Union[str, os.PathLike, None] = None):
        if root is None:
            root = os.environ.get(QUARANTINE_ENV_VAR) or DEFAULT_QUARANTINE_DIR
        self.root = Path(root)

    def file(self, stg: STG, reason: dict) -> Path:
        """File a counterexample; returns the path of the ``.g`` artifact.

        The filename is ``<check>-<hash12>.g`` — the failing check plus the
        content hash of the canonical text — so refiling the same minimal
        counterexample is idempotent and distinct bugs never collide.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        spec = Spec.from_stg(stg, name=stg.name)
        check = str(reason.get("check", "fail")).replace(os.sep, "_")
        path = self.root / f"{check}-{spec.content_hash[:12]}.g"
        path.write_text(write_g(stg), encoding="utf-8")
        sidecar = path.with_suffix(".reason.json")
        sidecar.write_text(
            json.dumps(reason, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        return path

    def entries(self) -> list[QuarantineEntry]:
        """All filed counterexamples, sorted by filename."""
        if not self.root.is_dir():
            return []
        entries = []
        for path in sorted(self.root.glob("*.g")):
            sidecar = path.with_suffix(".reason.json")
            reason: dict = {}
            if sidecar.is_file():
                try:
                    reason = json.loads(sidecar.read_text(encoding="utf-8"))
                except (OSError, json.JSONDecodeError):
                    reason = {}
            entries.append(QuarantineEntry(path=path, reason=reason))
        return entries

    def __len__(self) -> int:
        return len(self.entries())

    def replay(self, max_markings: Optional[int] = None) -> Iterator[ReplayResult]:
        """Re-run the check suite on every entry under its recorded faults.

        Yields one :class:`ReplayResult` per entry; ``ok`` means the
        observed outcome matches the recorded expectation.
        """
        from repro.corpus.checks import run_check_suite

        for entry in self.entries():
            reason = entry.reason
            faults = get_injector(reason["faults"]) if reason.get("faults") else None
            report = run_check_suite(
                entry.spec,
                max_markings=max_markings or reason.get("max_markings", 600),
                faults=faults,
                force_flip=bool(reason.get("force_flip")),
            )
            observed = "pass" if report.ok else "failure"
            yield ReplayResult(
                entry=entry,
                report=report,
                expected=entry.expect,
                observed=observed,
            )

    def __repr__(self) -> str:
        return f"CorpusQuarantine({str(self.root)!r}, entries={len(self)})"
