"""The fuzzing-farm campaign runner behind ``repro fuzz run``.

One campaign = generate ``count`` seeded corpus specs, fan their
differential check suites out over the :class:`~repro.api.scheduler.Scheduler`
(sequential or process pool — results are identical by construction),
then shrink every failure to a minimal counterexample STG and file it in
the :class:`~repro.corpus.quarantine.CorpusQuarantine`.

Determinism contract: the campaign ``digest`` — a hash over the generated
spec hashes and the (spec, check, injected) failure triples — is a pure
function of ``(count, seed, faults)``.  Worker count, scheduling order and
wall clock never enter it, which is what makes "zero unexplained
mismatches over a 1000-spec campaign" a *reproducible* claim.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Union

from repro.api.faults import FaultInjector, get_injector
from repro.api.scheduler import Job, Scheduler
from repro.api.spec import Spec
from repro.corpus.checks import run_check_suite
from repro.corpus.generator import (
    CorpusSpec,
    GeneratorConfig,
    build_from_recipe,
    generate_spec,
)
from repro.corpus.quarantine import CorpusQuarantine
from repro.corpus.shrink import shrink_recipe, shrink_stg
from repro.synthesis.engine import SynthesisOptions

#: dotted path the scheduler resolves on both sides of the pool boundary
CHECK_RUNNER = "repro.corpus.checks:run_corpus_job"


@dataclass
class CampaignConfig:
    """Knobs of one fuzzing campaign."""

    count: int = 100
    seed: int = 0
    jobs: int = 0  # scheduler fan-out; <=1 sequential, n>1 pool, <0 cpu count
    max_markings: int = 600
    time_budget: Optional[float] = None  # seconds; bounds *generation*
    faults: Union[FaultInjector, str, None] = None
    quarantine: Union[CorpusQuarantine, str, None] = None
    shrink: bool = True
    store: object = None  # optional ArtifactStore (instance or path)
    generator: Optional[GeneratorConfig] = None


@dataclass
class CampaignFinding:
    """One confirmed failure, after shrinking and quarantining."""

    spec_name: str
    spec_hash: str
    check: str
    detail: str
    injected: bool
    quarantined: Optional[str] = None  # path of the filed minimal .g
    minimal_hash: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            "spec": self.spec_name,
            "spec_hash": self.spec_hash,
            "check": self.check,
            "detail": self.detail,
            "injected": self.injected,
            "quarantined": self.quarantined,
            "minimal_hash": self.minimal_hash,
        }


@dataclass
class CampaignReport:
    """Outcome of one campaign (JSON-able via :meth:`to_dict`)."""

    requested: int
    seed: int
    generated: int = 0
    checked: int = 0
    by_class: dict = field(default_factory=dict)
    consistent: int = 0
    synthesized: int = 0
    findings: list = field(default_factory=list)
    budget_exhausted: bool = False
    total_seconds: float = 0.0
    generation_seconds: float = 0.0
    digest: str = ""

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def specs_per_second(self) -> float:
        if self.total_seconds <= 0:
            return 0.0
        return self.checked / self.total_seconds

    def to_dict(self) -> dict:
        return {
            "requested": self.requested,
            "seed": self.seed,
            "generated": self.generated,
            "checked": self.checked,
            "by_class": dict(sorted(self.by_class.items())),
            "consistent": self.consistent,
            "synthesized": self.synthesized,
            "findings": [f.to_dict() for f in self.findings],
            "budget_exhausted": self.budget_exhausted,
            "total_seconds": round(self.total_seconds, 3),
            "generation_seconds": round(self.generation_seconds, 3),
            "specs_per_second": round(self.specs_per_second, 2),
            "digest": self.digest,
            "ok": self.ok,
        }


def _failure_predicate(check: str, force_flip: bool, max_markings: int) -> Callable:
    """A shrink predicate: does the candidate still fail the same check?"""

    def failing(stg) -> bool:
        spec = Spec.from_stg(stg, name="shrink")
        report = run_check_suite(
            spec, max_markings=max_markings, force_flip=force_flip
        )
        return any(f.check == check for f in report.failures)

    return failing


def _shrink_and_file(
    corpus_spec: CorpusSpec,
    failure,
    config: CampaignConfig,
    quarantine: Optional[CorpusQuarantine],
    injector: Optional[FaultInjector],
) -> CampaignFinding:
    """Reduce one failure to a minimal STG and file it (runs in-parent).

    Injected ``corpus.flip`` failures shrink under ``force_flip=True`` —
    the planted corruption is applied unconditionally, so the reduction is
    not chasing a moving hash-keyed fault decision.
    """
    force_flip = bool(failure.injected)
    predicate = _failure_predicate(failure.check, force_flip, config.max_markings)
    minimal = corpus_spec.spec.stg
    if config.shrink:
        recipe = shrink_recipe(corpus_spec.recipe, predicate)
        try:
            minimal = build_from_recipe(recipe)
        except (KeyError, ValueError):
            minimal = corpus_spec.spec.stg
        minimal = shrink_stg(minimal, predicate)
        # normalize the model name so identical minimal counterexamples from
        # different campaign specs hash identically and dedupe on filing
        minimal = minimal.copy(name=f"min_{failure.check}")
    finding = CampaignFinding(
        spec_name=corpus_spec.spec.name,
        spec_hash=corpus_spec.spec.content_hash,
        check=failure.check,
        detail=failure.detail,
        injected=failure.injected,
    )
    if quarantine is not None:
        minimal_spec = Spec.from_stg(minimal, name=corpus_spec.spec.name)
        reason = {
            "check": failure.check,
            "detail": failure.detail,
            "injected": failure.injected,
            "expect": "failure",
            "force_flip": force_flip,
            "faults": injector.to_text() if (injector and not force_flip) else None,
            "seed": corpus_spec.seed,
            "index": corpus_spec.index,
            "recipe": corpus_spec.recipe,
            "original_hash": corpus_spec.spec.content_hash,
            "max_markings": config.max_markings,
        }
        path = quarantine.file(minimal, reason)
        finding.quarantined = str(path)
        finding.minimal_hash = minimal_spec.content_hash
    return finding


def run_campaign(
    config: CampaignConfig, on_event: Optional[Callable] = None
) -> CampaignReport:
    """Run one full generate → check → shrink → quarantine campaign."""
    started = time.monotonic()
    deadline = started + config.time_budget if config.time_budget else None
    generator_config = config.generator or GeneratorConfig(
        max_markings=config.max_markings
    )
    injector = get_injector(config.faults)
    quarantine = config.quarantine
    if isinstance(quarantine, (str, bytes)) or hasattr(quarantine, "__fspath__"):
        quarantine = CorpusQuarantine(quarantine)

    report = CampaignReport(requested=config.count, seed=config.seed)

    # ---- generate (budget-aware, deterministic by (seed, index))
    corpus: list[CorpusSpec] = []
    for index in range(config.count):
        if deadline is not None and time.monotonic() > deadline:
            report.budget_exhausted = True
            break
        corpus.append(generate_spec(config.seed, index, generator_config))
    report.generated = len(corpus)
    report.generation_seconds = time.monotonic() - started

    # ---- check (scheduler fan-out; results keyed by job index)
    options = SynthesisOptions(assume_csc=True)
    jobs = [
        Job(
            spec=cs.spec,
            options=options,
            max_markings=config.max_markings,
            runner=CHECK_RUNNER,
            payload={"max_markings": config.max_markings},
        )
        for cs in corpus
    ]
    scheduler = Scheduler(
        jobs=config.jobs,
        store=config.store,
        on_event=on_event,
        faults=injector,
    )
    reports_by_index: dict[int, object] = {}
    crashes_by_index: dict[int, BaseException] = {}
    if jobs:
        for result in scheduler.iter_results(jobs):
            if result.report is not None:
                reports_by_index[result.index] = result.report
            elif result.error is not None:
                crashes_by_index[result.index] = result.error

    # ---- tally + shrink + quarantine, in job order (digest stability)
    digest_material: list = [[cs.spec.content_hash for cs in corpus]]
    for index, corpus_spec in enumerate(corpus):
        check_report = reports_by_index.get(index)
        if check_report is None:
            error = crashes_by_index.get(index)
            detail = f"{type(error).__name__}: {error}" if error else "no result"
            finding = CampaignFinding(
                spec_name=corpus_spec.spec.name,
                spec_hash=corpus_spec.spec.content_hash,
                check="crash",
                detail=detail[:500],
                injected=False,
            )
            report.findings.append(finding)
            digest_material.append(
                [corpus_spec.spec.content_hash, "crash", False]
            )
            continue
        report.checked += 1
        klass = check_report.klass
        report.by_class[klass] = report.by_class.get(klass, 0) + 1
        report.consistent += bool(check_report.consistent)
        report.synthesized += bool(check_report.synthesized)
        for failure in check_report.failures:
            digest_material.append(
                [corpus_spec.spec.content_hash, failure.check, failure.injected]
            )
            report.findings.append(
                _shrink_and_file(corpus_spec, failure, config, quarantine, injector)
            )

    report.digest = hashlib.sha256(
        json.dumps(digest_material, sort_keys=True).encode("utf-8")
    ).hexdigest()[:16]
    report.total_seconds = time.monotonic() - started
    return report
