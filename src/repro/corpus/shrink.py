"""Greedy delta-debugging of failing corpus specs.

Two levels, applied in order by the campaign runner:

* :func:`shrink_recipe` reduces over the *composition tree* — drop whole
  idioms (with their dependent rewires), rewires and mutations from the
  recipe and keep any reduction that still fails.  This removes entire
  subsystems at once and is where most of the shrinking happens.
* :func:`shrink_stg` then reduces the STG itself — drop signals,
  transitions, places and arcs one at a time, and lower multi-token
  markings — until no single removal preserves the failure (a 1-minimal
  counterexample).

Every candidate is round-tripped through the canonical ``.g`` writer and
parser before testing, so the minimal STG that lands in quarantine is
exactly the artifact a replay will parse.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.stg.parser import GFormatError, parse_g
from repro.stg.stg import STG
from repro.stg.writer import write_g

Predicate = Callable[[STG], bool]


def _still_fails(candidate: STG, failing: Predicate) -> bool:
    """True when the canonicalized candidate still reproduces the failure.

    Any exception — a malformed net, an unwritable STG, a crash in the
    predicate that is not the failure itself — rejects the candidate; the
    shrinker only moves between *valid* specs.
    """
    try:
        canonical = parse_g(write_g(candidate))
    except (GFormatError, KeyError, ValueError):
        return False
    try:
        return bool(failing(canonical))
    except Exception:  # noqa: BLE001 — predicates decide, never crash the loop
        return False


def _without_signal(stg: STG, signal: str) -> Optional[STG]:
    if len(stg.signal_names) <= 1:
        return None
    clone = stg.copy()
    for transition in list(clone.transitions_of_signal(signal)):
        clone.net.remove_transition(transition)
    for place in list(clone.places):
        if not (clone.net.preset(place) | clone.net.postset(place)):
            clone.net.remove_place(place)
    clone._labels = {
        name: label for name, label in clone._labels.items() if label.signal != signal
    }
    clone._signals.pop(signal, None)
    clone._initial_values.pop(signal, None)
    return clone


def _without_transition(stg: STG, transition: str) -> STG:
    clone = stg.copy()
    clone.net.remove_transition(transition)
    clone._labels.pop(transition, None)
    for place in list(clone.places):
        if not (clone.net.preset(place) | clone.net.postset(place)):
            clone.net.remove_place(place)
    return clone


def _without_place(stg: STG, place: str) -> STG:
    clone = stg.copy()
    clone.net.remove_place(place)
    return clone


def _without_arc(stg: STG, source: str, target: str) -> STG:
    clone = stg.copy()
    clone.net.remove_arc(source, target)
    return clone


def _with_one_token(stg: STG, place: str) -> STG:
    clone = stg.copy()
    clone.net.set_initial_tokens(place, 1)
    return clone


def shrink_stg(stg: STG, failing: Predicate, max_rounds: int = 20) -> STG:
    """Greedy 1-minimal reduction of a failing STG.

    Repeats first-improvement passes (signals, transitions, places, arcs,
    token counts — in deterministic sorted order) until a full round makes
    no progress or ``max_rounds`` is hit.
    """
    current = stg
    for _ in range(max_rounds):
        progressed = False

        for signal in sorted(current.signal_names):
            candidate = _without_signal(current, signal)
            if candidate is not None and _still_fails(candidate, failing):
                current = parse_g(write_g(candidate))
                progressed = True
                break
        if progressed:
            continue

        for transition in sorted(current.transitions):
            candidate = _without_transition(current, transition)
            if _still_fails(candidate, failing):
                current = parse_g(write_g(candidate))
                progressed = True
                break
        if progressed:
            continue

        for place in sorted(current.places):
            candidate = _without_place(current, place)
            if _still_fails(candidate, failing):
                current = parse_g(write_g(candidate))
                progressed = True
                break
        if progressed:
            continue

        for source, target in sorted(current.net.arcs()):
            candidate = _without_arc(current, source, target)
            if _still_fails(candidate, failing):
                current = parse_g(write_g(candidate))
                progressed = True
                break
        if progressed:
            continue

        for place in sorted(current.initial_marking):
            if current.initial_marking.tokens(place) > 1:
                candidate = _with_one_token(current, place)
                if _still_fails(candidate, failing):
                    current = parse_g(write_g(candidate))
                    progressed = True
                    break

        if not progressed:
            break
    return current


def shrink_recipe(recipe: dict, failing: Predicate) -> dict:
    """Reduce a recipe over the composition tree (idioms, rewires, mutations).

    Returns the smallest recipe whose replayed STG still fails.  Dropping an
    idiom also drops every rewire that references one of its transitions
    (they could not replay otherwise).
    """
    from repro.corpus.generator import build_from_recipe
    from repro.corpus.idioms import IDIOMS

    def replay_fails(candidate: dict) -> bool:
        try:
            stg = build_from_recipe(candidate)
        except (KeyError, ValueError):
            return False
        return _still_fails(stg, failing)

    current = dict(recipe)
    if current.get("kind") == "random":
        # no composition tree; only the mutation list can shrink
        mutations = list(current.get("mutations", ()))
        for index in range(len(mutations) - 1, -1, -1):
            candidate = dict(current)
            candidate["mutations"] = mutations[:index] + mutations[index + 1:]
            if replay_fails(candidate):
                mutations = candidate["mutations"]
                current = candidate
        return current

    progressed = True
    while progressed:
        progressed = False

        idioms = list(current.get("idioms", ()))
        for index in range(len(idioms) - 1, -1, -1):
            prefix = idioms[index]["prefix"]
            candidate = dict(current)
            candidate["idioms"] = idioms[:index] + idioms[index + 1:]
            candidate["rewires"] = [
                rewire
                for rewire in current.get("rewires", ())
                if not rewire["source"].startswith(prefix)
                and not rewire["target"].startswith(prefix)
            ]
            if candidate["idioms"] and replay_fails(candidate):
                current = candidate
                progressed = True
                break
        if progressed:
            continue

        idioms = list(current.get("idioms", ()))
        for index, entry in enumerate(idioms):
            _, param_spec = IDIOMS.get(entry["name"], (None, {}))
            for key in sorted(entry.get("params", {})):
                value = entry["params"][key]
                low = param_spec.get(key, (1, value))[0]
                if not isinstance(value, int) or value <= low:
                    continue
                smaller = dict(entry, params=dict(entry["params"], **{key: value - 1}))
                candidate = dict(current)
                candidate["idioms"] = idioms[:index] + [smaller] + idioms[index + 1:]
                if replay_fails(candidate):
                    current = candidate
                    progressed = True
                    break
            if progressed:
                break
        if progressed:
            continue

        rewires = list(current.get("rewires", ()))
        for index in range(len(rewires) - 1, -1, -1):
            candidate = dict(current)
            candidate["rewires"] = rewires[:index] + rewires[index + 1:]
            if replay_fails(candidate):
                current = candidate
                progressed = True
                break
        if progressed:
            continue

        mutations = list(current.get("mutations", ()))
        for index in range(len(mutations) - 1, -1, -1):
            candidate = dict(current)
            candidate["mutations"] = mutations[:index] + mutations[index + 1:]
            if replay_fails(candidate):
                current = candidate
                progressed = True
                break

    return current
