"""The differential check suite the fuzzing farm runs per corpus spec.

Every compiled/bit-parallel code path in the repository keeps its original
dict-and-set implementation as a ``_reference_*`` oracle.  This module runs
one generated spec through *all* of them — reachability, concurrency,
marked regions, encoding, consistency, state coding, both synthesis
backends in :func:`~repro.api.backends.compare` mode, mapped-netlist
verification, and (on small specs) the exact SAT backend, which must agree
with the state-based baseline on every code *and* never produce more
literals than it — and records any disagreement as a :class:`CheckFailure`.

The ``corpus.flip`` fault site plants a regression on demand: when the
bound injector fires (or ``force_flip`` is set), the first SOP literal of
the mapped netlist is inverted before verification.  The farm must then
*catch* the planted bug (a failure record marked ``injected=True``) —
missing it is itself a failure — which exercises the shrink/quarantine
machinery end to end without shipping a real bug.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.api.backends import compare
from repro.api.faults import FaultInjector
from repro.api.spec import Spec
from repro.gates.ir import GateKind
from repro.gates.verify import _reference_verify_mapped_netlist, verify_mapped_netlist
from repro.petri.reachability import (
    StateSpaceLimitExceeded,
    _reference_build_reachability_graph,
    _reference_concurrent_pairs_from_rg,
    _reference_count_reachable_markings,
    _reference_marking_sets_of_places,
    build_reachability_graph,
    concurrent_pairs_from_rg,
    count_reachable_markings,
    marking_sets_of_places,
)
from repro.statebased.coding import _reference_analyze_state_coding, analyze_state_coding
from repro.statebased.synthesis import StateBasedSynthesisError
from repro.stg.consistency import (
    _reference_adjacent_transition_pairs,
    _reference_find_autoconcurrent_pairs,
    _reference_find_semimodularity_violations,
    adjacent_transition_pairs,
    find_autoconcurrent_pairs,
    find_semimodularity_violations,
)
from repro.stg.encoding import (
    EncodingError,
    _reference_encode_reachability_graph,
    encode_reachability_graph,
)
from repro.synthesis.engine import SynthesisError, SynthesisOptions
from repro.synthesis.mapping import map_circuit

#: exact synthesis is exponential in the worst case; corpus specs above
#: this many reachable states skip the SAT cross-check (the differential
#: value concentrates in small specs anyway — minima are enumerable there)
SAT_CHECK_MAX_STATES = 200


@dataclass
class CheckFailure:
    """One differential disagreement (or crash) on one spec."""

    check: str
    detail: str
    injected: bool = False

    def to_dict(self) -> dict:
        return {"check": self.check, "detail": self.detail, "injected": self.injected}


@dataclass
class CheckReport:
    """Outcome of the full differential suite on one spec (picklable)."""

    spec_name: str
    spec_hash: str
    states: int = 0
    klass: str = "unknown"
    consistent: bool = False
    live: bool = False
    synthesized: bool = False
    failures: list = field(default_factory=list)
    total_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def event_detail(self) -> str:
        """One-line summary for the scheduler's ``done`` event."""
        verdict = "ok" if self.ok else f"{len(self.failures)} FAIL"
        return f"{self.states} states, {self.klass}, {verdict}"

    def to_dict(self) -> dict:
        return {
            "spec": self.spec_name,
            "spec_hash": self.spec_hash,
            "states": self.states,
            "class": self.klass,
            "consistent": self.consistent,
            "live": self.live,
            "synthesized": self.synthesized,
            "failures": [f.to_dict() for f in self.failures],
            "total_seconds": self.total_seconds,
        }


def _edges_of(graph) -> list:
    """Edge list in discovery order: (source, transition, target) triples."""
    edges = []
    for marking in graph:
        for transition, target in sorted(graph.successors(marking)):
            edges.append((marking, transition, target))
    return edges


def _flip_first_literal(netlist):
    """Invert one SOP literal polarity — the planted mapped-netlist bug."""
    for index, gate in enumerate(netlist.gates):
        if gate.kind is GateKind.SOP and gate.terms:
            (pin, polarity), *rest = gate.terms[0]
            terms = (((pin, 1 - polarity), *rest),) + tuple(gate.terms[1:])
            netlist.gates[index] = dataclasses.replace(gate, terms=terms)
            return True
    return False


def run_check_suite(
    spec: Spec,
    max_markings: int = 600,
    faults: Optional[FaultInjector] = None,
    pipeline=None,
    force_flip: bool = False,
) -> CheckReport:
    """Run every differential check on one spec.

    Graph-level checks (reachability, concurrency, encoding, consistency)
    run on *every* spec — inconsistent and deadlocking STGs included, since
    the compiled kernels must agree with the references off the happy path
    too.  Synthesis-level checks run only where synthesis is defined.
    """
    started = time.monotonic()
    report = CheckReport(spec_name=spec.name, spec_hash=spec.content_hash)
    stg = spec.stg
    net = stg.net

    def fail(check: str, detail: str, injected: bool = False) -> None:
        report.failures.append(CheckFailure(check, str(detail)[:500], injected))

    # ---- reachability: compiled (safe or k-bounded packed) vs reference
    graph = reference = None
    try:
        graph = build_reachability_graph(net, max_markings=max_markings)
    except StateSpaceLimitExceeded:
        graph = None
    try:
        reference = _reference_build_reachability_graph(
            net, stg.initial_marking, max_markings=max_markings
        )
    except StateSpaceLimitExceeded:
        reference = None
    if (graph is None) != (reference is None):
        fail(
            "reachability",
            "state-space limit parity: compiled "
            f"{'exceeded' if graph is None else 'completed'}, reference "
            f"{'exceeded' if reference is None else 'completed'}",
        )
        report.total_seconds = time.monotonic() - started
        return report
    if graph is None:
        report.klass = "unbounded?"
        report.total_seconds = time.monotonic() - started
        return report

    report.states = len(graph)
    safe = all(marking.is_safe() for marking in graph.markings)
    report.klass = "safe" if safe else "k-bounded"
    report.live = not graph.deadlocks()

    if list(graph.markings) != list(reference.markings):
        fail("reachability", "marking discovery order diverges from reference")
    elif _edges_of(graph) != _edges_of(reference):
        fail("reachability", "edge sets diverge from reference")

    try:
        count = count_reachable_markings(net, max_markings=max_markings)
        reference_count = _reference_count_reachable_markings(
            net, stg.initial_marking, max_markings=max_markings
        )
        if count != reference_count:
            fail("count", f"count {count} != reference {reference_count}")
    except StateSpaceLimitExceeded:
        fail("count", "count hit the limit after full exploration succeeded")

    # ---- concurrency and marked regions
    pairs = concurrent_pairs_from_rg(graph)
    reference_pairs = _reference_concurrent_pairs_from_rg(reference)
    if pairs != reference_pairs:
        fail(
            "concurrency",
            f"{len(pairs ^ reference_pairs)} concurrent pairs diverge",
        )
    sets = marking_sets_of_places(graph, net.places)
    reference_sets = _reference_marking_sets_of_places(reference, net.places)
    if sets != reference_sets:
        fail("regions", "marked-region sets diverge from reference")

    # ---- encoding (both-raise parity, then per-marking codes)
    encoded = None
    encode_error = reference_error = None
    try:
        encoded = encode_reachability_graph(stg, graph, strict=True)
    except EncodingError as error:
        encode_error = error
    reference_encoded = None
    try:
        reference_encoded = _reference_encode_reachability_graph(
            stg, reference, strict=True
        )
    except EncodingError as error:
        reference_error = error
    if (encode_error is None) != (reference_error is None):
        fail(
            "encoding",
            f"strictness parity: compiled {encode_error!r}, "
            f"reference {reference_error!r}",
        )
    elif encoded is not None and reference_encoded is not None:
        for marking in graph:
            if encoded.code_of(marking) != reference_encoded.code_of(marking):
                fail("encoding", f"code diverges at {marking}")
                break
    report.consistent = encoded is not None

    # ---- consistency analyses (well-defined with or without an encoding)
    auto = find_autoconcurrent_pairs(stg, graph)
    if auto != _reference_find_autoconcurrent_pairs(stg, reference):
        fail("autoconcurrency", "autoconcurrent pairs diverge from reference")
    satisfies_csc = False
    if report.consistent and not auto:
        semi = find_semimodularity_violations(stg, graph)
        if semi != _reference_find_semimodularity_violations(stg, reference):
            fail("semimodularity", "violation sets diverge from reference")
        adjacent = adjacent_transition_pairs(stg, graph)
        if adjacent != _reference_adjacent_transition_pairs(stg, reference):
            fail("adjacency", "next-relation diverges from reference")
        try:
            coding = analyze_state_coding(stg, encoded)
            satisfies_csc = coding.satisfies_csc
            reference_coding = _reference_analyze_state_coding(stg, reference_encoded)
            mine = (
                coding.satisfies_usc,
                coding.satisfies_csc,
                len(coding.usc_conflicts),
                len(coding.csc_conflicts),
            )
            theirs = (
                reference_coding.satisfies_usc,
                reference_coding.satisfies_csc,
                len(reference_coding.usc_conflicts),
                len(reference_coding.csc_conflicts),
            )
            if mine != theirs:
                fail("coding", f"USC/CSC verdicts diverge: {mine} != {theirs}")
        except Exception as error:  # noqa: BLE001 — any crash is a finding
            fail("coding", f"crash: {type(error).__name__}: {error}")

    # ---- synthesis: both backends cross-checked, then mapped verification.
    # CSC is a precondition: on a CSC-violating spec the implied next-state
    # value is ill-defined per code, so compare() mismatches would be
    # artifacts of the specification, not backend divergence.
    synthesizable = (
        report.consistent
        and report.live
        and not auto
        and satisfies_csc
        and bool(stg.non_input_signals)
        and report.states > 1
    )
    if synthesizable:
        options = SynthesisOptions(assume_csc=True)
        try:
            comparison = compare(
                spec, options, pipeline=pipeline, max_markings=max_markings
            )
        except (SynthesisError, StateBasedSynthesisError, EncodingError):
            comparison = None  # legitimately unsynthesizable; not a finding
        except Exception as error:  # noqa: BLE001
            comparison = None
            fail("compare", f"crash: {type(error).__name__}: {error}")
        if comparison is not None:
            report.synthesized = True
            if not comparison.matching:
                fail(
                    "compare",
                    f"{len(comparison.mismatches)} backend mismatches "
                    f"over {comparison.checked_markings} markings",
                )
            else:
                _check_mapped(
                    report, fail, spec, comparison, max_markings, faults, force_flip
                )
                if report.states <= SAT_CHECK_MAX_STATES:
                    _check_sat(report, fail, spec, options, max_markings, pipeline)

    report.total_seconds = time.monotonic() - started
    return report


def _check_sat(
    report: CheckReport,
    fail,
    spec: Spec,
    options: SynthesisOptions,
    max_markings: int,
    pipeline,
) -> None:
    """Cross-check the exact SAT backend on a small synthesizable spec.

    Two properties, both differential: the exact circuit must agree with
    the state-based baseline on every reachable code, and its literal
    count must not exceed the baseline's (the heuristic cover is a
    feasible point of the exact search space, so ``exact > baseline`` is
    a synthesis bug).  Budget exhaustion is a capacity skip, never a
    finding.
    """
    from repro.sat.encode import SatBudgetExceeded

    try:
        comparison = compare(
            spec,
            options,
            pipeline=pipeline,
            max_markings=max_markings,
            backends=("statebased", "sat"),
        )
    except SatBudgetExceeded:
        return  # candidate space too large for the corpus budget
    except (SynthesisError, StateBasedSynthesisError, EncodingError):
        return  # legitimately unsynthesizable; not a finding
    except Exception as error:  # noqa: BLE001 — any crash is a finding
        fail("sat", f"crash: {type(error).__name__}: {error}")
        return
    if not comparison.matching:
        fail(
            "sat",
            f"{len(comparison.mismatches)} exact-backend mismatches "
            f"over {comparison.checked_markings} markings",
        )
        return
    baseline = comparison.structural.synthesis  # first slot: statebased
    exact = comparison.statebased.synthesis  # second slot: sat
    if exact.literals > baseline.literals:
        fail(
            "sat",
            f"exact backend found {exact.literals} literals, worse than "
            f"the state-based baseline's {baseline.literals}",
        )


def _check_mapped(
    report: CheckReport,
    fail,
    spec: Spec,
    comparison,
    max_markings: int,
    faults: Optional[FaultInjector],
    force_flip: bool,
) -> None:
    """Map the structural circuit and verify the netlist (maybe corrupted)."""
    stg = spec.stg
    try:
        mapping = map_circuit(comparison.structural.circuit)
    except Exception as error:  # noqa: BLE001
        fail("mapping", f"crash: {type(error).__name__}: {error}")
        return
    netlist = mapping.netlist
    flipped = force_flip
    if not flipped and faults is not None:
        # token mode keyed on the spec hash: the decision is a pure function
        # of (seed, rate, spec) — identical in sequential and pool runs
        bound = faults.bind(1, salt=spec.content_hash)
        flipped = bound.fire("corpus.flip", scope=spec.name) is not None
    if flipped and not _flip_first_literal(netlist):
        flipped = False  # no SOP gate to corrupt; nothing planted
    try:
        verdict = verify_mapped_netlist(
            stg, comparison.structural.circuit, netlist, max_markings=max_markings
        )
        reference = _reference_verify_mapped_netlist(
            stg, comparison.structural.circuit, netlist, max_markings=max_markings
        )
    except Exception as error:  # noqa: BLE001
        fail("mapped", f"crash: {type(error).__name__}: {error}", injected=flipped)
        return
    if verdict.equivalent != reference.equivalent:
        fail(
            "mapped",
            "bit-parallel and reference verification disagree: "
            f"{verdict.equivalent} != {reference.equivalent}",
        )
    if flipped:
        if verdict.equivalent:
            fail("mapped", "planted netlist corruption went undetected")
        else:
            # the farm caught the planted bug — record it so the campaign
            # exercises shrink + quarantine on a known-injected regression
            fail(
                "mapped",
                f"injected literal flip detected "
                f"({verdict.mismatch_count} mismatching codes)",
                injected=True,
            )
    elif not verdict.equivalent:
        fail("mapped", f"netlist diverges on {verdict.mismatch_count} codes")


def run_corpus_job(job, pipeline, faults) -> CheckReport:
    """Scheduler runner entry point (``repro.corpus.checks:run_corpus_job``).

    The scheduler builds the (store-backed) pipeline and resolves the fault
    injector on both sides of the pool boundary; the job's ``payload``
    carries the campaign knobs.
    """
    payload = getattr(job, "payload", None) or {}
    return run_check_suite(
        job.spec,
        max_markings=payload.get("max_markings", job.max_markings or 600),
        faults=faults,
        pipeline=pipeline,
        force_flip=payload.get("force_flip", False),
    )
