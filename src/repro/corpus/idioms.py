"""The idiom library: closed STG fragments the generator composes.

Each builder returns a *complete* STG — live, consistent and bounded by
construction — whose signal names carry a caller-chosen prefix so several
instances can be merged into one net without collisions.  The idioms are
the structures the paper synthesizes: Muller pipeline stages (Table VII),
handshake chains, mutex/ME arbiters (the non-free-choice class), input
selectors (free-choice), and credit-carrying handshakes whose pool place
holds multiple tokens (the k-bounded class exercised by the packed
:class:`~repro.petri.compiled.CompiledBoundedNet` kernel).

Builders take only JSON-able parameters so a generator *recipe* — the list
of ``(idiom, prefix, params)`` entries plus rewires and mutations — replays
to the identical STG, which is what makes delta-debugging over the
composition tree possible.
"""

from __future__ import annotations

from repro.stg.signals import SignalType
from repro.stg.stg import STG


def _ring(stg: STG, transitions: list[str], marked_arc: int = -1, tokens: int = 1) -> None:
    """Close ``transitions`` into a cycle, marking one implicit place."""
    count = len(transitions)
    for i, source in enumerate(transitions):
        stg.add_arc(source, transitions[(i + 1) % count])
    source = transitions[marked_arc % count]
    target = transitions[(marked_arc + 1) % count]
    stg.net.set_initial_tokens(f"<{source},{target}>", tokens)


def independent_cell(prefix: str) -> STG:
    """A single 4-phase handshake cell: r+ a+ r- a- (Table VII's array unit)."""
    stg = STG(f"{prefix}cell")
    r, a = f"{prefix}r", f"{prefix}a"
    stg.add_signal(r, SignalType.INPUT)
    stg.add_signal(a, SignalType.OUTPUT)
    for label in (f"{r}+", f"{a}+", f"{r}-", f"{a}-"):
        stg.add_transition(label)
    _ring(stg, [f"{r}+", f"{a}+", f"{r}-", f"{a}-"])
    stg.set_initial_values({r: 0, a: 0})
    return stg


def muller_stage_chain(prefix: str, stages: int = 2) -> STG:
    """A Muller pipeline with ``stages`` C-latches (the Table VII generator)."""
    stages = max(1, int(stages))
    stg = STG(f"{prefix}muller")
    r = f"{prefix}r"
    cs = [f"{prefix}c{i}" for i in range(stages)]
    stg.add_signal(r, SignalType.INPUT)
    for c in cs:
        stg.add_signal(c, SignalType.OUTPUT)
    for signal in [r] + cs:
        stg.add_transition(f"{signal}+")
        stg.add_transition(f"{signal}-")
    stg.add_arc(f"{r}+", f"{cs[0]}+")
    stg.add_arc(f"{cs[0]}+", f"{r}-")
    stg.add_arc(f"{r}-", f"{cs[0]}-")
    stg.add_arc(f"{cs[0]}-", f"{r}+")
    for i in range(stages - 1):
        stg.add_arc(f"{cs[i]}+", f"{cs[i + 1]}+")
        stg.add_arc(f"{cs[i + 1]}+", f"{cs[i]}-")
        stg.add_arc(f"{cs[i]}-", f"{cs[i + 1]}-")
        stg.add_arc(f"{cs[i + 1]}-", f"{cs[i]}+")
    stg.net.set_initial_tokens(f"<{cs[0]}-,{r}+>", 1)
    for i in range(stages - 1):
        stg.net.set_initial_tokens(f"<{cs[i + 1]}-,{cs[i]}+>", 1)
    stg.set_initial_values({signal: 0 for signal in [r] + cs})
    return stg


def handshake_chain(prefix: str, cells: int = 2) -> STG:
    """Sequential 4-phase handshakes: cell ``i`` completes before ``i+1``."""
    cells = max(1, int(cells))
    stg = STG(f"{prefix}chain")
    transitions: list[str] = []
    for i in range(cells):
        r, a = f"{prefix}r{i}", f"{prefix}a{i}"
        stg.add_signal(r, SignalType.INPUT)
        stg.add_signal(a, SignalType.OUTPUT)
        for label in (f"{r}+", f"{a}+", f"{r}-", f"{a}-"):
            stg.add_transition(label)
        transitions.extend([f"{r}+", f"{a}+", f"{r}-", f"{a}-"])
    _ring(stg, transitions)
    stg.set_initial_values({signal: 0 for signal in stg.signal_names})
    return stg


def mutex_pair(prefix: str) -> STG:
    """Two clients arbitrating over a shared ME place (non-free-choice).

    Each client cycles ``ri+ gi+ ri- gi-``; the grant rise consumes the
    mutex token, the grant fall returns it — the fork-place discipline of
    the dining-philosophers family.
    """
    stg = STG(f"{prefix}mutex")
    me = f"{prefix}me"
    stg.add_place(me, tokens=1)
    for i in (1, 2):
        r, g = f"{prefix}r{i}", f"{prefix}g{i}"
        stg.add_signal(r, SignalType.INPUT)
        stg.add_signal(g, SignalType.OUTPUT)
        for label in (f"{r}+", f"{g}+", f"{r}-", f"{g}-"):
            stg.add_transition(label)
        _ring(stg, [f"{r}+", f"{g}+", f"{r}-", f"{g}-"])
        stg.add_arc(me, f"{g}+")
        stg.add_arc(f"{g}-", me)
    stg.set_initial_values({signal: 0 for signal in stg.signal_names})
    return stg


def selector(prefix: str, branches: int = 2) -> STG:
    """A free-choice input selection among ``branches`` request/done pairs.

    A choice place offers its token to every branch's request rise (the
    environment picks one); the branch completes its 4-phase cycle and
    returns the token.
    """
    branches = max(2, int(branches))
    stg = STG(f"{prefix}select")
    choice = f"{prefix}choice"
    stg.add_place(choice, tokens=1)
    for i in range(branches):
        s, d = f"{prefix}s{i}", f"{prefix}d{i}"
        stg.add_signal(s, SignalType.INPUT)
        stg.add_signal(d, SignalType.OUTPUT)
        for label in (f"{s}+", f"{d}+", f"{s}-", f"{d}-"):
            stg.add_transition(label)
        stg.add_arc(choice, f"{s}+")
        stg.add_arc(f"{s}+", f"{d}+")
        stg.add_arc(f"{d}+", f"{s}-")
        stg.add_arc(f"{s}-", f"{d}-")
        stg.add_arc(f"{d}-", choice)
    stg.set_initial_values({signal: 0 for signal in stg.signal_names})
    return stg


def credit_handshake(prefix: str, credit: int = 2) -> STG:
    """A 4-phase handshake with a ``credit``-token pool place (k-bounded).

    The pool never gates behaviour — the handshake ring serializes the
    request anyway — but its token count swings between ``credit - 1`` and
    ``credit``, forcing the k-bounded packed kernel (or, past the bits
    ladder, the dict-based reference path) while the observable behaviour
    stays that of the plain handshake.
    """
    credit = max(2, int(credit))
    stg = STG(f"{prefix}credit")
    r, a = f"{prefix}r", f"{prefix}a"
    stg.add_signal(r, SignalType.INPUT)
    stg.add_signal(a, SignalType.OUTPUT)
    for label in (f"{r}+", f"{a}+", f"{r}-", f"{a}-"):
        stg.add_transition(label)
    _ring(stg, [f"{r}+", f"{a}+", f"{r}-", f"{a}-"])
    pool = f"{prefix}pool"
    stg.add_place(pool, tokens=credit)
    stg.add_arc(pool, f"{r}+")
    stg.add_arc(f"{a}-", pool)
    stg.set_initial_values({r: 0, a: 0})
    return stg


def token_ring(prefix: str, cells: int = 2) -> STG:
    """A DME-style token-ring arbiter over ``cells`` clients.

    Each client runs its own 4-phase cycle ``ri+ gi+ ri- gi-``; a single
    privilege token circulates through explicit places ``t0..t{n-1}`` —
    the grant rise of cell ``i`` consumes ``ti``, the grant fall forwards
    the token to ``t{(i+1) % n}`` — so grants are serialized in ring order
    while requests stay concurrent (the distributed mutual-exclusion
    structure of the DME arbiter papers).

    Instances are live, bounded and consistent but *not* CSC-clean for
    ``cells ≥ 2``: the token's position is invisible in the signal code
    (all-quiet states recur with the privilege at different cells), which
    is exactly why real DME cells add internal state signals.  In the
    corpus this idiom therefore exercises the coding-analysis and
    USC/CSC-conflict paths of the check suite rather than the synthesis
    backends.
    """
    cells = max(2, int(cells))
    stg = STG(f"{prefix}dme")
    for i in range(cells):
        r, g = f"{prefix}r{i}", f"{prefix}g{i}"
        stg.add_signal(r, SignalType.INPUT)
        stg.add_signal(g, SignalType.OUTPUT)
        for label in (f"{r}+", f"{g}+", f"{r}-", f"{g}-"):
            stg.add_transition(label)
        _ring(stg, [f"{r}+", f"{g}+", f"{r}-", f"{g}-"])
    for i in range(cells):
        stg.add_place(f"{prefix}t{i}", tokens=1 if i == 0 else 0)
    for i in range(cells):
        stg.add_arc(f"{prefix}t{i}", f"{prefix}g{i}+")
        stg.add_arc(f"{prefix}g{i}-", f"{prefix}t{(i + 1) % cells}")
    stg.set_initial_values({signal: 0 for signal in stg.signal_names})
    return stg


#: name -> (builder, parameter spec); the parameter spec maps each keyword
#: to the inclusive (low, high) integer range the generator samples from.
IDIOMS: dict = {
    "independent_cell": (independent_cell, {}),
    "muller_stage_chain": (muller_stage_chain, {"stages": (1, 3)}),
    "handshake_chain": (handshake_chain, {"cells": (1, 3)}),
    "mutex_pair": (mutex_pair, {}),
    "selector": (selector, {"branches": (2, 3)}),
    "credit_handshake": (credit_handshake, {"credit": (2, 5)}),
    "token_ring": (token_ring, {"cells": (2, 3)}),
}


def build_idiom(name: str, prefix: str, params: dict | None = None) -> STG:
    """Instantiate one idiom by name (the recipe-replay entry point)."""
    builder, _spec = IDIOMS[name]
    return builder(prefix, **(params or {}))
