"""Seeded compositional STG generation with validity classification.

A *recipe* is a JSON-able description of how one corpus spec was built:
which idioms were instantiated (name, prefix, parameters), how they were
rewired together (synchronization place pairs between transitions of
different idioms), and which mutation operators were applied afterwards
(with concrete arguments).  :func:`build_from_recipe` replays a recipe to
the identical STG — the property the shrinker's delta-debugging over the
composition tree relies on.

Generation is deterministic: spec ``index`` under seed ``S`` derives its
RNG from the string ``"{S}|{index}|{attempt}"`` (Python seeds strings via
SHA-512, independent of ``PYTHONHASHSEED``), so a campaign is reproducible
across processes and machines.

Candidates whose state space explodes past the exploration budget are
discarded and regenerated; the survivors are *classified* (safe vs
k-bounded, consistent, live, synthesizable) rather than filtered —
inconsistent STGs are exactly what the graph-level differential checks
need.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.api.spec import Spec
from repro.corpus.idioms import IDIOMS, build_idiom
from repro.petri.compiled import CompiledBoundedNet
from repro.petri.reachability import (
    StateSpaceLimitExceeded,
    build_reachability_graph,
)
from repro.stg.consistency import find_autoconcurrent_pairs
from repro.stg.encoding import EncodingError, encode_reachability_graph
from repro.stg.signals import SignalType
from repro.stg.stg import STG

#: mutation operators the generator may record in a recipe
MUTATIONS = ("add_signal", "drop_signal", "retime_transition", "perturb_arc", "bump_token")


@dataclass
class Classification:
    """Validity-filter verdict for one generated STG."""

    states: int
    klass: str  # "safe" | "k-bounded"
    consistent: bool
    live: bool
    synthesizable: bool


@dataclass
class CorpusSpec:
    """One generated spec plus its recipe and classification."""

    spec: Spec
    seed: int
    index: int
    recipe: dict
    states: int
    klass: str
    consistent: bool
    live: bool
    synthesizable: bool

    def summary(self) -> dict:
        return {
            "name": self.spec.name,
            "hash": self.spec.content_hash,
            "states": self.states,
            "class": self.klass,
            "consistent": self.consistent,
            "live": self.live,
            "synthesizable": self.synthesizable,
        }


@dataclass
class GeneratorConfig:
    """Shape knobs of the generator (all JSON-able)."""

    max_idioms: int = 3
    max_rewires: int = 2
    max_mutations: int = 2
    #: probability that a spec is a pure-random STG (the machinery promoted
    #: from the PR 4 differential tests) instead of an idiom composition
    random_stg_rate: float = 0.2
    #: exploration budget for the validity filter
    max_markings: int = 600


# ---------------------------------------------------------------------- #
# Pure-random STGs (promoted from tests/test_compiled_statebased.py)
# ---------------------------------------------------------------------- #


def random_stg(rng: random.Random, allow_unsafe: bool = False) -> STG:
    """A random small STG (usually inconsistent — that is the point).

    This is the randomized-STG machinery of the PR 4 differential tests,
    promoted here so both the test-suite and the corpus generator draw from
    one implementation.
    """
    stg = STG("rand")
    signals = ["a", "b", "c"][: rng.randint(1, 3)]
    for signal in signals:
        stg.add_signal(
            signal,
            SignalType.OUTPUT if rng.random() < 0.5 else SignalType.INPUT,
        )
    for signal in signals:
        copies = rng.randint(1, 2)
        for index in range(copies):
            for direction in "+-":
                suffix = f"/{index}" if index else ""
                stg.add_transition(f"{signal}{direction}{suffix}")
    places = [f"p{i}" for i in range(rng.randint(2, 6))]
    for place in places:
        stg.add_place(place)
    for transition in stg.transitions:
        for place in rng.sample(places, rng.randint(1, min(2, len(places)))):
            stg.add_arc(place, transition)
        for place in rng.sample(places, rng.randint(1, min(2, len(places)))):
            stg.add_arc(transition, place)
    stg.set_marking(rng.sample(places, rng.randint(1, len(places))))
    if allow_unsafe:
        stg.net.set_initial_tokens(rng.choice(places), 2)
    return stg


# ---------------------------------------------------------------------- #
# Recipe replay
# ---------------------------------------------------------------------- #


def _compose(components: list[STG], name: str) -> STG:
    """Merge disjointly-named STGs into one (signals, net, marking, values)."""
    merged = STG(name)
    for component in components:
        for signal, signal_type in component.signals.items():
            merged.add_signal(signal, signal_type)
        for transition in component.transitions:
            merged.add_transition(transition)
        for place in component.places:
            merged.net.add_place(place)
        for place in component.places:
            for target in component.net.postset(place):
                merged.net.add_arc(place, target)
            for source in component.net.preset(place):
                merged.net.add_arc(source, place)
        for place, count in component.initial_marking.items():
            merged.net.set_initial_tokens(place, count)
        for signal, value in component.initial_values.items():
            merged.set_initial_value(signal, value)
    return merged


def _apply_rewire(stg: STG, rewire: dict, index: int) -> None:
    """Couple two transitions with a marked/unmarked sync place pair.

    ``forward`` waits on ``source`` before ``target`` may fire; ``back``
    (initially marked) returns the credit when ``target`` fires, so the
    token count of the coupling is conserved and boundedness is preserved.
    """
    source = rewire["source"]
    target = rewire["target"]
    forward = f"sync{index}f"
    back = f"sync{index}b"
    stg.add_place(forward)
    stg.add_place(back, tokens=1)
    stg.net.add_arc(source, forward)
    stg.net.add_arc(forward, target)
    stg.net.add_arc(target, back)
    stg.net.add_arc(back, source)


def _apply_mutation(stg: STG, mutation: dict) -> None:
    """Apply one recorded mutation operator (concrete arguments, no RNG)."""
    op = mutation["op"]
    if op == "add_signal":
        # splice x+ after one transition and x- after another
        signal = mutation["signal"]
        stg.add_signal(signal, SignalType.INTERNAL)
        rise, fall = f"{signal}+", f"{signal}-"
        stg.add_transition(rise)
        stg.add_transition(fall)
        stg.add_arc(mutation["after_rise"], rise)
        stg.add_arc(rise, fall)
        stg.add_arc(fall, mutation["before_fall"])
        stg.set_initial_value(signal, 0)
    elif op == "drop_signal":
        signal = mutation["signal"]
        for transition in list(stg.transitions_of_signal(signal)):
            for place in list(stg.net.preset(transition)):
                if _is_orphan_place(stg, place, transition):
                    stg.net.remove_place(place)
            for place in list(stg.net.postset(transition)):
                if stg.net.is_place(place) and _is_orphan_place(stg, place, transition):
                    stg.net.remove_place(place)
            stg.net.remove_transition(transition)
        stg._labels = {  # drop stale labels
            name: label for name, label in stg._labels.items()
            if label.signal != signal
        }
        stg._signals.pop(signal, None)
        stg._initial_values.pop(signal, None)
    elif op == "retime_transition":
        # reverse one implicit place: <t1,t2> becomes t2 -> p -> t1
        place = mutation["place"]
        source = mutation["source"]
        target = mutation["target"]
        stg.net.remove_arc(source, place)
        stg.net.remove_arc(place, target)
        stg.net.add_arc(target, place)
        stg.net.add_arc(place, source)
    elif op == "perturb_arc":
        if mutation.get("remove"):
            stg.net.remove_arc(mutation["source"], mutation["target"])
        else:
            stg.net.add_arc(mutation["source"], mutation["target"])
    elif op == "bump_token":
        place = mutation["place"]
        stg.net.set_initial_tokens(
            place, stg.initial_marking.tokens(place) + mutation.get("by", 1)
        )
    else:
        raise ValueError(f"unknown mutation operator {op!r}")


def _is_orphan_place(stg: STG, place: str, transition: str) -> bool:
    """True when removing ``transition`` leaves ``place`` fully disconnected."""
    if not stg.net.is_place(place):
        return False
    neighbours = (stg.net.preset(place) | stg.net.postset(place)) - {transition}
    return not neighbours


def build_from_recipe(recipe: dict) -> STG:
    """Replay a recipe to its STG (deterministic, RNG-free)."""
    if recipe.get("kind") == "random":
        rng = random.Random(recipe["rng_seed"])
        stg = random_stg(rng, allow_unsafe=recipe.get("allow_unsafe", False))
    else:
        components = [
            build_idiom(entry["name"], entry["prefix"], entry.get("params"))
            for entry in recipe["idioms"]
        ]
        stg = _compose(components, recipe.get("name", "corpus"))
        for index, rewire in enumerate(recipe.get("rewires", ())):
            _apply_rewire(stg, rewire, index)
    for mutation in recipe.get("mutations", ()):
        _apply_mutation(stg, mutation)
    stg.name = recipe.get("name", stg.name)
    return stg


# ---------------------------------------------------------------------- #
# Random recipe construction
# ---------------------------------------------------------------------- #


def _random_recipe(rng: random.Random, config: GeneratorConfig, name: str) -> dict:
    if rng.random() < config.random_stg_rate:
        recipe: dict = {
            "kind": "random",
            "name": name,
            "rng_seed": rng.randrange(1 << 30),
            "allow_unsafe": rng.random() < 0.3,
            "mutations": [],
        }
        return recipe
    idiom_names = sorted(IDIOMS)
    count = rng.randint(1, max(1, config.max_idioms))
    idioms = []
    for i in range(count):
        idiom = rng.choice(idiom_names)
        _, param_spec = IDIOMS[idiom]
        params = {
            key: rng.randint(low, high) for key, (low, high) in param_spec.items()
        }
        idioms.append({"name": idiom, "prefix": f"g{i}_", "params": params})
    recipe = {"kind": "compose", "name": name, "idioms": idioms, "rewires": [], "mutations": []}
    stg = build_from_recipe(recipe)
    if count > 1:
        for _ in range(rng.randint(0, config.max_rewires)):
            first, second = rng.sample(range(count), 2)
            source = _transition_of(rng, stg, idioms[first]["prefix"])
            target = _transition_of(rng, stg, idioms[second]["prefix"])
            if source and target:
                recipe["rewires"].append({"source": source, "target": target})
        stg = build_from_recipe(recipe)
    for _ in range(rng.randint(0, config.max_mutations)):
        mutation = _random_mutation(rng, stg)
        if mutation is None:
            continue
        recipe["mutations"].append(mutation)
        stg = build_from_recipe(recipe)
    return recipe


def _transition_of(rng: random.Random, stg: STG, prefix: str) -> Optional[str]:
    candidates = sorted(t for t in stg.transitions if t.startswith(prefix))
    return rng.choice(candidates) if candidates else None


def _random_mutation(rng: random.Random, stg: STG) -> Optional[dict]:
    op = rng.choice(MUTATIONS)
    transitions = sorted(stg.transitions)
    places = sorted(stg.places)
    if not transitions or not places:
        return None
    if op == "add_signal":
        existing = set(stg.signal_names)
        index = 0
        while f"x{index}" in existing:
            index += 1
        return {
            "op": op,
            "signal": f"x{index}",
            "after_rise": rng.choice(transitions),
            "before_fall": rng.choice(transitions),
        }
    if op == "drop_signal":
        droppable = [s for s in stg.signal_names if len(stg.signal_names) > 1]
        if not droppable:
            return None
        return {"op": op, "signal": rng.choice(sorted(droppable))}
    if op == "retime_transition":
        implicit = sorted(
            place
            for place in places
            if len(stg.net.preset(place)) == 1 and len(stg.net.postset(place)) == 1
        )
        if not implicit:
            return None
        place = rng.choice(implicit)
        return {
            "op": op,
            "place": place,
            "source": next(iter(stg.net.preset(place))),
            "target": next(iter(stg.net.postset(place))),
        }
    if op == "perturb_arc":
        place = rng.choice(places)
        transition = rng.choice(transitions)
        if rng.random() < 0.5 and transition in stg.net.postset(place):
            return {"op": op, "remove": True, "source": place, "target": transition}
        if transition in stg.net.postset(place):
            return None
        return {"op": op, "source": place, "target": transition}
    if op == "bump_token":
        marked = sorted(stg.initial_marking)
        if not marked:
            return None
        return {"op": op, "place": rng.choice(marked), "by": rng.choice((1, 2))}
    return None


# ---------------------------------------------------------------------- #
# Classification (the validity filter)
# ---------------------------------------------------------------------- #


def classify_stg(stg: STG, max_markings: int = 600) -> Optional[Classification]:
    """Classify a candidate; ``None`` when its state space explodes."""
    try:
        graph = build_reachability_graph(stg.net, max_markings=max_markings)
    except StateSpaceLimitExceeded:
        return None
    states = len(graph)
    if isinstance(graph._compiled, CompiledBoundedNet) or graph._compiled is None:
        safe = all(marking.is_safe() for marking in graph.markings)
    else:
        safe = True  # the 1-bit kernel only completes on safe nets
    live = not graph.deadlocks()
    consistent = True
    try:
        encode_reachability_graph(stg, graph, strict=True)
    except EncodingError:
        consistent = False
    if consistent and find_autoconcurrent_pairs(stg, graph):
        consistent = False
    synthesizable = bool(
        consistent and live and stg.non_input_signals and states > 1
    )
    return Classification(
        states=states,
        klass="safe" if safe else "k-bounded",
        consistent=consistent,
        live=live,
        synthesizable=synthesizable,
    )


# ---------------------------------------------------------------------- #
# Entry points
# ---------------------------------------------------------------------- #


def generate_spec(
    seed: int, index: int, config: Optional[GeneratorConfig] = None
) -> CorpusSpec:
    """Generate corpus spec ``index`` of the stream seeded with ``seed``.

    Invalid candidates (state-space explosion, empty nets, unwritable
    specs) are regenerated deterministically until one passes the validity
    filter, so every ``(seed, index)`` pair names exactly one spec.
    """
    config = config or GeneratorConfig()
    name = f"corpus_{seed}_{index}"
    for attempt in range(1000):
        rng = random.Random(f"{seed}|{index}|{attempt}")
        try:
            recipe = _random_recipe(rng, config, name)
            stg = build_from_recipe(recipe)
            if not stg.signal_names or not stg.transitions:
                continue
            if not stg.initial_marking:
                continue
            classification = classify_stg(stg, config.max_markings)
            if classification is None:
                continue
            spec = Spec.from_stg(stg, name=name)
            # the canonical text must replay to the same canonical text —
            # the content-hash stability contract of the corpus
            if Spec.load(spec.text).content_hash != spec.content_hash:
                continue
        except (KeyError, ValueError):
            continue  # a mutation produced a malformed net; regenerate
        return CorpusSpec(
            spec=spec,
            seed=seed,
            index=index,
            recipe=recipe,
            states=classification.states,
            klass=classification.klass,
            consistent=classification.consistent,
            live=classification.live,
            synthesizable=classification.synthesizable,
        )
    raise RuntimeError(f"generator failed to produce a valid spec for {name}")


def generate_corpus(
    count: int,
    seed: int = 0,
    config: Optional[GeneratorConfig] = None,
) -> Iterator[CorpusSpec]:
    """Yield ``count`` classified corpus specs, deterministically by seed."""
    config = config or GeneratorConfig()
    for index in range(count):
        yield generate_spec(seed, index, config)
