"""repro.corpus — compositional STG generation and differential fuzzing.

The scenario-diversity engine of the repository: a seeded generator that
composes the paper's idioms (Muller pipeline stages, arbiters, mutex
elements, selectors, handshake chains) into randomized STGs, a differential
check suite that runs every backend against the dict-based reference
oracles per spec, a greedy shrinker that reduces failures to minimal
counterexample STGs, and a scheduler-driven campaign runner behind
``repro fuzz run``.  Counterexamples land in ``corpus/quarantine/`` and are
replayed by the tier-1 suite.
"""

from repro.corpus.campaign import CampaignConfig, CampaignReport, run_campaign
from repro.corpus.checks import CheckFailure, CheckReport, run_check_suite
from repro.corpus.generator import (
    CorpusSpec,
    GeneratorConfig,
    build_from_recipe,
    classify_stg,
    generate_corpus,
    generate_spec,
    random_stg,
)
from repro.corpus.idioms import IDIOMS, build_idiom
from repro.corpus.quarantine import CorpusQuarantine, QuarantineEntry
from repro.corpus.shrink import shrink_recipe, shrink_stg

__all__ = [
    "CampaignConfig",
    "CampaignReport",
    "CheckFailure",
    "CheckReport",
    "CorpusQuarantine",
    "CorpusSpec",
    "GeneratorConfig",
    "IDIOMS",
    "QuarantineEntry",
    "build_from_recipe",
    "build_idiom",
    "classify_stg",
    "generate_corpus",
    "generate_spec",
    "random_stg",
    "run_campaign",
    "run_check_suite",
    "shrink_recipe",
    "shrink_stg",
]
