"""Bit-parallel compiled evaluation of gate netlists.

A validated :class:`~repro.gates.ir.GateNetlist` has an acyclic
combinational interior once the specification-signal nets are treated as cut
points, so its one-step semantics — clamp the signal nets to the present
state code, settle the interior, read the next value of every output — is a
*straight-line program*: one evaluation per gate in topological order, no
event queue, no fixed-point iteration.

This module compiles that program once per netlist and evaluates it over
*columns*: each net carries one machine integer whose bit ``j`` is the net's
value under state code ``j``.  Evaluating the program over ``n`` codes costs
the same number of Python bytecodes as evaluating it over one, with the
per-code work done inside the big-int AND/OR/NOT primitives — the gate-level
analogue of the bit-packed marking kernel.  ``verify_mapped_netlist`` runs
the whole reachable code set through one program execution, and the
single-code :meth:`~repro.gates.simulate.GateLevelSimulator.settle` is the
``n = 1`` special case of the same program.

Gate semantics over columns (``mask`` is the all-ones column):

* SOP: OR over terms of AND over literal columns (a polarity-0 literal
  contributes ``~column & mask``); ``terms == ()`` is constant 0 and an
  empty term is constant 1.
* C-latch (pins ``set``, ``reset``): ``(set & ~reset) | (hold & current)``
  with ``hold = ~(set ^ reset)`` — rises where set wins, falls where reset
  wins, holds elsewhere.
* Gated latch (pins ``enable``, ``data`` with recorded polarity):
  ``(enable & data') | (~enable & current)`` where ``data'`` is the data
  column at the latch's polarity.

``current`` is the column of the latch's output net: the clamped present
value when the output is a signal net (the usual case), 0 otherwise —
matching the event simulator's ``values.get(output, 0)`` at first
evaluation.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.gates.ir import GateInstance, GateKind, GateNetlist


class SimulationError(RuntimeError):
    """Raised when a state code misses a clamped signal.

    (Re-exported by :mod:`repro.gates.simulate`; combinational oscillation
    cannot occur in the compiled path because validation rejects cyclic
    interiors up front.)
    """


#: opcodes of the straight-line program
_OP_SOP = 0
_OP_C_LATCH = 1
_OP_GATED_LATCH = 2


def c_latch_column(set_column: int, reset_column: int, current: int) -> int:
    """Column form of the C-latch next value.

    Rises where set wins, falls where reset wins, holds elsewhere — the
    single definition shared by the netlist evaluator and the vectorized
    behavioural-circuit evaluation in :mod:`repro.gates.verify` (the scalar
    form lives in :meth:`repro.synthesis.netlist.SignalImplementation.next_value`).
    The caller masks the result to the column width.
    """
    return (set_column & ~reset_column) | (
        current & ~(set_column ^ reset_column)
    )


class CompiledNetlistEvaluator:
    """Topologically-ordered straight-line program over packed columns."""

    __slots__ = (
        "netlist",
        "_num_slots",
        "_clamps",
        "_program",
        "_outputs",
    )

    def __init__(self, netlist: GateNetlist):
        netlist.validate()
        self.netlist = netlist
        order = netlist.topological_gates()

        slots: dict[str, int] = {}

        def slot_of(net: str) -> int:
            slot = slots.get(net)
            if slot is None:
                slot = len(slots)
                slots[net] = slot
            return slot

        #: (slot, signal) pairs of the clamped (specification-signal) nets
        self._clamps: list[tuple[int, str]] = [
            (slot_of(name), net.signal)
            for name, net in netlist.nets.items()
            if net.signal is not None
        ]
        clamped_slots = {slot for slot, _ in self._clamps}

        program: list[tuple] = []
        for gate in order:
            in_slots = tuple(slot_of(net) for net in gate.inputs)
            out_slot = slot_of(gate.output)
            writes = out_slot not in clamped_slots
            if gate.kind is GateKind.C_LATCH:
                program.append(
                    (_OP_C_LATCH, in_slots[0], in_slots[1], out_slot, writes)
                )
            elif gate.kind is GateKind.GATED_LATCH:
                polarity = gate.terms[0][0][1]
                program.append(
                    (_OP_GATED_LATCH, in_slots[0], in_slots[1], polarity,
                     out_slot, writes)
                )
            else:
                terms = tuple(
                    tuple((in_slots[pin], pol) for pin, pol in term)
                    for term in gate.terms
                )
                program.append((_OP_SOP, terms, out_slot, writes))
        self._program = program
        self._num_slots = len(slots)

        #: output signal -> index into ``program`` of its driving gate
        drivers = {gate.output: i for i, gate in enumerate(order)}
        self._outputs: list[tuple[str, int]] = []
        for name in netlist.outputs:
            signal = netlist.nets[name].signal or name
            self._outputs.append((signal, drivers[name]))

    # ------------------------------------------------------------------ #

    def evaluate(self, columns: Mapping[str, int], width: int) -> dict[str, int]:
        """Run the program over ``width`` parallel codes.

        ``columns`` maps every specification signal to its value column
        (bit ``j`` = value of the signal under code ``j``).  Returns the
        settled *next*-value column of every implemented output signal.
        """
        mask = (1 << width) - 1
        values = [0] * self._num_slots
        for slot, signal in self._clamps:
            try:
                values[slot] = columns[signal] & mask
            except KeyError as error:
                raise SimulationError(
                    f"state code is missing signal {signal!r}"
                ) from error

        computed = [0] * len(self._program)
        for index, op in enumerate(self._program):
            kind = op[0]
            if kind == _OP_SOP:
                _, terms, out_slot, writes = op
                column = 0
                for term in terms:
                    acc = mask
                    for slot, polarity in term:
                        value = values[slot]
                        acc &= value if polarity else ~value & mask
                        if not acc:
                            break
                    column |= acc
                    if column == mask:
                        break
            elif kind == _OP_C_LATCH:
                _, set_slot, reset_slot, out_slot, writes = op
                column = c_latch_column(
                    values[set_slot], values[reset_slot], values[out_slot]
                ) & mask
            else:  # _OP_GATED_LATCH
                _, enable_slot, data_slot, polarity, out_slot, writes = op
                enable = values[enable_slot]
                data = values[data_slot]
                if not polarity:
                    data = ~data & mask
                current = values[out_slot]
                column = (enable & data) | (~enable & mask & current)
            computed[index] = column
            if writes:
                values[out_slot] = column

        return {signal: computed[index] for signal, index in self._outputs}

    def evaluate_code(self, code: Mapping[str, int]) -> dict[str, int]:
        """Single-code evaluation (``width == 1``)."""
        return self.evaluate(code, 1)


def compile_netlist(netlist: GateNetlist) -> CompiledNetlistEvaluator:
    """Compiled evaluator for a netlist.

    Not cached: ``GateNetlist`` is a plain mutable dataclass with no
    structural version, so a cache keyed on object identity would keep
    serving a stale program after an in-place edit.  Compilation is one
    validation plus one topological sort — negligible next to the
    evaluation it feeds; callers that evaluate repeatedly hold on to the
    evaluator (or a :class:`~repro.gates.simulate.GateLevelSimulator`)
    themselves.
    """
    return CompiledNetlistEvaluator(netlist)


def signal_columns(
    codes: list[int], signal_bits: list[tuple[str, int]]
) -> dict[str, int]:
    """Transpose packed state codes into per-signal value columns.

    ``codes[j]`` is the packed code of state ``j`` (bit positions from the
    global interner); ``signal_bits`` lists ``(signal, bit_index)`` pairs.
    Returns one column per signal with bit ``j`` set iff the signal is 1
    under code ``j``.
    """
    columns = {signal: 0 for signal, _ in signal_bits}
    for j, code in enumerate(codes):
        if not code:
            continue
        state_bit = 1 << j
        for signal, bit in signal_bits:
            if code >> bit & 1:
                columns[signal] |= state_bit
    return columns


__all__ = [
    "CompiledNetlistEvaluator",
    "SimulationError",
    "compile_netlist",
    "signal_columns",
]
