"""Pluggable exporters for gate-level netlists.

Four interchange formats are supported, each paired with a reader or
syntax validator so round-trips can be checked in tests and CI:

* ``verilog`` — structural Verilog (1995-style port declarations, SOP
  ``assign`` statements, ``always @*`` latch processes); validated by
  :func:`validate_verilog`;
* ``blif``    — Berkeley Logic Interchange Format with one ``.names``
  table per gate (latches use the classic asynchronous feedback table);
  read back by :func:`parse_blif`;
* ``json``    — the IR's own lossless document
  (:meth:`~repro.gates.ir.GateNetlist.to_json`), read back by
  :meth:`~repro.gates.ir.GateNetlist.from_json`;
* ``eqn``     — Synopsys/ABC-style equation format (latches appear as
  their combinational feedback expansion ``q = set + q*!reset``); read
  back by :func:`parse_eqn`.

Use :func:`export_netlist` for name-based dispatch (the CLI's
``repro export --format`` backend).
"""

from __future__ import annotations

import json
import re
from typing import Callable

from repro.gates.ir import GateInstance, GateKind, GateNetlist


class ExportSyntaxError(ValueError):
    """Raised by the format validators on malformed emitted text."""


_IDENT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_$]*$")


def _identifier_map(netlist: GateNetlist) -> dict[str, str]:
    """Deterministic net-name to legal-identifier mapping (collision safe)."""
    mapping: dict[str, str] = {}
    used: set[str] = set()
    for name in sorted(netlist.nets):
        candidate = re.sub(r"[^A-Za-z0-9_$]", "_", name)
        if not candidate or not re.match(r"[A-Za-z_]", candidate):
            candidate = "n_" + candidate
        base = candidate
        suffix = 2
        while candidate in used:
            candidate = f"{base}_{suffix}"
            suffix += 1
        used.add(candidate)
        mapping[name] = candidate
    return mapping


def _module_name(name: str) -> str:
    candidate = re.sub(r"[^A-Za-z0-9_$]", "_", name) or "netlist"
    if not re.match(r"[A-Za-z_]", candidate):
        candidate = "m_" + candidate
    return candidate


# ---------------------------------------------------------------------- #
# Verilog
# ---------------------------------------------------------------------- #


def _verilog_sop(gate: GateInstance, ids: dict[str, str]) -> str:
    if not gate.terms:
        return "1'b0"
    products: list[str] = []
    for term in gate.terms:
        if not term:
            return "1'b1"
        literals = [
            (ids[gate.inputs[pin]] if polarity else f"~{ids[gate.inputs[pin]]}")
            for pin, polarity in term
        ]
        products.append(" & ".join(literals) if len(literals) > 1 else literals[0])
    if len(products) == 1:
        return products[0]
    return " | ".join(f"({product})" for product in products)


def to_verilog(netlist: GateNetlist) -> str:
    """Structural Verilog of the netlist."""
    ids = _identifier_map(netlist)
    ports = [ids[name] for name in list(netlist.inputs) + list(netlist.outputs)]
    latch_outputs = {
        gate.output for gate in netlist.gates if gate.kind.is_latch
    }
    lines = [
        f"// gate-level netlist {netlist.name}"
        + (f" (library {netlist.library})" if netlist.library else ""),
        f"module {_module_name(netlist.name)} ({', '.join(ports)});",
    ]
    for name in netlist.inputs:
        lines.append(f"  input {ids[name]};")
    for name in netlist.outputs:
        lines.append(f"  output {ids[name]};")
    for name in sorted(netlist.nets):
        if name in netlist.inputs or name in netlist.outputs:
            continue
        lines.append(f"  wire {ids[name]};")
    for name in sorted(latch_outputs):
        lines.append(f"  reg {ids[name]};")
    lines.append("")
    for gate in netlist.gates:
        out = ids[gate.output]
        if gate.kind is GateKind.SOP:
            lines.append(f"  assign {out} = {_verilog_sop(gate, ids)};  // {gate.cell}")
        elif gate.kind is GateKind.C_LATCH:
            set_net, reset_net = (ids[net] for net in gate.inputs)
            lines.append(f"  always @* begin  // {gate.name}: c-latch")
            lines.append(f"    if ({set_net} & ~{reset_net}) {out} = 1'b1;")
            lines.append(f"    else if ({reset_net} & ~{set_net}) {out} = 1'b0;")
            lines.append("  end")
        else:  # gated latch
            enable, data = (ids[net] for net in gate.inputs)
            polarity = gate.terms[0][0][1]
            expression = data if polarity else f"~{data}"
            lines.append(f"  always @* begin  // {gate.name}: gated latch")
            lines.append(f"    if ({enable}) {out} = {expression};")
            lines.append("  end")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


_V_DECL_RE = re.compile(r"^\s*(input|output|wire|reg)\s+(.+?);\s*$")
_V_ID_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_$]*")
_V_KEYWORDS = {"assign", "always", "begin", "end", "if", "else", "module", "endmodule"}


def validate_verilog(text: str) -> None:
    """Light structural well-formedness check of emitted Verilog.

    Verifies module/endmodule pairing, that every referenced identifier is
    declared (port, wire or reg), that assignment targets are not inputs,
    and that parentheses balance per statement.  Raises
    :class:`ExportSyntaxError` on the first problem found.
    """
    declared: set[str] = set()
    inputs: set[str] = set()
    body: list[str] = []
    module_count = endmodule_count = 0
    for line in text.splitlines():
        stripped = line.split("//", 1)[0].strip()
        if not stripped:
            continue
        if re.match(r"^module\b", stripped):
            module_count += 1
            continue
        if stripped == "endmodule":
            endmodule_count += 1
            continue
        match = _V_DECL_RE.match(stripped)
        if match:
            kind, names = match.groups()
            for name in names.split(","):
                name = name.strip()
                if not _IDENT_RE.match(name):
                    raise ExportSyntaxError(f"bad {kind} declaration {name!r}")
                declared.add(name)
                if kind == "input":
                    inputs.add(name)
            continue
        body.append(stripped)
    if module_count == 0 or module_count != endmodule_count:
        raise ExportSyntaxError("unbalanced module/endmodule")
    for statement in body:
        if statement.count("(") != statement.count(")"):
            raise ExportSyntaxError(f"unbalanced parentheses in {statement!r}")
        cleaned = re.sub(r"\d+'b[01]+", " ", statement)
        for identifier in _V_ID_RE.findall(cleaned):
            if identifier in _V_KEYWORDS:
                continue
            if identifier not in declared:
                raise ExportSyntaxError(f"undeclared identifier {identifier!r}")
        assign = re.match(r"^assign\s+([A-Za-z_][A-Za-z0-9_$]*)\s*=", statement)
        if assign and assign.group(1) in inputs:
            raise ExportSyntaxError(f"assignment drives input {assign.group(1)!r}")


# ---------------------------------------------------------------------- #
# BLIF
# ---------------------------------------------------------------------- #


def _blif_rows(gate: GateInstance) -> list[str]:
    """PLA rows of one gate's ``.names`` table."""
    width = len(gate.inputs)
    if gate.kind is GateKind.C_LATCH:
        # inputs: set, reset, q (feedback); asynchronous hold table
        return ["10- 1", "-01 1", "1-1 1"]
    if gate.kind is GateKind.GATED_LATCH:
        polarity = gate.terms[0][0][1]
        return [f"1{polarity}- 1", "0-1 1"]
    rows: list[str] = []
    for term in gate.terms:
        if not term:
            rows.append("1" * width + " 1" if width else "1")
            continue
        chars = ["-"] * width
        for pin, polarity in term:
            chars[pin] = str(polarity)
        rows.append("".join(chars) + " 1")
    if not gate.terms and width == 0:
        return []  # constant 0: .names with no rows
    return rows


def to_blif(netlist: GateNetlist) -> str:
    """BLIF description with one ``.names`` table per gate."""
    lines = [
        f"# gate-level netlist {netlist.name}"
        + (f" (library {netlist.library})" if netlist.library else ""),
        f".model {_module_name(netlist.name)}",
        f".inputs {' '.join(netlist.inputs)}",
        f".outputs {' '.join(netlist.outputs)}",
    ]
    for gate in netlist.gates:
        lines.append(f"# {gate.name}: {gate.cell}")
        if gate.kind is GateKind.SOP:
            signature = list(gate.inputs)
            if not gate.terms:
                signature = []  # constant 0
            elif any(not term for term in gate.terms):
                signature = []  # constant 1
                lines.append(f".names {gate.output}")
                lines.append("1")
                continue
            lines.append(f".names {' '.join(signature + [gate.output])}".rstrip())
            rows = _blif_rows(gate) if gate.terms else []
            lines.extend(rows)
        else:
            feedback = list(gate.inputs) + [gate.output]
            lines.append(f".names {' '.join(feedback + [gate.output])}")
            lines.extend(_blif_rows(gate))
    lines.append(".end")
    return "\n".join(lines) + "\n"


def parse_blif(text: str) -> dict:
    """Parse (and validate) a BLIF document emitted by :func:`to_blif`.

    Returns ``{"model", "inputs", "outputs", "names": [(inputs, output,
    rows), ...]}``.  Raises :class:`ExportSyntaxError` on malformed input:
    missing sections, inconsistent row widths, rows with invalid characters,
    or tables reading undefined nets.
    """
    model = None
    inputs: list[str] = []
    outputs: list[str] = []
    names: list[tuple[list[str], str, list[str]]] = []
    current: tuple[list[str], str, list[str]] | None = None
    ended = False
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if ended:
            raise ExportSyntaxError("content after .end")
        if line.startswith(".model"):
            if model is not None:
                raise ExportSyntaxError("duplicate .model")
            model = line.split(maxsplit=1)[1].strip() if " " in line else ""
        elif line.startswith(".inputs"):
            inputs.extend(line.split()[1:])
        elif line.startswith(".outputs"):
            outputs.extend(line.split()[1:])
        elif line.startswith(".names"):
            tokens = line.split()[1:]
            if not tokens:
                raise ExportSyntaxError(".names with no signals")
            current = (tokens[:-1], tokens[-1], [])
            names.append(current)
        elif line == ".end":
            ended = True
        elif line.startswith("."):
            raise ExportSyntaxError(f"unsupported BLIF construct {line.split()[0]!r}")
        else:
            if current is None:
                raise ExportSyntaxError(f"cover row outside .names: {line!r}")
            current[2].append(line)
    if model is None:
        raise ExportSyntaxError("missing .model")
    if not ended:
        raise ExportSyntaxError("missing .end")
    defined = set(inputs) | {output for _, output, _ in names}
    for table_inputs, output, rows in names:
        for net in table_inputs:
            # latch feedback makes a table its own input; any table output
            # or primary input is a legal source
            if net not in defined:
                raise ExportSyntaxError(f".names reads undefined net {net!r}")
        for row in rows:
            parts = row.split()
            if table_inputs:
                if len(parts) != 2 or len(parts[0]) != len(table_inputs):
                    raise ExportSyntaxError(
                        f"row {row!r} does not match {len(table_inputs)} inputs"
                    )
                pattern, value = parts
            else:
                if len(parts) != 1:
                    raise ExportSyntaxError(f"bad constant row {row!r}")
                pattern, value = "", parts[0]
            if set(pattern) - set("01-"):
                raise ExportSyntaxError(f"invalid cover characters in {row!r}")
            if value not in ("0", "1"):
                raise ExportSyntaxError(f"invalid output value in {row!r}")
    for net in outputs:
        if net not in defined:
            raise ExportSyntaxError(f"output {net!r} is never defined")
    return {"model": model, "inputs": inputs, "outputs": outputs, "names": names}


# ---------------------------------------------------------------------- #
# JSON
# ---------------------------------------------------------------------- #


def to_json(netlist: GateNetlist) -> str:
    """The IR's lossless JSON document (reader:
    :meth:`~repro.gates.ir.GateNetlist.from_json`)."""
    return json.dumps(netlist.to_json(), indent=2, sort_keys=False) + "\n"


# ---------------------------------------------------------------------- #
# EQN
# ---------------------------------------------------------------------- #


def _eqn_sop(gate: GateInstance, ids: dict[str, str]) -> str:
    if not gate.terms:
        return "0"
    products: list[str] = []
    for term in gate.terms:
        if not term:
            return "1"
        literals = [
            (ids[gate.inputs[pin]] if polarity else f"!{ids[gate.inputs[pin]]}")
            for pin, polarity in term
        ]
        products.append(" * ".join(literals))
    return " + ".join(products)


def to_eqn(netlist: GateNetlist) -> str:
    """Equation-format description (latches as combinational feedback)."""
    ids = _identifier_map(netlist)
    lines = [
        f"# gate-level netlist {netlist.name}"
        + (f" (library {netlist.library})" if netlist.library else ""),
        f"INORDER = {' '.join(ids[name] for name in netlist.inputs)};",
        f"OUTORDER = {' '.join(ids[name] for name in netlist.outputs)};",
    ]
    for gate in netlist.gates:
        out = ids[gate.output]
        if gate.kind is GateKind.SOP:
            lines.append(f"{out} = {_eqn_sop(gate, ids)};")
        elif gate.kind is GateKind.C_LATCH:
            set_net, reset_net = (ids[net] for net in gate.inputs)
            lines.append(
                f"{out} = {set_net} + {out} * !{reset_net};  # c-latch feedback"
            )
        else:
            enable, data = (ids[net] for net in gate.inputs)
            polarity = gate.terms[0][0][1]
            literal = data if polarity else f"!{data}"
            lines.append(
                f"{out} = {enable} * {literal} + {out} * !{enable};"
                "  # gated-latch feedback"
            )
    return "\n".join(lines) + "\n"


def parse_eqn(text: str) -> dict:
    """Parse (and validate) an EQN document emitted by :func:`to_eqn`.

    Returns ``{"inputs", "outputs", "equations": {name: expression}}``.
    Raises :class:`ExportSyntaxError` on duplicate definitions, undefined
    references, or malformed lines.
    """
    inputs: list[str] = []
    outputs: list[str] = []
    equations: dict[str, str] = {}
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if not line.endswith(";"):
            raise ExportSyntaxError(f"missing ';' in {line!r}")
        line = line[:-1].strip()
        if line.startswith("INORDER"):
            inputs.extend(line.split("=", 1)[1].split())
            continue
        if line.startswith("OUTORDER"):
            outputs.extend(line.split("=", 1)[1].split())
            continue
        if "=" not in line:
            raise ExportSyntaxError(f"not an equation: {line!r}")
        name, expression = (part.strip() for part in line.split("=", 1))
        if not _IDENT_RE.match(name):
            raise ExportSyntaxError(f"bad equation target {name!r}")
        if name in equations:
            raise ExportSyntaxError(f"duplicate definition of {name!r}")
        equations[name] = expression
    defined = set(inputs) | set(equations)
    for name, expression in equations.items():
        stripped = re.sub(r"[!*+()\s]", " ", expression)
        for token in stripped.split():
            if token in ("0", "1"):
                continue
            if not _IDENT_RE.match(token):
                raise ExportSyntaxError(f"bad token {token!r} in {name!r}")
            if token not in defined:
                raise ExportSyntaxError(f"{name!r} references undefined {token!r}")
    for name in outputs:
        if name not in defined:
            raise ExportSyntaxError(f"OUTORDER lists undefined {name!r}")
    return {"inputs": inputs, "outputs": outputs, "equations": equations}


# ---------------------------------------------------------------------- #
# Dispatch
# ---------------------------------------------------------------------- #

EXPORTERS: dict[str, Callable[[GateNetlist], str]] = {
    "verilog": to_verilog,
    "blif": to_blif,
    "json": to_json,
    "eqn": to_eqn,
}

#: formats accepted by :func:`export_netlist` and the CLI
EXPORT_FORMATS = tuple(sorted(EXPORTERS))


def export_netlist(netlist: GateNetlist, fmt: str) -> str:
    """Render the netlist in the named format."""
    try:
        exporter = EXPORTERS[fmt]
    except KeyError as error:
        raise ValueError(
            f"unknown export format {fmt!r} (choose from {', '.join(EXPORT_FORMATS)})"
        ) from error
    return exporter(netlist)


__all__ = [
    "EXPORT_FORMATS",
    "EXPORTERS",
    "ExportSyntaxError",
    "export_netlist",
    "parse_blif",
    "parse_eqn",
    "to_blif",
    "to_eqn",
    "to_json",
    "to_verilog",
    "validate_verilog",
]
