"""Differential verification of a mapped netlist against its behaviour.

The speed-independence verifier (:mod:`repro.verify`) approves the
*behavioural* netlist — set/reset covers with C-latch hold semantics.
Technology mapping then rewrites that behaviour into a gate graph, and this
module closes the loop the paper leaves on paper (and that Balasubramanian's
DIMS critique shows is easy to get wrong): the gate-level event simulation
of the mapped netlist is compared with
:meth:`~repro.synthesis.netlist.Circuit.next_values` over **every** reachable
state code of the specification.  Any divergence — a dropped region gate, a
mis-collapsed gated latch, a wrong OR-tree — surfaces as a concrete state
code plus the disagreeing signal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.gates.ir import GateNetlist
from repro.gates.simulate import GateLevelSimulator
from repro.petri.reachability import build_reachability_graph
from repro.stg.encoding import EncodedReachabilityGraph, encode_reachability_graph
from repro.stg.stg import STG
from repro.synthesis.netlist import Circuit

#: mismatches reported verbatim before the report switches to counting
MAX_REPORTED_MISMATCHES = 20


@dataclass
class MappedVerificationReport:
    """Outcome of the gate-level differential check."""

    equivalent: bool
    checked_codes: int = 0
    checked_markings: int = 0
    mismatches: list[str] = field(default_factory=list)
    mismatch_count: int = 0

    def __bool__(self) -> bool:
        return self.equivalent


def verify_mapped_netlist(
    stg: STG,
    circuit: Circuit,
    netlist: GateNetlist,
    encoded: Optional[EncodedReachabilityGraph] = None,
    max_markings: Optional[int] = None,
) -> MappedVerificationReport:
    """Check the mapped netlist against the behavioural circuit.

    For every distinct reachable state code of ``stg``, the settled outputs
    of the gate-level simulation must equal ``circuit.next_values`` on that
    code.  Pass a pre-computed ``encoded`` reachability graph to reuse the
    enumeration of an earlier verification stage.
    """
    if encoded is None:
        graph = build_reachability_graph(stg.net, max_markings=max_markings)
        encoded = encode_reachability_graph(stg, graph)
    simulator = GateLevelSimulator(netlist)
    signals = [s for s in circuit.signals if s in stg.non_input_signals] or list(
        circuit.signals
    )

    mismatches: list[str] = []
    mismatch_count = 0
    seen: set[tuple[int, ...]] = set()
    order = list(stg.signal_names)
    for marking in encoded.markings:
        code = encoded.code_of(marking)
        key = tuple(code[s] for s in order)
        if key in seen:
            continue
        seen.add(key)
        expected = circuit.next_values(code)
        actual = simulator.settle(code)
        for signal in signals:
            if actual[signal] != expected[signal]:
                mismatch_count += 1
                if len(mismatches) < MAX_REPORTED_MISMATCHES:
                    bits = "".join(str(code[s]) for s in order)
                    mismatches.append(
                        f"signal {signal}: gates produce {actual[signal]}, "
                        f"behaviour implies {expected[signal]} at code {bits} "
                        f"(signals {' '.join(order)})"
                    )
    return MappedVerificationReport(
        equivalent=mismatch_count == 0,
        checked_codes=len(seen),
        checked_markings=len(encoded.markings),
        mismatches=mismatches,
        mismatch_count=mismatch_count,
    )


__all__ = ["MappedVerificationReport", "verify_mapped_netlist"]
