"""Differential verification of a mapped netlist against its behaviour.

The speed-independence verifier (:mod:`repro.verify`) approves the
*behavioural* netlist — set/reset covers with C-latch hold semantics.
Technology mapping then rewrites that behaviour into a gate graph, and this
module closes the loop the paper leaves on paper (and that Balasubramanian's
DIMS critique shows is easy to get wrong): the gate-level evaluation of the
mapped netlist is compared with
:meth:`~repro.synthesis.netlist.Circuit.next_values` over **every** reachable
state code of the specification.  Any divergence — a dropped region gate, a
mis-collapsed gated latch, a wrong OR-tree — surfaces as a concrete state
code plus the disagreeing signal.

Both sides of the comparison are vectorized: the distinct reachable codes
are transposed into per-signal bit columns, the mapped netlist runs through
the compiled straight-line program of :mod:`repro.gates.compiled` once, and
the behavioural circuit's covers are evaluated as column expressions (a
cube is an AND of literal columns).  No per-code dict is ever built unless a
mismatch needs reporting.  The per-code loop over the event simulator is
retained as :func:`_reference_verify_mapped_netlist` — the oracle pinning
the vectorized path in the differential tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.boolean.cover import Cover
from repro.boolean.interning import var_index
from repro.gates.compiled import c_latch_column, compile_netlist, signal_columns
from repro.gates.ir import GateNetlist
from repro.gates.simulate import GateLevelSimulator
from repro.petri.reachability import build_reachability_graph
from repro.stg.encoding import EncodedReachabilityGraph, encode_reachability_graph
from repro.stg.stg import STG
from repro.synthesis.netlist import Circuit

#: mismatches reported verbatim before the report switches to counting
MAX_REPORTED_MISMATCHES = 20


@dataclass
class MappedVerificationReport:
    """Outcome of the gate-level differential check."""

    equivalent: bool
    checked_codes: int = 0
    checked_markings: int = 0
    mismatches: list[str] = field(default_factory=list)
    mismatch_count: int = 0

    def __bool__(self) -> bool:
        return self.equivalent


def _cover_column(cover: Cover, columns: dict[str, int], mask: int) -> int:
    """Column of a cover: bit ``j`` set iff the cover is on under code ``j``."""
    result = 0
    for cube in cover:
        acc = mask
        for variable, value in cube.items():
            column = columns.get(variable)
            if column is None:
                # variable outside the state-code universe: the vertex test
                # can never match (mirrors ``covers_vertex`` on a dict)
                acc = 0
                break
            acc &= column if value else ~column & mask
            if not acc:
                break
        result |= acc
        if result == mask:
            break
    return result


def _circuit_columns(
    circuit: Circuit, signals: list[str], columns: dict[str, int], mask: int
) -> dict[str, int]:
    """Vectorized :meth:`Circuit.next_values` restricted to ``signals``."""
    results: dict[str, int] = {}
    for signal in signals:
        implementation = circuit[signal]
        set_column = _cover_column(implementation.set_cover, columns, mask)
        if not implementation.uses_latch:
            results[signal] = set_column
            continue
        reset_column = _cover_column(implementation.reset_cover, columns, mask)
        current = columns.get(signal, 0)
        results[signal] = c_latch_column(set_column, reset_column, current) & mask
    return results


def verify_mapped_netlist(
    stg: STG,
    circuit: Circuit,
    netlist: GateNetlist,
    encoded: Optional[EncodedReachabilityGraph] = None,
    max_markings: Optional[int] = None,
) -> MappedVerificationReport:
    """Check the mapped netlist against the behavioural circuit.

    For every distinct reachable state code of ``stg``, the settled outputs
    of the gate-level evaluation must equal ``circuit.next_values`` on that
    code.  Pass a pre-computed ``encoded`` reachability graph to reuse the
    enumeration of an earlier verification stage.
    """
    if encoded is None:
        graph = build_reachability_graph(stg.net, max_markings=max_markings)
        encoded = encode_reachability_graph(stg, graph)
    evaluator = compile_netlist(netlist)
    signals = [s for s in circuit.signals if s in stg.non_input_signals] or list(
        circuit.signals
    )

    order = list(stg.signal_names)
    signal_bits = [(signal, var_index(signal)) for signal in order]

    # distinct reachable codes, first-occurrence order
    seen: set[int] = set()
    unique_codes: list[int] = []
    for code in encoded.packed_codes:
        if code not in seen:
            seen.add(code)
            unique_codes.append(code)
    width = len(unique_codes)
    mask = (1 << width) - 1

    columns = signal_columns(unique_codes, signal_bits)
    actual = evaluator.evaluate(columns, width)
    expected = _circuit_columns(circuit, signals, columns, mask)

    mismatches: list[str] = []
    mismatch_count = 0
    difference_of = {
        signal: (actual[signal] ^ expected[signal]) & mask for signal in signals
    }
    if any(difference_of.values()):
        for j, code in enumerate(unique_codes):
            state_bit = 1 << j
            for signal in signals:
                if not difference_of[signal] & state_bit:
                    continue
                mismatch_count += 1
                if len(mismatches) < MAX_REPORTED_MISMATCHES:
                    bits = "".join(
                        str(code >> bit & 1) for _, bit in signal_bits
                    )
                    mismatches.append(
                        f"signal {signal}: gates produce "
                        f"{actual[signal] >> j & 1}, behaviour implies "
                        f"{expected[signal] >> j & 1} at code {bits} "
                        f"(signals {' '.join(order)})"
                    )
    return MappedVerificationReport(
        equivalent=mismatch_count == 0,
        checked_codes=width,
        checked_markings=len(encoded),
        mismatches=mismatches,
        mismatch_count=mismatch_count,
    )


# ---------------------------------------------------------------------- #
# Per-code reference implementation (differential-test oracle)
# ---------------------------------------------------------------------- #


def _reference_verify_mapped_netlist(
    stg: STG,
    circuit: Circuit,
    netlist: GateNetlist,
    encoded: Optional[EncodedReachabilityGraph] = None,
    max_markings: Optional[int] = None,
) -> MappedVerificationReport:
    """Reference check: one event-driven ``settle`` per distinct code."""
    if encoded is None:
        graph = build_reachability_graph(stg.net, max_markings=max_markings)
        encoded = encode_reachability_graph(stg, graph)
    simulator = GateLevelSimulator(netlist)
    signals = [s for s in circuit.signals if s in stg.non_input_signals] or list(
        circuit.signals
    )

    mismatches: list[str] = []
    mismatch_count = 0
    seen: set[tuple[int, ...]] = set()
    order = list(stg.signal_names)
    for marking in encoded.markings:
        code = encoded.code_of(marking)
        key = tuple(code[s] for s in order)
        if key in seen:
            continue
        seen.add(key)
        expected = circuit.next_values(code)
        actual = simulator._reference_settle(code)
        for signal in signals:
            if actual[signal] != expected[signal]:
                mismatch_count += 1
                if len(mismatches) < MAX_REPORTED_MISMATCHES:
                    bits = "".join(str(code[s]) for s in order)
                    mismatches.append(
                        f"signal {signal}: gates produce {actual[signal]}, "
                        f"behaviour implies {expected[signal]} at code {bits} "
                        f"(signals {' '.join(order)})"
                    )
    return MappedVerificationReport(
        equivalent=mismatch_count == 0,
        checked_codes=len(seen),
        checked_markings=len(encoded.markings),
        mismatches=mismatches,
        mismatch_count=mismatch_count,
    )


__all__ = [
    "MappedVerificationReport",
    "verify_mapped_netlist",
]
