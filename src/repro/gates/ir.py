"""Typed gate-level netlist IR.

The synthesis flow ends in actual gate implementations (Section III-A
architectures, Appendix F mapping onto complex gates).  This module is the
intermediate representation those implementations are lowered to: a
:class:`GateNetlist` of :class:`GateInstance` nodes wired through named
:class:`Net` objects.  The IR is what the exporters
(:mod:`repro.gates.exporters`), the gate-level event simulator
(:mod:`repro.gates.simulate`) and the mapped-netlist differential verifier
(:mod:`repro.gates.verify`) all consume.

Gate semantics
--------------

Three gate kinds cover every cell the mapper emits:

* ``sop`` — a complex gate computing a sum of products over its input pins.
  ``terms`` holds the SOP as ``((pin_index, polarity), ...)`` tuples;
  polarity ``0`` means the pin enters the product complemented (complex
  CMOS gates absorb complemented inputs, matching the paper's area model).
  AND, OR and INV gates are all special cases: an AND is one term, an OR is
  one single-literal term per input, an INV is one term with one negative
  literal.  ``terms == ()`` is the constant 0 and ``((),)`` the constant 1.
* ``c-latch`` — the set/reset memory element of Fig. 3(b)/(c).  Pin 0 is the
  set input, pin 1 the reset input: the output rises when set is on, falls
  when reset is on, and holds otherwise.
* ``gated-latch`` — the collapsed memory element of Appendix D.  Pin 0 is
  the enable (the shared part of the set and reset cubes), pin 1 the data
  literal; ``terms`` holds exactly one single-literal term ``((1, pol),)``
  recording the data polarity.  While enabled the output follows the data
  literal; otherwise it holds.

Feedback discipline
-------------------

Nets that carry specification signals (primary inputs and latch/gate
outputs) are the only legal feedback points: the combinational interior of
the netlist must be acyclic once signal nets are treated as cut points.
:meth:`GateNetlist.validate` enforces this, and
:meth:`GateNetlist.topological_gates` returns an evaluation order under the
same convention.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Optional


class NetlistError(ValueError):
    """Raised when a gate netlist is malformed."""


class GateKind(Enum):
    """Semantic class of a gate instance."""

    SOP = "sop"
    C_LATCH = "c-latch"
    GATED_LATCH = "gated-latch"

    @property
    def is_latch(self) -> bool:
        return self is not GateKind.SOP


@dataclass(frozen=True)
class Net:
    """One named wire of the netlist.

    ``kind`` is ``input`` (primary input, driven by the environment),
    ``output`` (carries an implemented signal, driven by the signal's root
    gate or latch) or ``internal`` (intermediate wire).  ``signal`` names
    the specification signal the net carries, if any.
    """

    name: str
    kind: str = "internal"
    signal: Optional[str] = None

    def to_dict(self) -> dict:
        data: dict = {"name": self.name, "kind": self.kind}
        if self.signal is not None:
            data["signal"] = self.signal
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Net":
        return cls(
            name=data["name"], kind=data.get("kind", "internal"),
            signal=data.get("signal"),
        )


#: one product term of a SOP gate: ((pin_index, polarity), ...)
Term = tuple[tuple[int, int], ...]


@dataclass(frozen=True)
class GateInstance:
    """One gate of the netlist.

    ``cell`` is the library cell name (``and2``, ``aoi22``, ``c-latch``,
    ``wide-and7``, ...), ``kind`` the semantic class, ``inputs`` the ordered
    input net names (one per pin), ``output`` the driven net, ``terms`` the
    SOP over the pins (see the module docstring for the latch conventions)
    and ``area`` the cell area in normalized transistor units.
    """

    name: str
    cell: str
    kind: GateKind
    inputs: tuple[str, ...]
    output: str
    terms: tuple[Term, ...] = ()
    area: int = 0

    def evaluate(self, pin_values: Iterable[int], current: int = 0) -> int:
        """Evaluate the gate on concrete pin values.

        ``current`` is the present output value, consulted only by the latch
        kinds (hold semantics).
        """
        values = tuple(pin_values)
        if self.kind is GateKind.C_LATCH:
            set_on, reset_on = values[0], values[1]
            if set_on and not reset_on:
                return 1
            if reset_on and not set_on:
                return 0
            return current
        if self.kind is GateKind.GATED_LATCH:
            enable, data = values[0], values[1]
            if not enable:
                return current
            polarity = self.terms[0][0][1]
            return 1 if data == polarity else 0
        for term in self.terms:
            if all(values[pin] == polarity for pin, polarity in term):
                return 1
        return 0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "cell": self.cell,
            "kind": self.kind.value,
            "inputs": list(self.inputs),
            "output": self.output,
            "terms": [[[pin, polarity] for pin, polarity in term] for term in self.terms],
            "area": self.area,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GateInstance":
        return cls(
            name=data["name"],
            cell=data["cell"],
            kind=GateKind(data["kind"]),
            inputs=tuple(data["inputs"]),
            output=data["output"],
            terms=tuple(
                tuple((int(pin), int(polarity)) for pin, polarity in term)
                for term in data.get("terms", [])
            ),
            area=int(data.get("area", 0)),
        )


@dataclass
class GateNetlist:
    """A complete gate-level circuit.

    ``inputs``/``outputs`` list the primary (specification-signal) nets in a
    stable order; ``nets`` maps every net name to its :class:`Net` and
    ``gates`` holds the instances in creation order (which is also a valid
    evaluation order for the combinational interior).
    """

    name: str
    inputs: tuple[str, ...] = ()
    outputs: tuple[str, ...] = ()
    nets: dict[str, Net] = field(default_factory=dict)
    gates: list[GateInstance] = field(default_factory=list)
    #: name of the gate library the netlist was mapped with
    library: str = ""

    # ------------------------------------------------------------------ #
    # Connectivity
    # ------------------------------------------------------------------ #

    def driver_of(self, net: str) -> Optional[GateInstance]:
        """The gate driving a net, or ``None`` for primary inputs."""
        for gate in self.gates:
            if gate.output == net:
                return gate
        return None

    def drivers(self) -> dict[str, GateInstance]:
        """Map of net name to its driving gate."""
        table: dict[str, GateInstance] = {}
        for gate in self.gates:
            table[gate.output] = gate
        return table

    def fanout(self, net: str) -> list[GateInstance]:
        """All gates reading a net."""
        return [gate for gate in self.gates if net in gate.inputs]

    def signal_nets(self) -> set[str]:
        """Nets carrying specification signals (the legal feedback points)."""
        return {
            name for name, net in self.nets.items() if net.signal is not None
        }

    # ------------------------------------------------------------------ #
    # Validation / ordering
    # ------------------------------------------------------------------ #

    def validate(self) -> None:
        """Raise :class:`NetlistError` on structural problems."""
        names = Counter(gate.name for gate in self.gates)
        duplicates = [name for name, count in names.items() if count > 1]
        if duplicates:
            raise NetlistError(f"duplicate gate names: {sorted(duplicates)}")
        driven = Counter(gate.output for gate in self.gates)
        multi = [net for net, count in driven.items() if count > 1]
        if multi:
            raise NetlistError(f"nets with multiple drivers: {sorted(multi)}")
        for name in list(self.inputs) + list(self.outputs):
            if name not in self.nets:
                raise NetlistError(f"primary net {name!r} is not declared")
        for net in self.inputs:
            if net in driven:
                raise NetlistError(f"primary input {net!r} has a driver")
        for net in self.outputs:
            if net not in driven:
                raise NetlistError(f"output {net!r} has no driver")
        for gate in self.gates:
            if gate.output not in self.nets:
                raise NetlistError(
                    f"gate {gate.name!r} drives undeclared net {gate.output!r}"
                )
            for net in gate.inputs:
                if net not in self.nets:
                    raise NetlistError(
                        f"gate {gate.name!r} reads undeclared net {net!r}"
                    )
            for term in gate.terms:
                for pin, polarity in term:
                    if not 0 <= pin < len(gate.inputs):
                        raise NetlistError(
                            f"gate {gate.name!r} term references pin {pin} "
                            f"outside its {len(gate.inputs)} inputs"
                        )
                    if polarity not in (0, 1):
                        raise NetlistError(
                            f"gate {gate.name!r} has invalid polarity {polarity!r}"
                        )
            if gate.kind.is_latch and len(gate.inputs) != 2:
                raise NetlistError(
                    f"latch {gate.name!r} must have exactly 2 inputs, "
                    f"has {len(gate.inputs)}"
                )
        self.topological_gates()  # raises on combinational cycles

    def topological_gates(self) -> list[GateInstance]:
        """Gates in dependency order, signal nets acting as cut points.

        A gate only waits for the drivers of its *internal* input nets;
        feedback through specification-signal nets (latch outputs, the
        self-dependence of combinational complex gates) is legal and cut.
        Raises :class:`NetlistError` if the internal interior is cyclic.
        """
        cut = self.signal_nets()
        drivers = self.drivers()
        indegree: dict[str, int] = {}
        dependents: dict[str, list[GateInstance]] = {}
        for gate in self.gates:
            count = 0
            for net in set(gate.inputs):
                if net in cut or net not in drivers:
                    continue
                count += 1
                dependents.setdefault(net, []).append(gate)
            indegree[gate.name] = count
        ready = deque(gate for gate in self.gates if indegree[gate.name] == 0)
        order: list[GateInstance] = []
        while ready:
            gate = ready.popleft()
            order.append(gate)
            for consumer in dependents.get(gate.output, ()):
                indegree[consumer.name] -= 1
                if indegree[consumer.name] == 0:
                    ready.append(consumer)
        if len(order) != len(self.gates):
            stuck = sorted(set(g.name for g in self.gates) - set(g.name for g in order))
            raise NetlistError(f"combinational cycle through gates {stuck}")
        return order

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def num_gates(self) -> int:
        return len(self.gates)

    def num_nets(self) -> int:
        return len(self.nets)

    def total_area(self) -> int:
        return sum(gate.area for gate in self.gates)

    def num_latches(self) -> int:
        return sum(1 for gate in self.gates if gate.kind.is_latch)

    def cell_histogram(self) -> dict[str, int]:
        """Instance count per cell name."""
        return dict(Counter(gate.cell for gate in self.gates))

    def stats(self) -> dict:
        return {
            "gates": self.num_gates(),
            "nets": self.num_nets(),
            "area": self.total_area(),
            "latches": self.num_latches(),
            "cells": dict(sorted(self.cell_histogram().items())),
        }

    def describe(self) -> str:
        """Multi-line human readable dump of the gate graph."""
        lines = [
            f"netlist {self.name} "
            f"({self.num_gates()} gates, {self.num_nets()} nets, "
            f"area {self.total_area()})"
        ]
        for gate in self.gates:
            pins = ", ".join(gate.inputs)
            lines.append(f"  {gate.name}: {gate.cell}({pins}) -> {gate.output}")
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    def to_json(self) -> dict:
        """JSON-serializable description (the ``json`` export format)."""
        return {
            "format": "repro-gate-netlist",
            "version": 1,
            "name": self.name,
            "library": self.library,
            "inputs": list(self.inputs),
            "outputs": list(self.outputs),
            "nets": [self.nets[name].to_dict() for name in sorted(self.nets)],
            "gates": [gate.to_dict() for gate in self.gates],
        }

    @classmethod
    def from_json(cls, data: dict) -> "GateNetlist":
        """Reconstruct a netlist from :meth:`to_json` output (validated)."""
        if data.get("format") != "repro-gate-netlist":
            raise NetlistError(
                f"not a gate-netlist document (format={data.get('format')!r})"
            )
        netlist = cls(
            name=data["name"],
            library=data.get("library", ""),
            inputs=tuple(data.get("inputs", ())),
            outputs=tuple(data.get("outputs", ())),
            nets={net["name"]: Net.from_dict(net) for net in data.get("nets", ())},
            gates=[GateInstance.from_dict(gate) for gate in data.get("gates", ())],
        )
        netlist.validate()
        return netlist
