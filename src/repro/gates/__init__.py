"""Gate-level netlist subsystem: IR, libraries, exporters, simulation.

This package is the structural back half of the synthesis flow.  The
behavioural :class:`~repro.synthesis.netlist.Circuit` (set/reset covers with
C-latch hold semantics) is lowered by the technology mapper
(:func:`repro.synthesis.mapping.map_circuit`) into a typed gate graph, and
everything downstream of mapping lives here:

* :mod:`repro.gates.ir`        — :class:`GateNetlist` / :class:`GateInstance`
  / :class:`Net`, the typed gate-graph IR with validation, topological
  ordering and a lossless JSON form;
* :mod:`repro.gates.library`   — :class:`GateLibrary` cells, deterministic
  Boolean matching, cover plans, JSON (de)serialization and the built-in
  libraries ``generic-cmos`` / ``two-input-only`` / ``latch-free``;
* :mod:`repro.gates.exporters` — ``verilog`` / ``blif`` / ``json`` / ``eqn``
  emitters plus their readers and syntax validators;
* :mod:`repro.gates.simulate`  — the gate-level event simulator;
* :mod:`repro.gates.verify`    — the differential check of the mapped
  netlist against the behavioural circuit over every reachable state.
"""

from repro.gates.exporters import (
    EXPORT_FORMATS,
    ExportSyntaxError,
    export_netlist,
    parse_blif,
    parse_eqn,
    to_blif,
    to_eqn,
    to_json,
    to_verilog,
    validate_verilog,
)
from repro.gates.ir import GateInstance, GateKind, GateNetlist, Net, NetlistError
from repro.gates.library import (
    BUILTIN_LIBRARIES,
    GateLibrary,
    LibraryCell,
    default_library,
    get_library,
    latch_free_library,
    two_input_library,
)
from repro.gates.compiled import CompiledNetlistEvaluator, compile_netlist
from repro.gates.simulate import GateLevelSimulator, SimulationError, simulate_settled
from repro.gates.verify import MappedVerificationReport, verify_mapped_netlist

__all__ = [
    "BUILTIN_LIBRARIES",
    "CompiledNetlistEvaluator",
    "EXPORT_FORMATS",
    "ExportSyntaxError",
    "GateInstance",
    "GateKind",
    "GateLevelSimulator",
    "compile_netlist",
    "GateLibrary",
    "GateNetlist",
    "LibraryCell",
    "MappedVerificationReport",
    "Net",
    "NetlistError",
    "SimulationError",
    "default_library",
    "export_netlist",
    "get_library",
    "latch_free_library",
    "parse_blif",
    "parse_eqn",
    "simulate_settled",
    "to_blif",
    "to_eqn",
    "to_json",
    "to_verilog",
    "two_input_library",
    "validate_verilog",
    "verify_mapped_netlist",
]
