"""Gate libraries: typed cells, Boolean-matching fits, and cover plans.

A :class:`GateLibrary` is an ordered collection of :class:`LibraryCell`
objects, each characterized by the largest SOP it can absorb (Appendix F's
complex-gate matching: number of product terms, literals per term, total
literals) plus an area in normalized transistor units.

The library's central operation is :meth:`GateLibrary.plan_cover`: a
deterministic *plan* describing how a cover is realized as gates — one cell
when a single cell absorbs the whole SOP, otherwise one cell per product
term (oversized terms decomposed through an explicit AND tree) joined by a
tree of 2-input ORs.  The plan is consumed both by the technology mapper
(:func:`repro.synthesis.mapping.map_circuit`, which instantiates it into a
:class:`~repro.gates.ir.GateNetlist`) and by the plain area estimator
:meth:`GateLibrary.map_cover`, so the reported area and the constructed gate
graph can never disagree.

Libraries are serializable (:meth:`GateLibrary.to_json` /
:meth:`GateLibrary.from_json`) and three built-ins are provided:

* ``generic-cmos``   — complex gates up to four inputs (the default);
* ``two-input-only`` — inverters plus 2-input AND/OR only;
* ``latch-free``     — the generic cells but no C-latch: memory elements
  are expanded into combinational feedback (``q = set + q·reset'``).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, replace
from typing import Optional, Union

from repro.boolean.cover import Cover

#: one operand of a plan node: a cover literal or an earlier node's output
PlanOperand = Union[tuple[str, str, int], tuple[str, int]]  # ("var", name, pol) | ("node", index)


@dataclass(frozen=True)
class PlanNode:
    """One planned gate: a cell plus the SOP it computes over its operands.

    ``terms`` is the SOP, each term a tuple of operands; an operand is
    ``("var", variable, polarity)`` for a cover literal or ``("node", i)``
    for the output of plan node ``i`` (always consumed positively).
    """

    cell: str
    area: int
    terms: tuple[tuple[PlanOperand, ...], ...]


@dataclass(frozen=True)
class LibraryCell:
    """One combinational cell of the gate library."""

    name: str
    max_terms: int
    max_literals_per_term: int
    max_total_literals: int
    area: int

    def fits(self, cover: Cover) -> bool:
        """True if the cover can be absorbed by one instance of the cell."""
        if len(cover) > self.max_terms:
            return False
        if cover.num_literals() > self.max_total_literals:
            return False
        return all(
            cube.num_literals() <= self.max_literals_per_term for cube in cover
        )

    def fits_and(self, width: int) -> bool:
        """True if the cell can absorb a single ``width``-literal product."""
        return (
            self.max_terms >= 1
            and self.max_literals_per_term >= width
            and self.max_total_literals >= width
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "max_terms": self.max_terms,
            "max_literals_per_term": self.max_literals_per_term,
            "max_total_literals": self.max_total_literals,
            "area": self.area,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LibraryCell":
        return cls(
            name=data["name"],
            max_terms=int(data["max_terms"]),
            max_literals_per_term=int(data["max_literals_per_term"]),
            max_total_literals=int(data["max_total_literals"]),
            area=int(data["area"]),
        )


@dataclass
class GateLibrary:
    """An ordered collection of library cells."""

    name: str
    cells: list[LibraryCell] = field(default_factory=list)
    #: area of the C-latch memory cell
    latch_area: int = 8
    #: area of a 2-input OR used to combine split covers
    or2_area: int = 6
    #: False expands memory elements into combinational feedback
    allow_latch: bool = True

    # ------------------------------------------------------------------ #
    # Matching
    # ------------------------------------------------------------------ #

    def cheapest_fit(self, cover: Cover) -> Optional[LibraryCell]:
        """The cheapest cell absorbing the whole cover, if any.

        Ties on area resolve by (area, total-literal capacity, name) so the
        choice is independent of cell declaration order.
        """
        candidates = [cell for cell in self.cells if cell.fits(cover)]
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda cell: (cell.area, cell.max_total_literals, cell.name),
        )

    def cheapest_and(self, width: int) -> Optional[LibraryCell]:
        """The cheapest cell absorbing a ``width``-literal product term."""
        candidates = [cell for cell in self.cells if cell.fits_and(width)]
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda cell: (cell.area, cell.max_total_literals, cell.name),
        )

    def widest_and(self) -> int:
        """The widest single product term any cell absorbs."""
        widths = [
            min(cell.max_literals_per_term, cell.max_total_literals)
            for cell in self.cells
            if cell.max_terms >= 1
        ]
        return max(widths, default=0)

    # ------------------------------------------------------------------ #
    # Planning
    # ------------------------------------------------------------------ #

    def plan_cover(self, cover: Cover) -> list[PlanNode]:
        """Plan the realization of a cover; the last node is the root.

        Empty covers plan to an empty list (the mapper ties the output to
        constant 0).  When no single cell absorbs the cover it is split per
        product term; terms too wide for any cell are decomposed through an
        explicit AND tree of the library's widest AND-capable cells (the
        area is then simply the sum of the chosen cells).  Only when the
        library cannot even absorb a 2-literal product does the planner fall
        back to a ``wide-and<k>`` pseudo-cell of area ``2k + 2``.
        """
        if cover.is_empty():
            return []
        single = self.cheapest_fit(cover)
        if single is not None:
            return [PlanNode(single.name, single.area, _cover_terms(cover))]
        nodes: list[PlanNode] = []
        roots: list[int] = []
        for cube in cover:
            term_cover = Cover([cube], cover.variables)
            cell = self.cheapest_fit(term_cover)
            if cell is not None:
                nodes.append(PlanNode(cell.name, cell.area, _cover_terms(term_cover)))
                roots.append(len(nodes) - 1)
            else:
                roots.append(self._plan_and_tree(cube, nodes))
        # balanced pairwise OR tree joining the product terms (len - 1 ORs)
        while len(roots) > 1:
            joined: list[int] = []
            for index in range(0, len(roots) - 1, 2):
                left, right = roots[index], roots[index + 1]
                nodes.append(
                    PlanNode(
                        "or2",
                        self.or2_area,
                        ((("node", left),), (("node", right),)),
                    )
                )
                joined.append(len(nodes) - 1)
            if len(roots) % 2:
                joined.append(roots[-1])
            roots = joined
        return nodes

    def _plan_and_tree(self, cube, nodes: list[PlanNode]) -> int:
        """Decompose an oversized product term into a tree of AND cells."""
        literals = sorted(cube.literals.items())
        width = self.widest_and()
        if width < 2:
            # degenerate library (no 2-input AND): deterministic pseudo-cell
            count = len(literals)
            nodes.append(
                PlanNode(
                    f"wide-and{count}",
                    2 * count + 2,
                    (tuple(("var", var, pol) for var, pol in literals),),
                )
            )
            return len(nodes) - 1
        operands: list[PlanOperand] = [
            ("var", var, pol) for var, pol in literals
        ]
        while len(operands) > 1:
            grouped: list[PlanOperand] = []
            for start in range(0, len(operands), width):
                chunk = operands[start:start + width]
                if len(chunk) == 1:
                    grouped.append(chunk[0])
                    continue
                cell = self.cheapest_and(len(chunk))
                nodes.append(PlanNode(cell.name, cell.area, (tuple(chunk),)))
                grouped.append(("node", len(nodes) - 1))
            operands = grouped
        if operands[0][0] == "var":
            # a 1-literal cube no cell absorbs: emit it through the pseudo-cell
            nodes.append(PlanNode("wide-and1", 4, (tuple(operands),)))
            return len(nodes) - 1
        return operands[0][1]

    def map_cover(self, cover: Cover) -> tuple[int, list[str]]:
        """Map a cover onto the library; returns ``(area, cell_names)``.

        A pure area/name view of :meth:`plan_cover` — the netlist builder
        instantiates the same plan, so both always agree.
        """
        plan = self.plan_cover(cover)
        return sum(node.area for node in plan), [node.cell for node in plan]

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    def to_json(self) -> dict:
        return {
            "format": "repro-gate-library",
            "version": 1,
            "name": self.name,
            "latch_area": self.latch_area,
            "or2_area": self.or2_area,
            "allow_latch": self.allow_latch,
            "cells": [cell.to_dict() for cell in self.cells],
        }

    @classmethod
    def from_json(cls, data: dict) -> "GateLibrary":
        if data.get("format") not in (None, "repro-gate-library"):
            raise ValueError(
                f"not a gate-library document (format={data.get('format')!r})"
            )
        return cls(
            name=data["name"],
            cells=[LibraryCell.from_dict(cell) for cell in data.get("cells", ())],
            latch_area=int(data.get("latch_area", 8)),
            or2_area=int(data.get("or2_area", 6)),
            allow_latch=bool(data.get("allow_latch", True)),
        )

    @classmethod
    def from_file(cls, path: Union[str, os.PathLike]) -> "GateLibrary":
        """Load a library from a JSON file."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except OSError as error:
            raise ValueError(f"cannot read gate library {path!r}: {error}") from error
        except json.JSONDecodeError as error:
            raise ValueError(f"malformed gate library {path!r}: {error}") from error
        return cls.from_json(data)


def _cover_terms(cover: Cover) -> tuple:
    """The SOP of a cover as plan terms (literals sorted per cube)."""
    return tuple(
        tuple(("var", var, pol) for var, pol in sorted(cube.literals.items()))
        for cube in cover
    )


# ---------------------------------------------------------------------- #
# Built-in libraries
# ---------------------------------------------------------------------- #


def _generic_cells() -> list[LibraryCell]:
    return [
        LibraryCell("inv", max_terms=1, max_literals_per_term=1, max_total_literals=1, area=2),
        LibraryCell("and2", max_terms=1, max_literals_per_term=2, max_total_literals=2, area=6),
        LibraryCell("and3", max_terms=1, max_literals_per_term=3, max_total_literals=3, area=8),
        LibraryCell("and4", max_terms=1, max_literals_per_term=4, max_total_literals=4, area=10),
        LibraryCell("or2", max_terms=2, max_literals_per_term=1, max_total_literals=2, area=6),
        LibraryCell("aoi21", max_terms=2, max_literals_per_term=2, max_total_literals=3, area=8),
        LibraryCell("aoi22", max_terms=2, max_literals_per_term=2, max_total_literals=4, area=10),
        LibraryCell("aoi222", max_terms=3, max_literals_per_term=2, max_total_literals=6, area=14),
        LibraryCell("oai31", max_terms=2, max_literals_per_term=3, max_total_literals=4, area=10),
        LibraryCell("complex4x3", max_terms=4, max_literals_per_term=3, max_total_literals=12, area=22),
    ]


def default_library() -> GateLibrary:
    """A generic CMOS-style library with complex gates up to four inputs."""
    return GateLibrary(name="generic-cmos", cells=_generic_cells(), latch_area=8, or2_area=6)


def two_input_library() -> GateLibrary:
    """Inverters and 2-input AND/OR only (FPGA-basic-cell flavour)."""
    cells = [
        LibraryCell("inv", max_terms=1, max_literals_per_term=1, max_total_literals=1, area=2),
        LibraryCell("and2", max_terms=1, max_literals_per_term=2, max_total_literals=2, area=6),
        LibraryCell("or2", max_terms=2, max_literals_per_term=1, max_total_literals=2, area=6),
    ]
    return GateLibrary(name="two-input-only", cells=cells, latch_area=8, or2_area=6)


def latch_free_library() -> GateLibrary:
    """The generic cells without a C-latch: memory becomes SOP feedback."""
    library = default_library()
    return replace(library, name="latch-free", allow_latch=False)


BUILTIN_LIBRARIES = {
    "generic-cmos": default_library,
    "two-input-only": two_input_library,
    "latch-free": latch_free_library,
}


def get_library(source: Union[str, GateLibrary, None]) -> GateLibrary:
    """Resolve a library argument: instance, built-in name, or JSON path."""
    if source is None:
        return default_library()
    if isinstance(source, GateLibrary):
        return source
    builder = BUILTIN_LIBRARIES.get(source)
    if builder is not None:
        return builder()
    if os.path.exists(source) or str(source).endswith(".json"):
        return GateLibrary.from_file(source)
    raise ValueError(
        f"unknown gate library {source!r} (built-ins: "
        f"{', '.join(sorted(BUILTIN_LIBRARIES))}; or pass a JSON file path)"
    )
