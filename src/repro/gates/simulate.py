"""Gate-level simulation of a mapped netlist.

The simulator implements the one-step semantics the speed-independence
verifier uses on the behavioural netlist: given the binary code of a
reachable state (a value for every specification signal), the signal nets
are clamped to their present values, events propagate through the
combinational interior until every internal net settles, and the gate or
latch driving each output signal then yields that signal's *next* value.

Clamping the signal nets is what makes the interior acyclic (see the
feedback discipline in :mod:`repro.gates.ir`): the self-dependence of a
combinational complex gate and the feedback of a latch both pass through a
clamped net, so propagation always terminates.  Because validation already
rejects cyclic interiors, settling needs no event queue at all —
:meth:`GateLevelSimulator.settle` executes the compiled straight-line
program of :mod:`repro.gates.compiled` at width 1, and
:meth:`GateLevelSimulator.settle_batch` evaluates many codes in one
bit-parallel pass.  The original event-driven stabilization loop is kept as
:meth:`GateLevelSimulator._reference_settle` — the oracle of the
differential tests and the executable statement of the semantics (including
the oscillation guard for netlists that bypass validation).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Mapping, Sequence

from repro.gates.compiled import (
    CompiledNetlistEvaluator,
    SimulationError,
    signal_columns,
)
from repro.gates.ir import GateNetlist, NetlistError


class GateLevelSimulator:
    """Evaluator of a :class:`~repro.gates.ir.GateNetlist`.

    Construction validates the netlist and compiles the topological
    straight-line program, so repeated :meth:`settle` calls (one per
    reachable state in the differential check) stay cheap and
    :meth:`settle_batch` amortises whole code sets into single big-int
    operations.
    """

    def __init__(self, netlist: GateNetlist):
        self.netlist = netlist
        self._evaluator = CompiledNetlistEvaluator(netlist)
        self._order = netlist.topological_gates()
        #: signal carried by each clamped net
        self._clamped: dict[str, str] = {
            name: net.signal
            for name, net in netlist.nets.items()
            if net.signal is not None
        }
        #: gates consuming each internal net
        self._consumers: dict[str, list[int]] = {}
        for index, gate in enumerate(self._order):
            for net in set(gate.inputs):
                if net in self._clamped:
                    continue
                self._consumers.setdefault(net, []).append(index)
        #: output signal -> driving gate
        self._output_driver = {}
        drivers = netlist.drivers()
        for name in netlist.outputs:
            signal = netlist.nets[name].signal or name
            self._output_driver[signal] = drivers[name]

    # ------------------------------------------------------------------ #

    def settle(self, code: Mapping[str, int]) -> dict[str, int]:
        """Propagate ``code`` and return the next value of every output.

        ``code`` must assign a present value to every specification signal
        (inputs and implemented outputs).  The returned mapping gives, for
        each implemented signal, the settled value its driving gate or latch
        produces — directly comparable with
        :meth:`repro.synthesis.netlist.Circuit.next_values`.
        """
        return self._evaluator.evaluate(code, 1)

    def settle_batch(
        self, codes: Sequence[int], signal_bits: list[tuple[str, int]]
    ) -> dict[str, int]:
        """Settle many packed codes at once (bit-parallel).

        ``codes[j]`` is the packed state code of column bit ``j`` (bit
        positions per ``signal_bits``); the result maps each output signal
        to its next-value column.
        """
        columns = signal_columns(list(codes), signal_bits)
        return self._evaluator.evaluate(columns, len(codes))

    # ------------------------------------------------------------------ #
    # Reference event-driven loop (differential-test oracle)
    # ------------------------------------------------------------------ #

    def _reference_settle(self, code: Mapping[str, int]) -> dict[str, int]:
        """Event-driven stabilization (the original semantics)."""
        values: dict[str, int] = {}
        for net, signal in self._clamped.items():
            try:
                values[net] = code[signal]
            except KeyError as error:
                raise SimulationError(
                    f"state code is missing signal {signal!r}"
                ) from error

        pending = deque(range(len(self._order)))
        queued = [True] * len(self._order)
        budget = len(self._order) * (len(self._order) + 1) + 1
        computed: dict[str, int] = {}
        while pending:
            budget -= 1
            if budget < 0:
                raise SimulationError(
                    f"netlist {self.netlist.name!r} did not settle "
                    "(combinational oscillation outside the signal nets)"
                )
            index = pending.popleft()
            queued[index] = False
            gate = self._order[index]
            current = values.get(gate.output, 0)
            pins = (values.get(net, 0) for net in gate.inputs)
            value = gate.evaluate(pins, current=current)
            computed[gate.output] = value
            if gate.output in self._clamped:
                # drivers of clamped (signal) nets produce the *next* value;
                # the present value other gates read stays clamped
                continue
            if values.get(gate.output) != value:
                values[gate.output] = value
                for consumer in self._consumers.get(gate.output, ()):
                    if not queued[consumer]:
                        queued[consumer] = True
                        pending.append(consumer)

        results: dict[str, int] = {}
        for signal, gate in self._output_driver.items():
            results[signal] = computed[gate.output]
        return results


def simulate_settled(netlist: GateNetlist, code: Mapping[str, int]) -> dict[str, int]:
    """One-shot convenience wrapper around :class:`GateLevelSimulator`."""
    return GateLevelSimulator(netlist).settle(code)


__all__ = ["GateLevelSimulator", "SimulationError", "simulate_settled", "NetlistError"]
