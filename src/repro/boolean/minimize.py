"""Two-level single-output cover minimization (espresso-lite).

The synthesis flow of the paper expands region covers toward the quiescent
regions and the dc-set by *eliminating literals* (Section VIII and Appendix C).
This module provides that machinery in a generic form:

* :func:`expand_cube` — greedily drop literals from a cube while it remains an
  implicant (does not intersect the off-set).
* :func:`expand_cover` — expand every cube of a cover against an off-set.
* :func:`irredundant_cover` — remove cubes that are covered by the rest of
  the cover plus the dc-set.
* :func:`minimize_cover` — expand + irredundant, the standard reduction loop.

The off-set never has to be complemented explicitly by callers: synthesis code
hands in the off-set cover it already owns (binary codes of markings where the
function must be 0).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Optional

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube


def expand_cube(
    cube: Cube,
    off_set: Cover,
    literal_order: Optional[Sequence[str]] = None,
) -> Cube:
    """Greedily remove literals from ``cube`` while avoiding the off-set.

    Literals are tried in ``literal_order`` (default: sorted by name so the
    result is deterministic).  A literal is dropped when the enlarged cube
    still does not intersect ``off_set``.
    """
    if literal_order is None:
        literal_order = sorted(cube.support)
    current = cube
    for variable in literal_order:
        if variable not in current:
            continue
        candidate = current.expand_literal(variable)
        if not off_set.intersects_cube(candidate):
            current = candidate
    return current


def expand_cover(
    cover: Cover,
    off_set: Cover,
    literal_order: Optional[Sequence[str]] = None,
) -> Cover:
    """Expand every cube of a cover against the off-set, then prune."""
    expanded = [expand_cube(cube, off_set, literal_order) for cube in cover]
    return Cover(expanded, cover.variables).remove_contained()


def irredundant_cover(cover: Cover, dc_set: Optional[Cover] = None) -> Cover:
    """Drop cubes whose vertices are covered by the remaining cubes + dc-set.

    A simple greedy irredundant pass: cubes are visited from largest literal
    count (most specific) to smallest, and removed when redundant.
    """
    cubes = sorted(cover.cubes, key=lambda c: -c.num_literals())
    kept = list(cubes)
    for cube in cubes:
        others = [other for other in kept if other is not cube]
        rest = Cover(others, cover.variables)
        if dc_set is not None and not dc_set.is_empty():
            rest = rest.union(dc_set)
        if rest.covers_cube(cube):
            kept = others
    return Cover(kept, cover.variables)


def minimize_cover(
    on_set: Cover,
    off_set: Cover,
    dc_set: Optional[Cover] = None,
    literal_order: Optional[Sequence[str]] = None,
) -> Cover:
    """Expand + irredundant minimization of a cover of the on-set.

    The result contains ``on_set`` and does not intersect ``off_set``.
    """
    expanded = expand_cover(on_set, off_set, literal_order)
    reduced = irredundant_cover(expanded, dc_set)
    # Guard: never return a cover that lost part of the on-set.
    if not reduced.contains_cover(on_set):
        return expanded
    return reduced


def single_cube_cover(on_set: Cover, off_set: Cover) -> Optional[Cube]:
    """Try to find a single cube that covers the on-set and avoids the off-set.

    Returns the supercube of the on-set if it is an implicant, else ``None``.
    """
    if on_set.is_empty():
        return None
    cubes = on_set.cubes
    super_cube = cubes[0]
    for cube in cubes[1:]:
        super_cube = super_cube.supercube(cube)
    if off_set.intersects_cube(super_cube):
        return None
    return super_cube


def remove_variables(cover: Cover, variables: Iterable[str], off_set: Cover) -> Cover:
    """Remove the given variables from the support of a cover when safe.

    A variable is removed from a cube only when the enlarged cube remains an
    implicant against ``off_set``.  This is the "eliminate a signal from the
    support of the function" transformation of the Appendix.
    """
    drop = list(variables)
    cubes = []
    for cube in cover:
        candidate = cube
        for variable in drop:
            if variable not in candidate:
                continue
            enlarged = candidate.expand_literal(variable)
            if not off_set.intersects_cube(enlarged):
                candidate = enlarged
        cubes.append(candidate)
    return Cover(cubes, cover.variables).remove_contained()
