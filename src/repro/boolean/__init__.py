"""Boolean (cube / two-level) algebra substrate.

This package implements the cube calculus needed by the synthesis flow of
Pastor et al.:

* :class:`~repro.boolean.cube.Cube` — a conjunction of literals over named
  Boolean variables, represented as an immutable mapping ``variable -> 0/1``.
* :class:`~repro.boolean.cover.Cover` — a sum of cubes (two-level SOP form)
  together with set-like operations (union, intersection, sharp, containment,
  tautology) implemented with the classic unate-recursive paradigm.
* :mod:`~repro.boolean.minimize` — a small single-output two-level minimizer
  (expand / irredundant / literal-drop) in the spirit of espresso, used by the
  region-cover minimization loop of Section VIII.
* :mod:`~repro.boolean.function` — incompletely specified functions
  (on-set / off-set / dc-set triples) as used for next-state functions.
* :mod:`~repro.boolean.cost` — literal and transistor-count cost models used
  for the area numbers of the experimental section.
"""

from repro.boolean.cube import Cube
from repro.boolean.cover import Cover
from repro.boolean.function import BooleanFunction
from repro.boolean.minimize import expand_cover, irredundant_cover, minimize_cover
from repro.boolean.cost import literal_count, cube_literal_count, transistor_estimate

__all__ = [
    "Cube",
    "Cover",
    "BooleanFunction",
    "expand_cover",
    "irredundant_cover",
    "minimize_cover",
    "literal_count",
    "cube_literal_count",
    "transistor_estimate",
]
