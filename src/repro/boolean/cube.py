"""Cubes: conjunctions of literals over named Boolean variables.

A cube is represented as an immutable mapping ``variable -> value`` where the
value is ``0`` (complemented literal), or ``1`` (positive literal).  Variables
that do not appear in the mapping are *don't-care* (the cube does not depend
on them).  The empty mapping is the universal cube (constant ``1``).

The representation mirrors the positional-cube notation of the paper
(Section II-A): the character string of a cube over an ordered list of
variables uses ``0``, ``1`` and ``-``.

Internally every cube also carries a bit-packed form over the global variable
order of :mod:`repro.boolean.interning`: a *care mask* (one bit per bound
variable) and a *value mask* (the bit of a bound variable is set iff its
literal is positive).  All the hot cube-algebra predicates — ``covers``,
``intersects``, ``distance``, ``consensus``, ``intersect`` — reduce to a few
integer operations on these masks; the name-based mapping interface is kept
as the user-facing layer.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from typing import Optional

from repro.boolean.interning import _VAR_INDEX, var_index, var_name


class Cube(Mapping[str, int]):
    """An immutable product term (conjunction of literals).

    Parameters
    ----------
    literals:
        A mapping (or iterable of pairs) from variable name to 0 or 1.

    Examples
    --------
    >>> c = Cube({"a": 1, "b": 0})
    >>> c.to_string(["a", "b", "c"])
    '10-'
    >>> Cube.universal().is_universal()
    True
    """

    __slots__ = ("_literals", "_care", "_value", "_support", "_hash")

    def __init__(self, literals: Mapping[str, int] | Iterable[tuple[str, int]] = ()):
        items = dict(literals)
        care = 0
        value = 0
        for var, bound in items.items():
            index = _VAR_INDEX.get(var)
            if index is None:
                index = var_index(var)
            bit = 1 << index
            care |= bit
            if bound == 1:
                value |= bit
            elif bound != 0:
                raise ValueError(f"literal value for {var!r} must be 0 or 1, got {bound!r}")
        self._literals: dict[str, int] = items
        self._care = care
        self._value = value
        self._support: Optional[frozenset[str]] = None
        self._hash: Optional[int] = None

    @classmethod
    def _raw(cls, items: dict[str, int], care: int, value: int) -> "Cube":
        """Internal fast constructor for pre-validated literal dicts."""
        self = cls.__new__(cls)
        self._literals = items
        self._care = care
        self._value = value
        self._support = None
        self._hash = None
        return self

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def universal(cls) -> "Cube":
        """The cube with no literals (the constant-1 function)."""
        return cls({})

    @classmethod
    def from_string(cls, pattern: str, variables: Iterable[str]) -> "Cube":
        """Build a cube from positional-cube notation.

        ``pattern`` uses ``0``, ``1``, ``-`` (or ``x``/``X``) positionally over
        ``variables``.
        """
        variables = list(variables)
        if len(pattern) != len(variables):
            raise ValueError(
                f"pattern length {len(pattern)} does not match {len(variables)} variables"
            )
        literals: dict[str, int] = {}
        for char, var in zip(pattern, variables):
            if char == "1":
                literals[var] = 1
            elif char == "0":
                literals[var] = 0
            elif char in "-xX*":
                continue
            else:
                raise ValueError(f"invalid cube character {char!r}")
        return cls(literals)

    @classmethod
    def from_vertex(cls, vertex: Mapping[str, int]) -> "Cube":
        """Build a minterm cube from a complete variable assignment."""
        return cls(vertex)

    # ------------------------------------------------------------------ #
    # Mapping protocol
    # ------------------------------------------------------------------ #

    def __getitem__(self, variable: str) -> int:
        return self._literals[variable]

    def __iter__(self) -> Iterator[str]:
        return iter(self._literals)

    def __len__(self) -> int:
        return len(self._literals)

    def __contains__(self, variable: object) -> bool:
        return variable in self._literals

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._care, self._value))
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Cube):
            return self._care == other._care and self._value == other._value
        if isinstance(other, Mapping):
            return self._literals == dict(other)
        return NotImplemented

    def __reduce__(self):
        # Pickle by literal names, not by the packed masks: the bit positions
        # depend on the process-global interner order, which may differ in
        # the process that unpickles (e.g. process-pool batch workers).
        return (Cube, (self._literals,))

    def __repr__(self) -> str:
        if not self._literals:
            return "Cube(1)"
        body = " ".join(
            (name if value else f"{name}'")
            for name, value in sorted(self._literals.items())
        )
        return f"Cube({body})"

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    @property
    def literals(self) -> dict[str, int]:
        """A copy of the literal mapping."""
        return dict(self._literals)

    @property
    def support(self) -> frozenset[str]:
        """The set of variables the cube depends on."""
        support = self._support
        if support is None:
            support = frozenset(self._literals)
            self._support = support
        return support

    @property
    def care_mask(self) -> int:
        """Packed care mask over the global variable order."""
        return self._care

    @property
    def value_mask(self) -> int:
        """Packed value mask over the global variable order."""
        return self._value

    def is_universal(self) -> bool:
        """True if this cube is the constant-1 cube (no literals)."""
        return not self._literals

    def value_of(self, variable: str) -> Optional[int]:
        """The literal value for ``variable`` or ``None`` if don't-care."""
        return self._literals.get(variable)

    def num_literals(self) -> int:
        """Number of literals in the cube."""
        return len(self._literals)

    # ------------------------------------------------------------------ #
    # Cube algebra
    # ------------------------------------------------------------------ #

    def intersect(self, other: "Cube") -> Optional["Cube"]:
        """Product of two cubes, or ``None`` if they are disjoint.

        Two cubes are disjoint when some variable appears with opposite
        polarities.
        """
        if (self._value ^ other._value) & self._care & other._care:
            return None
        merged = dict(self._literals)
        merged.update(other._literals)
        return Cube._raw(merged, self._care | other._care, self._value | other._value)

    def __and__(self, other: "Cube") -> Optional["Cube"]:
        return self.intersect(other)

    def intersects(self, other: "Cube") -> bool:
        """True if the two cubes share at least one vertex."""
        return not (self._value ^ other._value) & self._care & other._care

    def covers(self, other: "Cube") -> bool:
        """True if every vertex of ``other`` is a vertex of this cube.

        Equivalent to: every literal of ``self`` appears in ``other`` with the
        same polarity.
        """
        care = self._care
        return not (care & ~other._care) and not (self._value ^ other._value) & care

    def covers_vertex(self, vertex: Mapping[str, int]) -> bool:
        """True if a complete assignment ``vertex`` satisfies the cube."""
        for var, value in self._literals.items():
            if vertex.get(var) != value:
                return False
        return True

    def distance(self, other: "Cube") -> int:
        """Number of variables in which the cubes have opposite literals."""
        return ((self._value ^ other._value) & self._care & other._care).bit_count()

    def consensus(self, other: "Cube") -> Optional["Cube"]:
        """The consensus (resolvent) of two cubes at distance exactly one."""
        clash_mask = (self._value ^ other._value) & self._care & other._care
        if clash_mask == 0 or clash_mask & (clash_mask - 1):
            return None
        clash = var_name(clash_mask.bit_length() - 1)
        merged = dict(self._literals)
        merged.update(other._literals)
        del merged[clash]
        care = (self._care | other._care) & ~clash_mask
        return Cube._raw(merged, care, (self._value | other._value) & care)

    def supercube(self, other: "Cube") -> "Cube":
        """Smallest cube containing both cubes."""
        other_literals = other._literals
        merged = {
            var: value
            for var, value in self._literals.items()
            if other_literals.get(var) == value
        }
        care = self._care & other._care & ~(self._value ^ other._value)
        return Cube._raw(merged, care, self._value & care)

    def cofactor(self, variable: str, value: int) -> Optional["Cube"]:
        """Cofactor with respect to ``variable = value``.

        Returns ``None`` if the cube requires the opposite value (the
        cofactor is empty); otherwise returns the cube with the variable
        removed.
        """
        existing = self._literals.get(variable)
        if existing is None:
            return self
        if existing != value:
            return None
        reduced = dict(self._literals)
        del reduced[variable]
        bit = 1 << _VAR_INDEX[variable]
        return Cube._raw(reduced, self._care & ~bit, self._value & ~bit)

    def cofactor_cube(self, other: "Cube") -> Optional["Cube"]:
        """Generalized cofactor of this cube with respect to another cube."""
        if (self._value ^ other._value) & self._care & other._care:
            return None
        other_care = other._care
        if not self._care & other_care:
            return self
        other_literals = other._literals
        reduced = {
            var: value
            for var, value in self._literals.items()
            if var not in other_literals
        }
        care = self._care & ~other_care
        return Cube._raw(reduced, care, self._value & care)

    def expand_literal(self, variable: str) -> "Cube":
        """Return the cube with ``variable`` removed from its support."""
        if variable not in self._literals:
            return self
        reduced = dict(self._literals)
        del reduced[variable]
        bit = 1 << _VAR_INDEX[variable]
        return Cube._raw(reduced, self._care & ~bit, self._value & ~bit)

    def restrict(self, variables: Iterable[str]) -> "Cube":
        """Project the cube onto a subset of variables."""
        allowed = set(variables)
        return Cube({var: val for var, val in self._literals.items() if var in allowed})

    def with_literal(self, variable: str, value: int) -> "Cube":
        """Return a new cube with ``variable`` bound to ``value``."""
        merged = dict(self._literals)
        merged[variable] = value
        return Cube(merged)

    def without_literals(self, variables: Iterable[str]) -> "Cube":
        """Return a new cube with the given variables removed (made free)."""
        drop = set(variables)
        return Cube({var: val for var, val in self._literals.items() if var not in drop})

    def complement_cubes(self) -> list["Cube"]:
        """Complement of a single cube as a list of disjoint cubes.

        Uses the standard telescoping expansion: for literals ``l1 l2 ... lk``
        the complement is ``l1' + l1 l2' + l1 l2 l3' + ...``.
        """
        result: list[Cube] = []
        prefix: dict[str, int] = {}
        for var, value in self._literals.items():
            term = dict(prefix)
            term[var] = 1 - value
            result.append(Cube(term))
            prefix[var] = value
        return result

    # ------------------------------------------------------------------ #
    # Enumeration / formatting
    # ------------------------------------------------------------------ #

    def vertices(self, variables: Iterable[str]) -> Iterator[dict[str, int]]:
        """Enumerate all complete assignments over ``variables`` in the cube."""
        variables = list(variables)
        free = [v for v in variables if v not in self._literals]
        base = {v: self._literals[v] for v in variables if v in self._literals}
        for var in self._literals:
            if var not in variables:
                raise ValueError(f"cube depends on {var!r} not in enumeration variables")
        total = 1 << len(free)
        for index in range(total):
            vertex = dict(base)
            for bit, var in enumerate(free):
                vertex[var] = (index >> bit) & 1
            yield vertex

    def size(self, variables: Iterable[str]) -> int:
        """Number of minterms of the cube over a variable universe."""
        variables = list(variables)
        free = sum(1 for v in variables if v not in self._literals)
        return 1 << free

    def to_string(self, variables: Iterable[str]) -> str:
        """Positional-cube string over an ordered variable list."""
        chars = []
        for var in variables:
            value = self._literals.get(var)
            if value is None:
                chars.append("-")
            else:
                chars.append(str(value))
        return "".join(chars)

    def to_expression(self) -> str:
        """Human-readable product-term string, e.g. ``a b' c``."""
        if not self._literals:
            return "1"
        return " ".join(
            (name if value else f"{name}'")
            for name, value in sorted(self._literals.items())
        )

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    def to_json(self) -> dict:
        """JSON-serializable literal mapping (sorted for canonical output).

        Like :meth:`__reduce__`, the serialized form names the variables
        rather than shipping the packed masks: the bit positions depend on
        the process-global interner order, so the masks are rebuilt (and the
        variables re-interned) when the cube is reconstructed in another
        process.
        """
        return {name: value for name, value in sorted(self._literals.items())}

    @classmethod
    def from_json(cls, data: Mapping[str, int]) -> "Cube":
        """Rebuild a cube from :meth:`to_json` output (re-interns variables)."""
        return cls({name: int(value) for name, value in data.items()})
