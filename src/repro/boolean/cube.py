"""Cubes: conjunctions of literals over named Boolean variables.

A cube is represented as an immutable mapping ``variable -> value`` where the
value is ``0`` (complemented literal), or ``1`` (positive literal).  Variables
that do not appear in the mapping are *don't-care* (the cube does not depend
on them).  The empty mapping is the universal cube (constant ``1``).

The representation mirrors the positional-cube notation of the paper
(Section II-A): the character string of a cube over an ordered list of
variables uses ``0``, ``1`` and ``-``.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from typing import Optional


class Cube(Mapping[str, int]):
    """An immutable product term (conjunction of literals).

    Parameters
    ----------
    literals:
        A mapping (or iterable of pairs) from variable name to 0 or 1.

    Examples
    --------
    >>> c = Cube({"a": 1, "b": 0})
    >>> c.to_string(["a", "b", "c"])
    '10-'
    >>> Cube.universal().is_universal()
    True
    """

    __slots__ = ("_literals", "_hash")

    def __init__(self, literals: Mapping[str, int] | Iterable[tuple[str, int]] = ()):
        items = dict(literals)
        for var, value in items.items():
            if value not in (0, 1):
                raise ValueError(f"literal value for {var!r} must be 0 or 1, got {value!r}")
        self._literals: dict[str, int] = items
        self._hash: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def universal(cls) -> "Cube":
        """The cube with no literals (the constant-1 function)."""
        return cls({})

    @classmethod
    def from_string(cls, pattern: str, variables: Iterable[str]) -> "Cube":
        """Build a cube from positional-cube notation.

        ``pattern`` uses ``0``, ``1``, ``-`` (or ``x``/``X``) positionally over
        ``variables``.
        """
        variables = list(variables)
        if len(pattern) != len(variables):
            raise ValueError(
                f"pattern length {len(pattern)} does not match {len(variables)} variables"
            )
        literals: dict[str, int] = {}
        for char, var in zip(pattern, variables):
            if char == "1":
                literals[var] = 1
            elif char == "0":
                literals[var] = 0
            elif char in "-xX*":
                continue
            else:
                raise ValueError(f"invalid cube character {char!r}")
        return cls(literals)

    @classmethod
    def from_vertex(cls, vertex: Mapping[str, int]) -> "Cube":
        """Build a minterm cube from a complete variable assignment."""
        return cls(vertex)

    # ------------------------------------------------------------------ #
    # Mapping protocol
    # ------------------------------------------------------------------ #

    def __getitem__(self, variable: str) -> int:
        return self._literals[variable]

    def __iter__(self) -> Iterator[str]:
        return iter(self._literals)

    def __len__(self) -> int:
        return len(self._literals)

    def __contains__(self, variable: object) -> bool:
        return variable in self._literals

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._literals.items()))
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Cube):
            return self._literals == other._literals
        if isinstance(other, Mapping):
            return self._literals == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        if not self._literals:
            return "Cube(1)"
        body = " ".join(
            (name if value else f"{name}'")
            for name, value in sorted(self._literals.items())
        )
        return f"Cube({body})"

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    @property
    def literals(self) -> dict[str, int]:
        """A copy of the literal mapping."""
        return dict(self._literals)

    @property
    def support(self) -> frozenset[str]:
        """The set of variables the cube depends on."""
        return frozenset(self._literals)

    def is_universal(self) -> bool:
        """True if this cube is the constant-1 cube (no literals)."""
        return not self._literals

    def value_of(self, variable: str) -> Optional[int]:
        """The literal value for ``variable`` or ``None`` if don't-care."""
        return self._literals.get(variable)

    def num_literals(self) -> int:
        """Number of literals in the cube."""
        return len(self._literals)

    # ------------------------------------------------------------------ #
    # Cube algebra
    # ------------------------------------------------------------------ #

    def intersect(self, other: "Cube") -> Optional["Cube"]:
        """Product of two cubes, or ``None`` if they are disjoint.

        Two cubes are disjoint when some variable appears with opposite
        polarities.
        """
        if len(other._literals) < len(self._literals):
            small, large = other._literals, self._literals
        else:
            small, large = self._literals, other._literals
        merged = dict(large)
        for var, value in small.items():
            existing = merged.get(var)
            if existing is None:
                merged[var] = value
            elif existing != value:
                return None
        return Cube(merged)

    def __and__(self, other: "Cube") -> Optional["Cube"]:
        return self.intersect(other)

    def intersects(self, other: "Cube") -> bool:
        """True if the two cubes share at least one vertex."""
        own = self._literals
        for var, value in other._literals.items():
            existing = own.get(var)
            if existing is not None and existing != value:
                return False
        return True

    def covers(self, other: "Cube") -> bool:
        """True if every vertex of ``other`` is a vertex of this cube.

        Equivalent to: every literal of ``self`` appears in ``other`` with the
        same polarity.
        """
        other_literals = other._literals
        for var, value in self._literals.items():
            if other_literals.get(var) != value:
                return False
        return True

    def covers_vertex(self, vertex: Mapping[str, int]) -> bool:
        """True if a complete assignment ``vertex`` satisfies the cube."""
        for var, value in self._literals.items():
            if vertex.get(var) != value:
                return False
        return True

    def distance(self, other: "Cube") -> int:
        """Number of variables in which the cubes have opposite literals."""
        count = 0
        other_literals = other._literals
        for var, value in self._literals.items():
            existing = other_literals.get(var)
            if existing is not None and existing != value:
                count += 1
        return count

    def consensus(self, other: "Cube") -> Optional["Cube"]:
        """The consensus (resolvent) of two cubes at distance exactly one."""
        clash = None
        other_literals = other._literals
        for var, value in self._literals.items():
            existing = other_literals.get(var)
            if existing is not None and existing != value:
                if clash is not None:
                    return None
                clash = var
        if clash is None:
            return None
        merged = dict(self._literals)
        merged.update(other_literals)
        del merged[clash]
        return Cube(merged)

    def supercube(self, other: "Cube") -> "Cube":
        """Smallest cube containing both cubes."""
        merged = {
            var: value
            for var, value in self._literals.items()
            if other._literals.get(var) == value
        }
        return Cube(merged)

    def cofactor(self, variable: str, value: int) -> Optional["Cube"]:
        """Cofactor with respect to ``variable = value``.

        Returns ``None`` if the cube requires the opposite value (the
        cofactor is empty); otherwise returns the cube with the variable
        removed.
        """
        existing = self._literals.get(variable)
        if existing is None:
            return self
        if existing != value:
            return None
        reduced = dict(self._literals)
        del reduced[variable]
        return Cube(reduced)

    def cofactor_cube(self, other: "Cube") -> Optional["Cube"]:
        """Generalized cofactor of this cube with respect to another cube."""
        if not self.intersects(other):
            return None
        reduced = {
            var: value
            for var, value in self._literals.items()
            if var not in other._literals
        }
        return Cube(reduced)

    def expand_literal(self, variable: str) -> "Cube":
        """Return the cube with ``variable`` removed from its support."""
        if variable not in self._literals:
            return self
        reduced = dict(self._literals)
        del reduced[variable]
        return Cube(reduced)

    def restrict(self, variables: Iterable[str]) -> "Cube":
        """Project the cube onto a subset of variables."""
        allowed = set(variables)
        return Cube({v: k for v, k in self._literals.items() if v in allowed})

    def with_literal(self, variable: str, value: int) -> "Cube":
        """Return a new cube with ``variable`` bound to ``value``."""
        merged = dict(self._literals)
        merged[variable] = value
        return Cube(merged)

    def without_literals(self, variables: Iterable[str]) -> "Cube":
        """Return a new cube with the given variables removed (made free)."""
        drop = set(variables)
        return Cube({v: k for v, k in self._literals.items() if v not in drop})

    def complement_cubes(self) -> list["Cube"]:
        """Complement of a single cube as a list of disjoint cubes.

        Uses the standard telescoping expansion: for literals ``l1 l2 ... lk``
        the complement is ``l1' + l1 l2' + l1 l2 l3' + ...``.
        """
        result: list[Cube] = []
        prefix: dict[str, int] = {}
        for var, value in self._literals.items():
            term = dict(prefix)
            term[var] = 1 - value
            result.append(Cube(term))
            prefix[var] = value
        return result

    # ------------------------------------------------------------------ #
    # Enumeration / formatting
    # ------------------------------------------------------------------ #

    def vertices(self, variables: Iterable[str]) -> Iterator[dict[str, int]]:
        """Enumerate all complete assignments over ``variables`` in the cube."""
        variables = list(variables)
        free = [v for v in variables if v not in self._literals]
        base = {v: self._literals[v] for v in variables if v in self._literals}
        for var in self._literals:
            if var not in variables:
                raise ValueError(f"cube depends on {var!r} not in enumeration variables")
        total = 1 << len(free)
        for index in range(total):
            vertex = dict(base)
            for bit, var in enumerate(free):
                vertex[var] = (index >> bit) & 1
            yield vertex

    def size(self, variables: Iterable[str]) -> int:
        """Number of minterms of the cube over a variable universe."""
        variables = list(variables)
        free = sum(1 for v in variables if v not in self._literals)
        return 1 << free

    def to_string(self, variables: Iterable[str]) -> str:
        """Positional-cube string over an ordered variable list."""
        chars = []
        for var in variables:
            value = self._literals.get(var)
            if value is None:
                chars.append("-")
            else:
                chars.append(str(value))
        return "".join(chars)

    def to_expression(self) -> str:
        """Human-readable product-term string, e.g. ``a b' c``."""
        if not self._literals:
            return "1"
        return " ".join(
            (name if value else f"{name}'")
            for name, value in sorted(self._literals.items())
        )
