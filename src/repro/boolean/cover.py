"""Covers: sums of cubes (two-level SOP forms) with set-like operations.

A :class:`Cover` is a list of :class:`~repro.boolean.cube.Cube` objects over a
declared variable universe.  The universe matters for complementation,
tautology checking and minterm counting; cube-wise operations (union,
intersection, containment) do not need it.

Containment and tautology use the unate-recursive paradigm (Shannon expansion
with unate-reduction shortcuts), which keeps the region-cover checks of the
synthesis flow well below minterm enumeration cost.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from typing import Optional

from repro.boolean.cube import Cube


class Cover:
    """A sum-of-products form over a fixed variable universe."""

    __slots__ = ("_cubes", "_variables")

    def __init__(self, cubes: Iterable[Cube] = (), variables: Iterable[str] = ()):
        self._cubes: list[Cube] = list(cubes)
        self._variables: tuple[str, ...] = tuple(variables)
        universe = set(self._variables)
        extra: list[str] = []
        for cube in self._cubes:
            for var in cube.support:
                if var not in universe:
                    universe.add(var)
                    extra.append(var)
        if extra:
            self._variables = self._variables + tuple(extra)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def empty(cls, variables: Iterable[str] = ()) -> "Cover":
        """The empty (constant-0) cover."""
        return cls((), variables)

    @classmethod
    def universe(cls, variables: Iterable[str] = ()) -> "Cover":
        """The constant-1 cover."""
        return cls((Cube.universal(),), variables)

    @classmethod
    def from_strings(cls, patterns: Iterable[str], variables: Sequence[str]) -> "Cover":
        """Build a cover from positional-cube strings."""
        cubes = [Cube.from_string(pattern, variables) for pattern in patterns]
        return cls(cubes, variables)

    @classmethod
    def from_vertices(
        cls, vertices: Iterable[Mapping[str, int]], variables: Sequence[str]
    ) -> "Cover":
        """Build a cover of minterms from complete assignments."""
        cubes = [Cube({v: vertex[v] for v in variables}) for vertex in vertices]
        return cls(cubes, variables)

    # ------------------------------------------------------------------ #
    # Basic protocol
    # ------------------------------------------------------------------ #

    @property
    def cubes(self) -> list[Cube]:
        """A copy of the cube list."""
        return list(self._cubes)

    @property
    def variables(self) -> tuple[str, ...]:
        """The variable universe of the cover."""
        return self._variables

    def __iter__(self) -> Iterator[Cube]:
        return iter(self._cubes)

    def __len__(self) -> int:
        return len(self._cubes)

    def __bool__(self) -> bool:
        return bool(self._cubes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Cover):
            return NotImplemented
        return self.contains_cover(other) and other.contains_cover(self)

    def __repr__(self) -> str:
        if not self._cubes:
            return "Cover(0)"
        return "Cover(" + " + ".join(cube.to_expression() for cube in self._cubes) + ")"

    def to_expression(self) -> str:
        """Human readable SOP string."""
        if not self._cubes:
            return "0"
        return " + ".join(cube.to_expression() for cube in self._cubes)

    def to_strings(self, variables: Optional[Sequence[str]] = None) -> list[str]:
        """Positional-cube strings for every cube."""
        order = list(variables) if variables is not None else list(self._variables)
        return [cube.to_string(order) for cube in self._cubes]

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def is_empty(self) -> bool:
        """True if the cover has no cubes (constant 0)."""
        return not self._cubes

    def covers_vertex(self, vertex: Mapping[str, int]) -> bool:
        """True if some cube of the cover covers the complete assignment."""
        return any(cube.covers_vertex(vertex) for cube in self._cubes)

    def covers_cube(self, cube: Cube) -> bool:
        """True if the cover contains every vertex of ``cube``.

        Implemented as a tautology check of the cover cofactored by the cube.
        """
        if any(other.covers(cube) for other in self._cubes):
            return True
        cofactored = []
        for other in self._cubes:
            reduced = other.cofactor_cube(cube)
            if reduced is not None:
                cofactored.append(reduced)
        if not cofactored:
            return False
        variables = set()
        for item in cofactored:
            variables |= item.support
        return _is_tautology(cofactored, sorted(variables))

    def contains_cover(self, other: "Cover") -> bool:
        """True if every vertex of ``other`` is covered by this cover."""
        return all(self.covers_cube(cube) for cube in other)

    def intersects_cube(self, cube: Cube) -> bool:
        """True if the cover shares at least one vertex with ``cube``."""
        return any(other.intersects(cube) for other in self._cubes)

    def intersects_cover(self, other: "Cover") -> bool:
        """True if the two covers share at least one vertex."""
        return any(self.intersects_cube(cube) for cube in other)

    def num_literals(self) -> int:
        """Total literal count of the SOP form."""
        return sum(cube.num_literals() for cube in self._cubes)

    def support(self) -> frozenset[str]:
        """Union of the supports of all cubes."""
        result: set[str] = set()
        for cube in self._cubes:
            result |= cube.support
        return frozenset(result)

    def count_minterms(self) -> int:
        """Exact number of minterms over the declared variable universe.

        Uses recursive Shannon expansion; exponential in the worst case but
        adequate for the region sizes handled in the test-suite.
        """
        return _count_minterms(list(self._cubes), list(self._variables))

    def is_tautology(self) -> bool:
        """True if the cover covers the whole Boolean space of its universe."""
        if not self._cubes:
            return False
        return _is_tautology(list(self._cubes), list(self._variables))

    # ------------------------------------------------------------------ #
    # Algebraic operations
    # ------------------------------------------------------------------ #

    def add_cube(self, cube: Cube) -> "Cover":
        """Cover with one more cube (single-cube containment removed)."""
        if any(other.covers(cube) for other in self._cubes):
            return self
        kept = [other for other in self._cubes if not cube.covers(other)]
        kept.append(cube)
        return Cover(kept, self._variables)

    def union(self, other: "Cover") -> "Cover":
        """Disjunction of two covers (with single-cube containment removal)."""
        result = Cover(self._cubes, self._variables + other._variables)
        for cube in other:
            result = result.add_cube(cube)
        return result

    def __or__(self, other: "Cover") -> "Cover":
        return self.union(other)

    def intersection(self, other: "Cover") -> "Cover":
        """Conjunction of two covers (pairwise cube products)."""
        products: list[Cube] = []
        for left in self._cubes:
            for right in other:
                product = left.intersect(right)
                if product is not None:
                    products.append(product)
        return Cover(products, self._variables + other._variables).remove_contained()

    def __and__(self, other: "Cover") -> "Cover":
        return self.intersection(other)

    def intersect_cube(self, cube: Cube) -> "Cover":
        """Conjunction of the cover with a single cube."""
        products = []
        for other in self._cubes:
            product = other.intersect(cube)
            if product is not None:
                products.append(product)
        return Cover(products, self._variables).remove_contained()

    def sharp_cube(self, cube: Cube) -> "Cover":
        """Difference ``cover \\ cube`` (sharp operation)."""
        result: list[Cube] = []
        for own in self._cubes:
            if not own.intersects(cube):
                result.append(own)
                continue
            if cube.covers(own):
                continue
            for piece in cube.complement_cubes():
                product = own.intersect(piece)
                if product is not None:
                    result.append(product)
        return Cover(result, self._variables).remove_contained()

    def sharp(self, other: "Cover") -> "Cover":
        """Difference ``cover \\ other``."""
        result = self
        for cube in other:
            result = result.sharp_cube(cube)
            if result.is_empty():
                break
        return result

    def __sub__(self, other: "Cover") -> "Cover":
        return self.sharp(other)

    def complement(self) -> "Cover":
        """Complement of the cover over its variable universe."""
        result = Cover.universe(self._variables)
        for cube in self._cubes:
            result = result.sharp_cube(cube)
            if result.is_empty():
                break
        return result

    def remove_contained(self) -> "Cover":
        """Remove cubes that are single-cube contained in another cube."""
        kept: list[Cube] = []
        cubes = sorted(self._cubes, key=lambda c: c.num_literals())
        for cube in cubes:
            if not any(other.covers(cube) for other in kept):
                kept.append(cube)
        return Cover(kept, self._variables)

    def restrict(self, variables: Iterable[str]) -> "Cover":
        """Project every cube onto a subset of variables (existential)."""
        allowed = list(variables)
        return Cover([cube.restrict(allowed) for cube in self._cubes], allowed)

    def cofactor(self, variable: str, value: int) -> "Cover":
        """Shannon cofactor of the cover."""
        reduced = []
        for cube in self._cubes:
            item = cube.cofactor(variable, value)
            if item is not None:
                reduced.append(item)
        remaining = tuple(v for v in self._variables if v != variable)
        return Cover(reduced, remaining)

    def with_variables(self, variables: Iterable[str]) -> "Cover":
        """Return the same cover declared over a (larger) variable universe."""
        return Cover(self._cubes, variables)


# ---------------------------------------------------------------------- #
# Unate-recursive helpers
# ---------------------------------------------------------------------- #


def _is_tautology(cubes: list[Cube], variables: list[str]) -> bool:
    """Tautology check by Shannon expansion with unate shortcuts."""
    if any(cube.is_universal() for cube in cubes):
        return True
    if not cubes:
        return False
    # Unate reduction: if some variable appears only with one polarity, the
    # cover is a tautology only if the cubes independent of it already are.
    polarity: dict[str, set[int]] = {}
    for cube in cubes:
        for var, value in cube.items():
            polarity.setdefault(var, set()).add(value)
    split_var = None
    for var in variables:
        values = polarity.get(var)
        if values is None:
            continue
        if len(values) == 2:
            split_var = var
            break
    if split_var is None:
        # Every bound variable is unate: tautology iff some universal cube,
        # which was already checked above.
        return False
    rest = [v for v in variables if v != split_var]
    for value in (0, 1):
        branch = []
        for cube in cubes:
            item = cube.cofactor(split_var, value)
            if item is not None:
                branch.append(item)
        if not _is_tautology(branch, rest):
            return False
    return True


def _count_minterms(cubes: list[Cube], variables: list[str]) -> int:
    """Count minterms of a cube list over ``variables`` by Shannon expansion."""
    if not cubes:
        return 0
    if any(cube.is_universal() for cube in cubes):
        return 1 << len(variables)
    if len(cubes) == 1:
        free = sum(1 for v in variables if v not in cubes[0])
        return 1 << free
    split_var = None
    for var in variables:
        if any(var in cube for cube in cubes):
            split_var = var
            break
    if split_var is None:
        # No cube depends on the remaining variables.
        return 1 << len(variables) if cubes else 0
    rest = [v for v in variables if v != split_var]
    total = 0
    for value in (0, 1):
        branch = []
        for cube in cubes:
            item = cube.cofactor(split_var, value)
            if item is not None:
                branch.append(item)
        total += _count_minterms(branch, rest)
    return total
