"""Covers: sums of cubes (two-level SOP forms) with set-like operations.

A :class:`Cover` is a list of :class:`~repro.boolean.cube.Cube` objects over a
declared variable universe.  The universe matters for complementation,
tautology checking and minterm counting; cube-wise operations (union,
intersection, containment) do not need it.

Containment and tautology use the unate-recursive paradigm (Shannon expansion
with unate-reduction shortcuts), which keeps the region-cover checks of the
synthesis flow well below minterm enumeration cost.  The recursion runs
entirely on the bit-packed ``(care, value)`` form of the cubes (see
:mod:`repro.boolean.interning`), so cofactoring and unate detection are plain
integer operations.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from typing import Optional

from repro.boolean.cube import Cube
from repro.boolean.interning import mask_of_tuple


class Cover:
    """A sum-of-products form over a fixed variable universe."""

    __slots__ = ("_cubes", "_variables", "_mask")

    def __init__(self, cubes: Iterable[Cube] = (), variables: Iterable[str] = ()):
        self._cubes: list[Cube] = list(cubes)
        declared = tuple(variables)
        mask = mask_of_tuple(declared) if declared else 0
        if mask.bit_count() != len(declared):
            declared = tuple(dict.fromkeys(declared))
        cube_mask = 0
        for cube in self._cubes:
            cube_mask |= cube._care
        if cube_mask & ~mask:
            # Extend the universe with undeclared variables, in first-seen
            # cube order (matching the historical dict-based behaviour).
            universe = set(declared)
            extra: list[str] = []
            for cube in self._cubes:
                if not cube._care & ~mask:
                    continue
                for var in cube._literals:
                    if var not in universe:
                        universe.add(var)
                        extra.append(var)
            declared = declared + tuple(extra)
            mask |= cube_mask
        self._variables: tuple[str, ...] = declared
        self._mask = mask

    @classmethod
    def _make(cls, cubes: list[Cube], variables: tuple[str, ...], mask: int) -> "Cover":
        """Internal fast constructor; cube supports must be within ``mask``."""
        self = cls.__new__(cls)
        self._cubes = cubes
        self._variables = variables
        self._mask = mask
        return self

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def empty(cls, variables: Iterable[str] = ()) -> "Cover":
        """The empty (constant-0) cover."""
        return cls((), variables)

    @classmethod
    def universe(cls, variables: Iterable[str] = ()) -> "Cover":
        """The constant-1 cover."""
        return cls((Cube.universal(),), variables)

    @classmethod
    def from_strings(cls, patterns: Iterable[str], variables: Sequence[str]) -> "Cover":
        """Build a cover from positional-cube strings."""
        cubes = [Cube.from_string(pattern, variables) for pattern in patterns]
        return cls(cubes, variables)

    @classmethod
    def from_vertices(
        cls, vertices: Iterable[Mapping[str, int]], variables: Sequence[str]
    ) -> "Cover":
        """Build a cover of minterms from complete assignments."""
        cubes = [Cube({v: vertex[v] for v in variables}) for vertex in vertices]
        return cls(cubes, variables)

    # ------------------------------------------------------------------ #
    # Basic protocol
    # ------------------------------------------------------------------ #

    @property
    def cubes(self) -> list[Cube]:
        """A copy of the cube list."""
        return list(self._cubes)

    @property
    def variables(self) -> tuple[str, ...]:
        """The variable universe of the cover."""
        return self._variables

    def __iter__(self) -> Iterator[Cube]:
        return iter(self._cubes)

    def __len__(self) -> int:
        return len(self._cubes)

    def __bool__(self) -> bool:
        return bool(self._cubes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Cover):
            return NotImplemented
        return self.contains_cover(other) and other.contains_cover(self)

    def __reduce__(self):
        # Rebuild from cubes + variable names so that the packed per-cube
        # masks are re-derived in the unpickling process's interner order.
        return (Cover, (self._cubes, self._variables))

    def __repr__(self) -> str:
        if not self._cubes:
            return "Cover(0)"
        return "Cover(" + " + ".join(cube.to_expression() for cube in self._cubes) + ")"

    def to_expression(self) -> str:
        """Human readable SOP string."""
        if not self._cubes:
            return "0"
        return " + ".join(cube.to_expression() for cube in self._cubes)

    def to_strings(self, variables: Optional[Sequence[str]] = None) -> list[str]:
        """Positional-cube strings for every cube."""
        order = list(variables) if variables is not None else list(self._variables)
        return [cube.to_string(order) for cube in self._cubes]

    def to_json(self) -> dict:
        """JSON-serializable form: the declared universe plus cube literals.

        Cube order and the declared variable order are both preserved, so
        the round-trip is structurally lossless (not merely semantically
        equivalent); packed masks are re-derived on load in the reader's
        interner order.
        """
        return {
            "variables": list(self._variables),
            "cubes": [cube.to_json() for cube in self._cubes],
        }

    @classmethod
    def from_json(cls, data: Mapping) -> "Cover":
        """Rebuild a cover from :meth:`to_json` output."""
        return cls(
            [Cube.from_json(cube) for cube in data.get("cubes", ())],
            data.get("variables", ()),
        )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def is_empty(self) -> bool:
        """True if the cover has no cubes (constant 0)."""
        return not self._cubes

    def covers_vertex(self, vertex: Mapping[str, int]) -> bool:
        """True if some cube of the cover covers the complete assignment."""
        return any(cube.covers_vertex(vertex) for cube in self._cubes)

    def covers_cube(self, cube: Cube) -> bool:
        """True if the cover contains every vertex of ``cube``.

        Implemented as a tautology check of the cover cofactored by the cube.
        """
        care = cube._care
        value = cube._value
        cofactored: list[tuple[int, int]] = []
        for other in self._cubes:
            other_care = other._care
            if (other._value ^ value) & other_care & care:
                continue  # disjoint from the cube
            if not other_care & ~care:
                return True  # cofactor is universal: single-cube containment
            cofactored.append((other_care & ~care, other._value & ~care))
        if not cofactored:
            return False
        return _is_tautology_packed(cofactored)

    def contains_cover(self, other: "Cover") -> bool:
        """True if every vertex of ``other`` is covered by this cover."""
        return all(self.covers_cube(cube) for cube in other)

    def intersects_cube(self, cube: Cube) -> bool:
        """True if the cover shares at least one vertex with ``cube``."""
        care = cube._care
        value = cube._value
        for other in self._cubes:
            if not (other._value ^ value) & other._care & care:
                return True
        return False

    def intersects_cover(self, other: "Cover") -> bool:
        """True if the two covers share at least one vertex."""
        return any(self.intersects_cube(cube) for cube in other)

    def num_literals(self) -> int:
        """Total literal count of the SOP form."""
        return sum(len(cube._literals) for cube in self._cubes)

    def support(self) -> frozenset[str]:
        """Union of the supports of all cubes."""
        result: set[str] = set()
        for cube in self._cubes:
            result |= cube.support
        return frozenset(result)

    def count_minterms(self) -> int:
        """Exact number of minterms over the declared variable universe.

        Uses recursive Shannon expansion; exponential in the worst case but
        adequate for the region sizes handled in the test-suite.
        """
        pairs = [(cube._care, cube._value) for cube in self._cubes]
        return _count_minterms_packed(pairs, self._mask, len(self._variables))

    def is_tautology(self) -> bool:
        """True if the cover covers the whole Boolean space of its universe."""
        if not self._cubes:
            return False
        return _is_tautology_packed([(cube._care, cube._value) for cube in self._cubes])

    # ------------------------------------------------------------------ #
    # Algebraic operations
    # ------------------------------------------------------------------ #

    def add_cube(self, cube: Cube) -> "Cover":
        """Cover with one more cube (single-cube containment removed)."""
        for other in self._cubes:
            if other.covers(cube):
                return self
        kept = [other for other in self._cubes if not cube.covers(other)]
        kept.append(cube)
        if cube._care & ~self._mask:
            return Cover(kept, self._variables)
        return Cover._make(kept, self._variables, self._mask)

    def union(self, other: "Cover") -> "Cover":
        """Disjunction of two covers (with single-cube containment removal)."""
        variables, mask = self._merged_universe(other)
        kept = list(self._cubes)
        for cube in other._cubes:
            covered = False
            for own in kept:
                if own.covers(cube):
                    covered = True
                    break
            if covered:
                continue
            kept = [own for own in kept if not cube.covers(own)]
            kept.append(cube)
        return Cover._make(kept, variables, mask)

    def __or__(self, other: "Cover") -> "Cover":
        return self.union(other)

    def intersection(self, other: "Cover") -> "Cover":
        """Conjunction of two covers (pairwise cube products)."""
        variables, mask = self._merged_universe(other)
        products: list[Cube] = []
        for left in self._cubes:
            for right in other._cubes:
                product = left.intersect(right)
                if product is not None:
                    products.append(product)
        return Cover._make(products, variables, mask).remove_contained()

    def __and__(self, other: "Cover") -> "Cover":
        return self.intersection(other)

    def intersect_cube(self, cube: Cube) -> "Cover":
        """Conjunction of the cover with a single cube."""
        products = []
        for other in self._cubes:
            product = other.intersect(cube)
            if product is not None:
                products.append(product)
        if cube._care & ~self._mask:
            return Cover(products, self._variables).remove_contained()
        return Cover._make(products, self._variables, self._mask).remove_contained()

    def sharp_cube(self, cube: Cube) -> "Cover":
        """Difference ``cover \\ cube`` (sharp operation)."""
        result: list[Cube] = []
        for own in self._cubes:
            if not own.intersects(cube):
                result.append(own)
                continue
            if cube.covers(own):
                continue
            for piece in cube.complement_cubes():
                product = own.intersect(piece)
                if product is not None:
                    result.append(product)
        if cube._care & ~self._mask:
            return Cover(result, self._variables).remove_contained()
        return Cover._make(result, self._variables, self._mask).remove_contained()

    def sharp(self, other: "Cover") -> "Cover":
        """Difference ``cover \\ other``."""
        result = self
        for cube in other:
            result = result.sharp_cube(cube)
            if result.is_empty():
                break
        return result

    def __sub__(self, other: "Cover") -> "Cover":
        return self.sharp(other)

    def complement(self) -> "Cover":
        """Complement of the cover over its variable universe."""
        result = Cover.universe(self._variables)
        for cube in self._cubes:
            result = result.sharp_cube(cube)
            if result.is_empty():
                break
        return result

    def remove_contained(self) -> "Cover":
        """Remove cubes that are single-cube contained in another cube."""
        kept: list[Cube] = []
        cubes = sorted(self._cubes, key=Cube.num_literals)
        for cube in cubes:
            contained = False
            for other in kept:
                if other.covers(cube):
                    contained = True
                    break
            if not contained:
                kept.append(cube)
        return Cover._make(kept, self._variables, self._mask)

    def restrict(self, variables: Iterable[str]) -> "Cover":
        """Project every cube onto a subset of variables (existential)."""
        allowed = list(variables)
        return Cover([cube.restrict(allowed) for cube in self._cubes], allowed)

    def cofactor(self, variable: str, value: int) -> "Cover":
        """Shannon cofactor of the cover."""
        reduced = []
        for cube in self._cubes:
            item = cube.cofactor(variable, value)
            if item is not None:
                reduced.append(item)
        remaining = tuple(v for v in self._variables if v != variable)
        return Cover(reduced, remaining)

    def with_variables(self, variables: Iterable[str]) -> "Cover":
        """Return the same cover declared over a (larger) variable universe."""
        return Cover(self._cubes, variables)

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #

    def _merged_universe(self, other: "Cover") -> tuple[tuple[str, ...], int]:
        """Universe (variables, mask) of a binary operation's result."""
        if not other._mask & ~self._mask:
            return self._variables, self._mask
        seen = set(self._variables)
        variables = self._variables + tuple(
            v for v in other._variables if v not in seen
        )
        return variables, self._mask | other._mask


# ---------------------------------------------------------------------- #
# Unate-recursive helpers (bit-packed)
# ---------------------------------------------------------------------- #


def _is_tautology_packed(pairs: list[tuple[int, int]]) -> bool:
    """Tautology check by Shannon expansion on packed ``(care, value)`` pairs.

    Unate reduction: a variable is a candidate split only when it appears with
    both polarities (its bit is set in some value mask and cleared in some
    care-bound position); if no variable is binate the cover is a tautology
    only if it contains the universal cube.
    """
    ones = 0
    zeros = 0
    for care, value in pairs:
        if care == 0:
            return True
        ones |= value
        zeros |= care & ~value
    if not pairs:
        return False
    binate = ones & zeros
    if binate == 0:
        # Every bound variable is unate: tautology iff some universal cube,
        # which was already checked above.
        return False
    bit = binate & -binate
    for branch_value in (0, bit):
        branch: list[tuple[int, int]] = []
        for care, value in pairs:
            if care & bit:
                if value & bit == branch_value:
                    branch.append((care ^ bit, value & ~bit))
            else:
                branch.append((care, value))
        if not _is_tautology_packed(branch):
            return False
    return True


def _count_minterms_packed(
    pairs: list[tuple[int, int]], universe_mask: int, num_vars: int
) -> int:
    """Count minterms of packed cubes over a ``universe_mask`` of variables."""
    if not pairs:
        return 0
    bound = 0
    for care, _ in pairs:
        if care == 0:
            return 1 << num_vars
        bound |= care
    if len(pairs) == 1:
        free = num_vars - (pairs[0][0] & universe_mask).bit_count()
        return 1 << free
    split = bound & universe_mask
    if split == 0:
        # No cube depends on the remaining variables.
        return 1 << num_vars
    bit = split & -split
    rest_mask = universe_mask & ~bit
    total = 0
    for branch_value in (0, bit):
        branch: list[tuple[int, int]] = []
        for care, value in pairs:
            if care & bit:
                if value & bit == branch_value:
                    branch.append((care ^ bit, value & ~bit))
            else:
                branch.append((care, value))
        total += _count_minterms_packed(branch, rest_mask, num_vars - 1)
    return total
