"""Incompletely specified Boolean functions (on / off / dc triples).

The next-state function of every output signal (Section II-E of the paper) is
an incompletely specified function whose on-, off- and dc-sets partition the
Boolean space.  :class:`BooleanFunction` keeps the three sets as covers and
offers the correctness test of equation (1): a cover implements the function
if it contains the on-set and does not intersect the off-set.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import Optional

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube


class BooleanFunction:
    """An incompletely specified single-output Boolean function."""

    __slots__ = ("name", "_on", "_off", "_dc", "_variables")

    def __init__(
        self,
        on_set: Cover,
        off_set: Cover,
        dc_set: Optional[Cover] = None,
        variables: Iterable[str] = (),
        name: str = "f",
    ):
        universe = tuple(dict.fromkeys(
            list(variables)
            + list(on_set.variables)
            + list(off_set.variables)
            + (list(dc_set.variables) if dc_set is not None else [])
        ))
        self.name = name
        self._variables = universe
        self._on = on_set.with_variables(universe)
        self._off = off_set.with_variables(universe)
        if dc_set is None:
            dc_set = Cover.universe(universe).sharp(self._on).sharp(self._off)
        self._dc = dc_set.with_variables(universe)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def on_set(self) -> Cover:
        """Cover of the on-set."""
        return self._on

    @property
    def off_set(self) -> Cover:
        """Cover of the off-set."""
        return self._off

    @property
    def dc_set(self) -> Cover:
        """Cover of the don't-care set."""
        return self._dc

    @property
    def variables(self) -> tuple[str, ...]:
        """Variable universe of the function."""
        return self._variables

    def __repr__(self) -> str:
        return (
            f"BooleanFunction({self.name}: on={self._on.to_expression()}, "
            f"off={self._off.to_expression()})"
        )

    # ------------------------------------------------------------------ #
    # Evaluation and consistency
    # ------------------------------------------------------------------ #

    def evaluate(self, vertex: Mapping[str, int]) -> Optional[int]:
        """Value of the function at a complete assignment.

        Returns 1 / 0 for on- and off-set vertices and ``None`` for dc-set
        vertices (or vertices not present in any of the three sets).
        """
        if self._on.covers_vertex(vertex):
            return 1
        if self._off.covers_vertex(vertex):
            return 0
        return None

    def is_consistent(self) -> bool:
        """True if on-, off- and dc-sets are pairwise disjoint."""
        if self._on.intersects_cover(self._off):
            return False
        if self._on.intersects_cover(self._dc):
            return False
        if self._off.intersects_cover(self._dc):
            return False
        return True

    def is_complete(self) -> bool:
        """True if the three sets cover the whole Boolean space."""
        total = self._on.union(self._off).union(self._dc)
        return total.is_tautology()

    # ------------------------------------------------------------------ #
    # Cover correctness (paper equation (1))
    # ------------------------------------------------------------------ #

    def is_correct_cover(self, cover: Cover) -> bool:
        """Equation (1): ``on ⊆ cover ⊆ on ∪ dc``."""
        if not cover.contains_cover(self._on):
            return False
        if cover.intersects_cover(self._off):
            return False
        return True

    def implementable_cube(self, cube: Cube) -> bool:
        """True if the cube does not intersect the off-set (is an implicant)."""
        return not self._off.intersects_cube(cube)

    # ------------------------------------------------------------------ #
    # Derived functions
    # ------------------------------------------------------------------ #

    def complemented(self) -> "BooleanFunction":
        """The function with on- and off-sets swapped."""
        return BooleanFunction(
            self._off, self._on, self._dc, self._variables, name=f"{self.name}'"
        )

    def restricted(self, variables: Sequence[str]) -> "BooleanFunction":
        """Project every set onto a subset of variables (existential)."""
        return BooleanFunction(
            self._on.restrict(variables),
            self._off.restrict(variables),
            self._dc.restrict(variables),
            variables,
            name=self.name,
        )
