"""Global variable interner shared by the bit-packed cube kernel.

Cubes are packed into two machine integers (a *care mask* and a *value
mask*) over a global variable order: the first time a variable name is seen
anywhere in the process it is assigned the next free bit index, and that
assignment never changes.  Because indices only grow and are never reused,
masks computed at different times remain directly comparable, which is what
lets :class:`~repro.boolean.cube.Cube` cache its packed form forever.

The interner is intentionally process-global: the synthesis flow creates
cubes for the same signal universe in many modules, and a shared order means
any two cubes can be combined with plain integer operations without a
translation step.

Trade-off: the tables are append-only, so a process that keeps inventing
fresh variable names (e.g. an unbounded stream of unrelated synthesis jobs)
grows the bit width of later masks and never reclaims entries.  For the
bounded signal universes of a synthesis run this is irrelevant; a future
server-style deployment should scope an interner per job (the machinery
already takes the index maps as plain dicts, so this is a constructor away).
"""

from __future__ import annotations

from collections.abc import Iterable

#: variable name -> bit index (append-only)
_VAR_INDEX: dict[str, int] = {}
#: bit index -> variable name
_VAR_NAMES: list[str] = []
#: memoised masks for frequently reused variable tuples (signal universes)
_MASK_CACHE: dict[tuple[str, ...], int] = {}


def var_index(name: str) -> int:
    """Bit index of a variable, interning it on first use."""
    index = _VAR_INDEX.get(name)
    if index is None:
        index = len(_VAR_NAMES)
        _VAR_INDEX[name] = index
        _VAR_NAMES.append(name)
    return index


def var_name(index: int) -> str:
    """Variable name of a bit index."""
    return _VAR_NAMES[index]


def mask_of(names: Iterable[str]) -> int:
    """Bitmask with the bit of every name set (names are interned)."""
    mask = 0
    for name in names:
        index = _VAR_INDEX.get(name)
        if index is None:
            index = var_index(name)
        mask |= 1 << index
    return mask


def mask_of_tuple(names: tuple[str, ...]) -> int:
    """Memoised :func:`mask_of` for hashable variable tuples.

    Cover universes (``stg.signal_names``) are re-declared on almost every
    cover operation; caching per tuple turns the per-construction cost into a
    single dict lookup.
    """
    mask = _MASK_CACHE.get(names)
    if mask is None:
        mask = mask_of(names)
        _MASK_CACHE[names] = mask
    return mask


def names_of_mask(mask: int) -> list[str]:
    """Variable names of the set bits of ``mask`` in bit order."""
    names = []
    while mask:
        low = mask & -mask
        names.append(_VAR_NAMES[low.bit_length() - 1])
        mask ^= low
    return names
