"""Area cost models for synthesized logic.

The paper reports area results in normalized units produced by a
technology-mapping step onto a gate library with complex gates of up to four
inputs (Section IX-A/B).  We reproduce the *relative* behaviour with two cost
models:

* literal count — the classic technology-independent estimate;
* transistor estimate — 2 transistors per literal of every product term plus
  2 per product term of the OR plane, plus a fixed cost for memory elements
  (a C-latch is costed as 8 transistors, matching a standard CMOS
  implementation).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube

#: Transistor cost of a C-element / C-latch memory cell.
CLATCH_TRANSISTORS = 8

#: Transistor cost of an inverter.
INVERTER_TRANSISTORS = 2


def cube_literal_count(cube: Cube) -> int:
    """Number of literals of a single product term."""
    return cube.num_literals()


def literal_count(cover: Cover) -> int:
    """Total number of literals of an SOP cover."""
    return cover.num_literals()


def sop_transistor_estimate(cover: Cover) -> int:
    """Transistor estimate of a single AND-OR (complex gate) block.

    2 transistors per literal in the AND plane; if there is more than one
    product term an OR gate of 2 transistors per input is added.
    """
    if cover.is_empty():
        return 0
    and_plane = 2 * cover.num_literals()
    terms = len(cover)
    or_plane = 2 * terms if terms > 1 else 0
    return and_plane + or_plane


def transistor_estimate(covers: Iterable[Cover], memory_elements: int = 0) -> int:
    """Transistor estimate of a network of complex gates plus memory cells."""
    total = sum(sop_transistor_estimate(cover) for cover in covers)
    total += memory_elements * CLATCH_TRANSISTORS
    return total
