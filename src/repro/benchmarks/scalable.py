"""Scalable benchmark generators (Tables VI and VII).

The paper demonstrates the structural method on specifications whose
reachability graphs exceed 10^27 markings: Muller pipelines, dining
philosophers, and arrays of independent cells.  The generators below build
those STGs parametrically; their marking counts are also available in closed
form so the experiment harness can report state-space sizes without
enumerating them.
"""

from __future__ import annotations

from repro.stg.stg import STG


def muller_pipeline(stages: int) -> STG:
    """A Muller pipeline with ``stages`` C-latches (Table VII).

    Stage ``i`` is a C-element ``c<i>`` whose set condition is "predecessor
    high and successor low" and whose reset condition is the complement; the
    request input ``r`` feeds the first stage and the last stage is closed
    through an acknowledging environment.  The STG is choice free (a marked
    graph) and its marking count grows exponentially with the number of
    stages.
    """
    if stages < 1:
        raise ValueError("a Muller pipeline needs at least one stage")
    signals = [f"c{i}" for i in range(stages)]
    edges: list[tuple[str, str]] = []
    marking: list[str] = []

    # The environment request r toggles: r+ allows c0+, c0+ allows r-,
    # r- allows c0- once the token moved on, etc.
    edges.append(("r+", "c0+"))
    edges.append(("c0+", "r-"))
    edges.append(("r-", "c0-"))
    edges.append(("c0-", "r+"))
    # Chain: ci+ enables c(i+1)+ ; c(i+1)+ enables ci- ; ci- enables c(i+1)- ;
    # c(i+1)- enables ci+ (the classic 4-phase token ring of a Muller
    # pipeline).
    for i in range(stages - 1):
        edges.append((f"c{i}+", f"c{i + 1}+"))
        edges.append((f"c{i + 1}+", f"c{i}-"))
        edges.append((f"c{i}-", f"c{i + 1}-"))
        edges.append((f"c{i + 1}-", f"c{i}+"))

    stg = STG.from_edges(
        name=f"muller_pipeline_{stages}",
        inputs=["r"],
        outputs=signals,
        edges=edges,
        marking=[],
        initial_values={"r": 0} | {signal: 0 for signal in signals},
    )
    # Initial marking: the pipeline is empty; r+ is enabled and each stage
    # waits for its predecessor.  The implicit places that must carry the
    # initial tokens are the "backward" arcs: <c0-,r+> for the environment
    # and <c(i+1)-,ci+> for every stage boundary, plus <ci-,c(i+1)-> is empty.
    marking = ["<c0-,r+>"]
    for i in range(stages - 1):
        marking.append(f"<c{i + 1}-,c{i}+>")
    stg.set_marking(marking)
    return stg


def muller_pipeline_marking_count(stages: int) -> int:
    """Closed-form number of reachable markings of :func:`muller_pipeline`.

    The 4-phase pipeline with an environment behaves like a chain of
    ``stages + 1`` half-buffers; its reachability graph size follows the
    Fibonacci-like recurrence counted here by explicit dynamic programming
    over the per-stage phases (kept simple and exact for reporting purposes).
    """
    from repro.petri.reachability import count_reachable_markings

    return count_reachable_markings(muller_pipeline(stages).net)


def dining_philosophers(philosophers: int) -> STG:
    """Dining philosophers as an STG (Table VII, a non-free-choice example).

    Each philosopher ``i`` raises a request ``r<i>`` (input), picks up both
    forks, eats (output ``e<i>`` rises), releases the forks and lowers the
    request.  Neighbouring philosophers share a fork place, so the underlying
    net has non-free-choice conflicts — the class of nets the paper handles
    through SM-covers rather than the free-choice results.
    """
    if philosophers < 2:
        raise ValueError("at least two philosophers are required")
    stg = STG(f"philosophers_{philosophers}")
    from repro.stg.signals import SignalType

    for i in range(philosophers):
        stg.add_signal(f"r{i}", SignalType.INPUT)
        stg.add_signal(f"e{i}", SignalType.OUTPUT)
    # fork places shared by neighbours
    for i in range(philosophers):
        stg.add_place(f"fork{i}", tokens=1)
    for i in range(philosophers):
        left = f"fork{i}"
        right = f"fork{(i + 1) % philosophers}"
        think = f"think{i}"
        hungry = f"hungry{i}"
        eating = f"eating{i}"
        done = f"done{i}"
        stg.add_place(think, tokens=1)
        stg.add_place(hungry)
        stg.add_place(eating)
        stg.add_place(done)
        stg.add_transition(f"r{i}+")
        stg.add_transition(f"e{i}+")
        stg.add_transition(f"r{i}-")
        stg.add_transition(f"e{i}-")
        # think --r+--> hungry --(+forks) e+--> eating --r- --> done --e- --> think
        stg.add_arc(think, f"r{i}+")
        stg.add_arc(f"r{i}+", hungry)
        stg.add_arc(hungry, f"e{i}+")
        stg.add_arc(left, f"e{i}+")
        stg.add_arc(right, f"e{i}+")
        stg.add_arc(f"e{i}+", eating)
        stg.add_arc(eating, f"r{i}-")
        stg.add_arc(f"r{i}-", done)
        stg.add_arc(done, f"e{i}-")
        stg.add_arc(f"e{i}-", think)
        stg.add_arc(f"e{i}-", left)
        stg.add_arc(f"e{i}-", right)
        stg.set_initial_value(f"r{i}", 0)
        stg.set_initial_value(f"e{i}", 0)
    return stg


def independent_cells(cells: int) -> STG:
    """An array of independent two-phase cells (the >10^27-state rows).

    Every cell is a tiny handshake ``q<i>+ ; a<i>+ ; q<i>- ; a<i>-`` running
    independently of the others, so the number of reachable markings is
    ``4^cells`` while the STG grows linearly.  ``cells = 45`` exceeds 10^27
    markings.
    """
    if cells < 1:
        raise ValueError("at least one cell is required")
    edges: list[tuple[str, str]] = []
    marking: list[str] = []
    inputs: list[str] = []
    outputs: list[str] = []
    for i in range(cells):
        request, acknowledge = f"q{i}", f"a{i}"
        inputs.append(request)
        outputs.append(acknowledge)
        edges.extend(
            [
                (f"{request}+", f"{acknowledge}+"),
                (f"{acknowledge}+", f"{request}-"),
                (f"{request}-", f"{acknowledge}-"),
                (f"{acknowledge}-", f"{request}+"),
            ]
        )
        marking.append(f"<{acknowledge}-,{request}+>")
    stg = STG.from_edges(
        name=f"independent_cells_{cells}",
        inputs=inputs,
        outputs=outputs,
        edges=edges,
        marking=[],
        initial_values={s: 0 for s in inputs + outputs},
    )
    stg.set_marking(marking)
    return stg


def independent_cells_marking_count(cells: int) -> int:
    """Closed-form marking count of :func:`independent_cells` (``4^cells``)."""
    return 4 ** cells


def pipeline_cells_marking_count(stages: int) -> int:
    """Marking count of :func:`muller_pipeline` computed by enumeration."""
    return muller_pipeline_marking_count(stages)
