"""A suite of small and medium asynchronous-controller STGs.

The paper evaluates its method on the classic asynchronous benchmark set
(chu, vbe, nowick, sbuf, pe-send-ifc families).  Those original files are not
distributed with the paper, so this module provides *re-creations*: a suite
of realistic controller specifications covering the same structural variety —
purely sequential handshakes, fork/join concurrency, free choice between
operating modes, phase converters, and one specification with a CSC violation
(used by the coding tests and excluded from the synthesis-quality tables).

Every STG is written in the astg ``.g`` format and parsed through the public
parser, so the suite doubles as a parser regression test.  All properties
assumed by the synthesis flow (free choice, liveness, safeness, consistency,
CSC where claimed) are asserted in ``tests/test_classic_benchmarks.py``.
"""

from __future__ import annotations

from repro.stg.parser import parse_g
from repro.stg.stg import STG

#: ``.g`` sources of the benchmark suite, keyed by name.
CLASSIC_SOURCES: dict[str, str] = {
    # Purely sequential request/acknowledge wrapper (4 states).
    "handshake_seq": """
.model handshake_seq
.inputs req
.outputs ack
.graph
req+ ack+
ack+ req-
req- ack-
ack- req+
.marking { <ack-,req+> }
.end
""",
    # Parallelizer, broad protocol: one master handshake forks two
    # subordinate handshakes whose rising phases complete before the master
    # acknowledge and whose falling phases overlap the master release.
    "parallelizer": """
.model parallelizer
.inputs req d1 d2
.outputs r1 r2 ack
.graph
req+ r1+ r2+
r1+ d1+
r2+ d2+
d1+ ack+
d2+ ack+
ack+ req-
req- r1- r2-
r1- d1-
r2- d2-
d1- ack-
d2- ack-
ack- req+
.marking { <ack-,req+> }
.end
""",
    # Sequencer, broad protocol: the two subordinate handshakes run one
    # after the other inside the rising phase of the master.
    "sequencer": """
.model sequencer
.inputs req d1 d2
.outputs r1 r2 ack
.graph
req+ r1+
r1+ d1+
d1+ r2+
r2+ d2+
d2+ ack+
ack+ req-
req- r1-
r1- d1-
d1- r2-
r2- d2-
d2- ack-
ack- req+
.marking { <ack-,req+> }
.end
""",
    # Selector: a free choice between two operating modes decided by which
    # environment signal rises; each mode runs its own handshake.
    "selector": """
.model selector
.inputs s1 s2 d
.outputs r ack1 ack2
.graph
p0 s1+ s2+
s1+ r+/1
r+/1 d+/1
d+/1 ack1+
ack1+ s1-
s1- r-/1
r-/1 d-/1
d-/1 ack1-
ack1- p0
s2+ r+/2
r+/2 d+/2
d+/2 ack2+
ack2+ s2-
s2- r-/2
r-/2 d-/2
d-/2 ack2-
ack2- p0
.marking { p0 }
.end
""",
    # Read/write port controller: free choice between a read and a write
    # cycle sharing the enable/acknowledge signals (satisfies CSC but not
    # USC — two markings in different modes share a binary code).
    "rw_port": """
.model rw_port
.inputs rd wr ack
.outputs en
.graph
p0 rd+ wr+
rd+ en+/1
en+/1 ack+/1
ack+/1 rd-
rd- en-/1
en-/1 ack-/1
ack-/1 p0
wr+ en+/2
en+/2 ack+/2
ack+/2 wr-
wr- en-/2
en-/2 ack-/2
ack-/2 p0
.marking { p0 }
.end
""",
    # Two-phase to four-phase protocol converter; the output toggles in the
    # middle of each four-phase handshake so every state has a unique code.
    "converter_2to4": """
.model converter_2to4
.inputs i a
.outputs r o
.graph
i+ r+/1
r+/1 a+/1
a+/1 o+
o+ r-/1
r-/1 a-/1
a-/1 i-
i- r+/2
r+/2 a+/2
a+/2 o-
o- r-/2
r-/2 a-/2
a-/2 i+
.marking { <a-/2,i+> }
.end
""",
    # Dual-rail completion detector: a two-input C-element.
    "completion": """
.model completion
.inputs t f
.outputs done
.graph
p0 t+
p1 f+
t+ done+
f+ done+
done+ t-
done+ f-
t- done-
f- done-
done- p0
done- p1
.marking { p0 p1 }
.end
""",
    # Fully sequential pipeline stage controller (8-state cycle).
    "pipeline_ctrl": """
.model pipeline_ctrl
.inputs ri ao
.outputs ai ro
.graph
ri+ ro+
ro+ ao+
ao+ ai+
ai+ ri-
ri- ro-
ro- ao-
ao- ai-
ai- ri+
.marking { <ai-,ri+> }
.end
""",
    # Semi-decoupled latch controller: input and output handshakes overlap.
    # This specification has a genuine CSC conflict (it needs a state signal
    # to be implementable) and is used as the negative example of the coding
    # tests.
    "latch_ctrl": """
.model latch_ctrl
.inputs rin aout
.outputs ain rout
.graph
rin+ ain+
ain+ rin- rout+
rin- ain-
ain- rin+
rout+ aout+
aout+ rout-
rout- aout- ain-
aout- rout+
.marking { <ain-,rin+> <aout-,rout+> }
.end
""",
    # Mode-selecting DMA-style controller: a free choice between a direct
    # transfer (one bus handshake) and an extended transfer that chains a
    # second handshake on a dedicated request before completing.
    "dma_ctrl": """
.model dma_ctrl
.inputs single burst gnt xgnt
.outputs breq xreq done
.graph
p0 single+ burst+
single+ breq+/1
breq+/1 gnt+/1
gnt+/1 done+/1
done+/1 single-
single- breq-/1
breq-/1 gnt-/1
gnt-/1 done-/1
done-/1 p0
burst+ breq+/2
breq+/2 gnt+/2
gnt+/2 xreq+
xreq+ xgnt+
xgnt+ done+/2
done+/2 burst-
burst- breq-/2
breq-/2 gnt-/2
gnt-/2 xreq-
xreq- xgnt-
xgnt- done-/2
done-/2 p0
.marking { p0 }
.end
""",
}

#: Names whose specification intentionally violates CSC (kept for the coding
#: tests; excluded from the synthesis-quality tables).
CSC_VIOLATING: frozenset[str] = frozenset({"latch_ctrl"})


def classic_names(synthesizable_only: bool = False) -> list[str]:
    """Names of the classic benchmark suite, in a stable order."""
    names = sorted(CLASSIC_SOURCES)
    if synthesizable_only:
        names = [name for name in names if name not in CSC_VIOLATING]
    return names


def load_classic(name: str) -> STG:
    """Parse one classic benchmark by name."""
    try:
        source = CLASSIC_SOURCES[name]
    except KeyError as error:
        raise KeyError(f"unknown classic benchmark {name!r}") from error
    return parse_g(source, name=name)


def load_all_classic(synthesizable_only: bool = False) -> dict[str, STG]:
    """Parse the whole classic suite."""
    return {
        name: load_classic(name)
        for name in classic_names(synthesizable_only=synthesizable_only)
    }
