"""Running-example STGs mirroring the figures of the paper.

The original figures are not machine readable, so the STGs below are
re-creations that preserve the structural features each figure illustrates:

* :func:`fig1_stg` — a free-choice STG with two input and two output signals,
  internal concurrency, a free choice between two operating modes, and
  multiple rising transitions of the output ``d`` (the role played by the
  Fig. 1 example);
* :func:`fig5_stg` — a small STG with a place whose single-cube approximation
  overestimates its marked region, demonstrating cover refinement
  (Section IV / Fig. 5);
* :func:`fig7_glatch_stg` — the generalized C-latch of Fig. 7: a C-element
  closed on its inputs through inverters, whose STG has ``2^n`` markings but
  only ``2n`` places.

Every property claimed here (free choice, liveness, safeness, consistency,
CSC) is asserted by ``tests/test_figures.py``.
"""

from __future__ import annotations

from repro.stg.stg import STG


def fig1_stg() -> STG:
    """The running example: free choice + concurrency + multiple ERs.

    Two operating modes selected by a free choice between the input bursts
    ``a+`` and ``b+``:

    * mode A (sequential): ``a+ ; c+ ; d+/1 ; a- ; c-/1 ; d-``
    * mode B (concurrent): ``b+ ; (c+/2 || d+/2) ; b- ; c-/2 ; d-``

    Output ``d`` has two rising transitions (one per mode) and a single
    falling transition reached through a merge place.  Two markings of the
    two modes share the binary code 0011, so the STG violates USC but
    satisfies CSC — the situation discussed for the Fig. 1 example.
    """
    edges = [
        # free choice between the two modes
        ("p0", "a+"),
        ("p0", "b+"),
        # mode A: sequential handshake
        ("a+", "pa1"), ("pa1", "c+"),
        ("c+", "pa2"), ("pa2", "d+/1"),
        ("d+/1", "pa3"), ("pa3", "a-"),
        ("a-", "pa4"), ("pa4", "c-/1"),
        ("c-/1", "pm"),
        # mode B: c and d rise concurrently, then b falls and c returns
        ("b+", "pb1"), ("b+", "pb2"),
        ("pb1", "c+/2"), ("c+/2", "pb3"),
        ("pb2", "d+/2"), ("d+/2", "pb4"),
        ("pb3", "b-"), ("pb4", "b-"),
        ("b-", "pb5"), ("pb5", "c-/2"),
        ("c-/2", "pm"),
        # shared falling transition of d and return to the choice
        ("pm", "d-"), ("d-", "p0"),
    ]
    stg = STG.from_edges(
        name="fig1",
        inputs=["a", "b"],
        outputs=["c", "d"],
        edges=edges,
        marking=["p0"],
        initial_values={"a": 0, "b": 0, "c": 0, "d": 0},
    )
    return stg


def fig5_stg() -> STG:
    """Cover-refinement example (Section IV / Fig. 5).

    Output ``y`` rises after the concurrent inputs ``x`` and ``z`` complete a
    handshake.  The places between the input transitions are concurrent to
    the other input signal, so their single-cube approximations leave that
    signal unconstrained — the situation the cover-refinement machinery of
    Section IV is designed for.
    """
    stg = STG.from_edges(
        name="fig5",
        inputs=["x", "z"],
        outputs=["y"],
        edges=[
            ("p0", "x+"), ("p0b", "z+"),
            ("x+", "p1"), ("z+", "p2"),
            ("p1", "x-"), ("p2", "z-"),
            ("x-", "p3"), ("z-", "p4"),
            ("p3", "y+"), ("p4", "y+"),
            ("y+", "p5"), ("p5", "y-"),
            ("y-", "p0"), ("y-", "p0b"),
        ],
        marking=["p0", "p0b"],
        initial_values={"x": 0, "z": 0, "y": 0},
    )
    return stg


def fig6_stg() -> STG:
    """Signal-insertion example: :func:`fig5_stg` with a state signal ``s``.

    The internal signal ``s`` records that the rising phase of the handshake
    completed, disambiguating the covers that intersect in Fig. 5 (the paper
    inserts the signal to distinguish the covers of the conflicting places).
    """
    stg = STG.from_edges(
        name="fig6",
        inputs=["x", "z"],
        outputs=["y"],
        internal=["s"],
        edges=[
            ("p0", "x+"), ("p0b", "z+"),
            ("x+", "p1"), ("z+", "p2"),
            ("p1", "s+"), ("p2", "s+"),
            ("s+", "p1b"), ("s+", "p2b"),
            ("p1b", "x-"), ("p2b", "z-"),
            ("x-", "p3"), ("z-", "p4"),
            ("p3", "y+"), ("p4", "y+"),
            ("y+", "p5"), ("p5", "s-"),
            ("s-", "p6"), ("p6", "y-"),
            ("y-", "p0"), ("y-", "p0b"),
        ],
        marking=["p0", "p0b"],
        initial_values={"x": 0, "z": 0, "y": 0, "s": 0},
    )
    return stg


def fig7_glatch_stg(inputs: int = 3) -> STG:
    """The generalized C-latch of Fig. 7.

    A C-element ``y`` closed on its ``n`` inputs through inverters: the
    output rises when all inputs are 1 and falls when all are 0, and every
    output change triggers a concurrent burst of input changes.  The STG has
    ``2n + 2`` places but ``2^(n+1)``-ish markings, which is what makes the
    cover-cube approximation dramatic (Section IV).

    The ``n`` input signals are named ``x0 .. x<n-1>``; the output is ``y``.
    """
    if inputs < 1:
        raise ValueError("the generalized C-latch needs at least one input")
    names = [f"x{i}" for i in range(inputs)]
    edges: list[tuple[str, str]] = []
    marking: list[str] = []
    for name in names:
        # y- causes xi+ ... xi+ enables y+ ; y+ causes xi- ; xi- enables y-
        edges.append(("y-", f"{name}+"))
        edges.append((f"{name}+", f"pu_{name}"))
        edges.append((f"pu_{name}", "y+"))
        edges.append(("y+", f"{name}-"))
        edges.append((f"{name}-", f"pd_{name}"))
        edges.append((f"pd_{name}", "y-"))
        # Initial state: the inverters have driven every input to 1, so y+ is
        # the transition enabled at the initial marking.
        marking.append(f"pu_{name}")
    stg = STG.from_edges(
        name=f"glatch_{inputs}",
        inputs=[],
        outputs=names + ["y"],
        edges=edges,
        marking=marking,
        initial_values={name: 1 for name in names} | {"y": 0},
    )
    return stg
