"""Benchmark registry: name → STG constructor.

The experiment harness (``benchmarks/`` and :mod:`repro.experiments`) looks
up benchmark instances by name so that tables and figures can declare their
workloads declaratively.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.benchmarks import classic, figures, scalable
from repro.stg.stg import STG

_BUILDERS: dict[str, Callable[[], STG]] = {}


def register(name: str, builder: Callable[[], STG]) -> None:
    """Register a benchmark constructor under a name."""
    _BUILDERS[name] = builder


def _register_defaults() -> None:
    register("fig1", figures.fig1_stg)
    register("fig5", figures.fig5_stg)
    register("fig6", figures.fig6_stg)
    register("glatch_3", lambda: figures.fig7_glatch_stg(3))
    register("glatch_5", lambda: figures.fig7_glatch_stg(5))
    register("glatch_8", lambda: figures.fig7_glatch_stg(8))
    for name in classic.classic_names():
        register(name, lambda n=name: classic.load_classic(n))
    for stages in (2, 4, 8, 16, 32):
        register(
            f"muller_pipeline_{stages}",
            lambda n=stages: scalable.muller_pipeline(n),
        )
    for philosophers in (3, 5, 8):
        register(
            f"philosophers_{philosophers}",
            lambda n=philosophers: scalable.dining_philosophers(n),
        )
    for cells in (5, 10, 20, 45):
        register(
            f"independent_cells_{cells}",
            lambda n=cells: scalable.independent_cells(n),
        )


_register_defaults()


def list_benchmarks() -> list[str]:
    """All registered benchmark names."""
    return sorted(_BUILDERS)


def get_benchmark(name: str) -> STG:
    """Build a registered benchmark by name."""
    try:
        builder = _BUILDERS[name]
    except KeyError as error:
        raise KeyError(f"unknown benchmark {name!r}") from error
    return builder()
