"""Benchmark STGs: running examples, classic circuits, and scalable generators.

* :mod:`figures` — the running examples of the paper's figures (re-created:
  the original drawings are not machine readable, so the STGs here are
  constructed to exhibit the same structure class and properties —
  free-choice, live, safe, consistent, CSC — and every property is asserted
  by the test-suite);
* :mod:`classic` — a suite of small/medium asynchronous-controller STGs in
  the ``.g`` format, in the spirit of the classic benchmark set used by the
  paper (Table V);
* :mod:`scalable` — parametric generators: Muller pipelines, dining
  philosophers, the generalized C-latch of Fig. 7, and arrays of independent
  cells whose state counts blow past 10^27 (Tables VI and VII);
* :mod:`registry` — a name → constructor registry used by the experiment
  harness.
"""

from repro.benchmarks.registry import get_benchmark, list_benchmarks

__all__ = ["get_benchmark", "list_benchmarks"]
