"""The structural synthesis engine (Section VIII).

The flow follows the two-step heuristic of the paper: first derive correct,
monotonic set and reset covers from the structural region approximations;
then apply a sequence of minimizations whose aggressiveness is selected by
``SynthesisOptions.level`` (matching the M1..M5 points of Fig. 13):

1. **M1** — atomic complex gate per excitation region: one cover per
   transition, expanded toward its restricted quiescent region and the
   dc-set (equations (3)/(4));
2. **M2** — transitions of a signal merged into one set and one reset cover
   (atomic complex gate per excitation function, equation (2));
3. **M3** — complete-cover detection: when a set (reset) cover also covers
   the whole quiescent region, the signal becomes a combinational complex
   gate and the C-latch is removed;
4. **M4** — memory-element collapsing into a gated latch when the set and
   reset covers are single cubes at Hamming distance one (Appendix D);
5. **M5** — backward expansion: covers may extend into the backward
   quiescent regions while the opposite network still holds the latch
   (Appendix E).

Technology mapping (Appendix F) is performed separately by
:mod:`repro.synthesis.mapping`.

Every expansion is accepted only if the resulting cover stays correct
(equation (2)) and monotonic (Property 16), both checked structurally.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.boolean.cover import Cover
from repro.boolean.minimize import minimize_cover
from repro.stg.stg import STG
from repro.structural.approximation import SignalRegionApproximation
from repro.synthesis.conditions import (
    check_cover_correctness,
    check_monotonicity_structural,
    reset_function_sets,
    set_function_sets,
)
from repro.synthesis.netlist import (
    Architecture,
    Circuit,
    SignalImplementation,
    combinational_implementation,
    latch_implementation,
)


class SynthesisError(RuntimeError):
    """Raised when the specification cannot be synthesized by this flow."""


@dataclass
class SynthesisOptions:
    """Knobs of the synthesis flow.

    ``level`` selects how many minimization steps are applied (1..5, see the
    module docstring); ``assume_csc`` accepts specifications whose CSC
    property could not be certified structurally (the caller takes
    responsibility, e.g. after a state-based check); ``check_consistency``
    can be disabled when the caller already verified it.
    """

    level: int = 5
    assume_csc: bool = False
    check_consistency: bool = True
    use_sufficient_adjacency: bool = False
    signals: Optional[list[str]] = None

    def __post_init__(self) -> None:
        if not 1 <= self.level <= 5:
            raise ValueError("minimization level must be between 1 and 5")


@dataclass
class SynthesisResult:
    """A synthesized circuit together with flow statistics.

    The circuit's cost and rendering queries are delegated explicitly (a
    ``__getattr__`` passthrough would recurse infinitely under
    ``copy.copy``/pickle while ``circuit`` is not yet set, which breaks
    process-pool batch results).
    """

    circuit: Circuit
    approximation: SignalRegionApproximation
    statistics: dict = field(default_factory=dict)

    def literal_count(self) -> int:
        """Total literal count of the synthesized circuit."""
        return self.circuit.literal_count()

    def transistor_estimate(self) -> int:
        """Total estimated transistor count of the synthesized circuit."""
        return self.circuit.transistor_estimate()

    def num_latches(self) -> int:
        """Number of memory elements in the synthesized circuit."""
        return self.circuit.num_latches()

    def describe(self) -> str:
        """Multi-line human readable netlist of the synthesized circuit."""
        return self.circuit.describe()


def _minimize_against(
    on_set: Cover,
    off_set: Cover,
    variables: tuple[str, ...],
    dc_set: Optional[Cover] = None,
) -> Cover:
    """Expand the on-set against the off-set (toward QR and dc-set)."""
    if on_set.is_empty():
        return Cover.empty(variables)
    return minimize_cover(on_set, off_set, dc_set).with_variables(variables)


def _monotonic_for_signal(
    approximation: SignalRegionApproximation,
    signal: str,
    direction: str,
    cover: Cover,
) -> bool:
    """Property 16 for every transition of ``signal`` in ``direction``."""
    stg = approximation.stg
    for transition in stg.transitions_by_direction(signal, direction):
        if not check_monotonicity_structural(approximation, transition, cover):
            return False
    return True


def _per_region_covers(
    approximation: SignalRegionApproximation,
    signal: str,
    direction: str,
) -> dict[str, Cover]:
    """M1: one expanded cover per excitation region (equations (3)/(4))."""
    stg = approximation.stg
    variables = tuple(stg.signal_names)
    # The off-set of a region cover is everything the specification reaches
    # except the region's own ER and restricted QR.
    result: dict[str, Cover] = {}
    opposite = "-" if direction == "+" else "+"
    value = 1 if direction == "+" else 0
    base_off = approximation.ger_cover(signal, opposite).union(
        approximation.gqr_cover(signal, 1 - value)
    )
    for transition in stg.transitions_by_direction(signal, direction):
        own = approximation.er_cover(transition)
        allowed = own.union(approximation.qr_cover(transition, restricted=True))
        off_set = base_off
        for other in stg.transitions_by_direction(signal, direction):
            if other == transition:
                continue
            off_set = off_set.union(
                approximation.er_cover(other).sharp(allowed)
            )
            off_set = off_set.union(
                approximation.qr_cover(other, restricted=True).sharp(allowed)
            )
        expanded = _minimize_against(own, off_set, variables)
        if not check_cover_correctness(own, off_set, expanded):
            expanded = own
        if not check_monotonicity_structural(approximation, transition, expanded):
            expanded = own
        result[transition] = expanded
    return result


def _merged_cover(
    approximation: SignalRegionApproximation,
    signal: str,
    direction: str,
) -> Cover:
    """M2: a single expanded cover for all transitions of one direction."""
    variables = tuple(approximation.stg.signal_names)
    value = 1 if direction == "+" else 0
    if direction == "+":
        on_set, off_set = set_function_sets(approximation, signal)
    else:
        on_set, off_set = reset_function_sets(approximation, signal)
    quiescent = approximation.gqr_cover(signal, value)
    expanded = _minimize_against(on_set, off_set, variables, dc_set=quiescent)
    if not check_cover_correctness(on_set, off_set, expanded):
        expanded = on_set
    if not _monotonic_for_signal(approximation, signal, direction, expanded):
        expanded = on_set
    return expanded


def _try_complete_cover(
    approximation: SignalRegionApproximation,
    signal: str,
    direction: str,
    cover: Cover,
) -> Optional[Cover]:
    """M3: check whether the cover also absorbs the whole quiescent region.

    If it does (possibly after a further expansion whose on-set includes the
    quiescent region), the signal can be implemented by a combinational
    complex gate computing its next-state function.
    """
    variables = tuple(approximation.stg.signal_names)
    value = 1 if direction == "+" else 0
    quiescent = approximation.gqr_cover(signal, value)
    if cover.contains_cover(quiescent):
        return cover
    if direction == "+":
        on_set = approximation.next_state_on_set(signal)
        off_set = approximation.next_state_off_set(signal)
    else:
        on_set = approximation.next_state_off_set(signal)
        off_set = approximation.next_state_on_set(signal)
    candidate = _minimize_against(on_set, off_set, variables)
    if check_cover_correctness(on_set, off_set, candidate) and candidate.contains_cover(
        on_set
    ):
        return candidate
    return None


def _try_gated_latch(set_cover: Cover, reset_cover: Cover) -> bool:
    """M4: set/reset single cubes with the same support at distance one."""
    if len(set_cover) != 1 or len(reset_cover) != 1:
        return False
    set_cube = set_cover.cubes[0]
    reset_cube = reset_cover.cubes[0]
    if set_cube.support != reset_cube.support:
        return False
    return set_cube.distance(reset_cube) == 1


def _backward_expand(
    approximation: SignalRegionApproximation,
    signal: str,
    direction: str,
    cover: Cover,
    opposite_cover: Cover,
) -> Cover:
    """M5: expand into the backward quiescent regions (Appendix E).

    The markings of the backward region of a transition may be covered only
    where the opposite network is still on (the C-latch then holds its
    output), so the usable dc extension is the intersection of the backward
    covers with the opposite cover.
    """
    stg = approximation.stg
    variables = tuple(stg.signal_names)
    backward = Cover.empty(variables)
    for transition in stg.transitions_by_direction(signal, direction):
        backward = backward.union(approximation.br_cover(transition))
    usable = backward.intersection(opposite_cover)
    if usable.is_empty():
        return cover
    if direction == "+":
        on_set, off_set = set_function_sets(approximation, signal)
    else:
        on_set, off_set = reset_function_sets(approximation, signal)
    reduced_off = off_set.sharp(usable)
    expanded = _minimize_against(cover, reduced_off, variables)
    if not check_cover_correctness(on_set, reduced_off, expanded):
        return cover
    if not _monotonic_for_signal(approximation, signal, direction, expanded):
        return cover
    return expanded


def prepare_approximation(
    stg: STG, options: Optional[SynthesisOptions] = None
) -> tuple[SignalRegionApproximation, dict]:
    """Run the analysis front-end: consistency, approximation, refinement, CSC.

    .. deprecated::
        Thin shim over the staged :class:`repro.api.pipeline.Pipeline`
        (stages ``analyze`` and ``refine``), kept for the historical
        module-level API.  New code should drive the pipeline directly —
        it memoises the artifacts so sweeps reuse the front-end.

    Returns the (refined) signal-region approximation and a statistics
    dictionary.  Raises :class:`SynthesisError` on consistency or CSC
    failures (unless ``options.assume_csc``).
    """
    from repro.api.pipeline import Pipeline
    from repro.api.spec import Spec

    options = options or SynthesisOptions()
    pipeline = Pipeline()
    spec = Spec.from_stg(stg)
    analysis = pipeline.analyze(spec, options)
    refinement = pipeline.refine(spec, options)
    if not refinement.csc_certified and not options.assume_csc:
        raise SynthesisError(
            "CSC could not be certified structurally for places "
            f"{set(refinement.unresolved_places)}; state-signal insertion "
            "would be required (pass assume_csc=True to override after an "
            "external CSC check)"
        )
    stats = {
        "sm_components": analysis.sm_components,
        "sm_cover": analysis.sm_cover_size,
        "conflicts_before": refinement.conflicts_before,
        "conflicts_after": refinement.conflicts_after,
        "csc_certified": refinement.csc_certified,
        "cubes": refinement.cubes,
        "analysis_seconds": analysis.seconds + refinement.seconds,
    }
    return refinement.approximation, stats


def synthesize(
    stg: STG,
    options: Optional[SynthesisOptions] = None,
    approximation: Optional[SignalRegionApproximation] = None,
) -> SynthesisResult:
    """Synthesize a speed-independent circuit from an STG, structurally.

    This is the legacy module-level entry point, retained as a shim (the
    structural backend of :mod:`repro.api` calls it with a pre-computed
    approximation).  Prefer :func:`repro.api.run` / the staged
    :class:`repro.api.pipeline.Pipeline` for new code: they add artifact
    caching, pluggable backends, batch execution and typed reports.
    """
    options = options or SynthesisOptions()
    stats: dict = {}
    if approximation is None:
        approximation, stats = prepare_approximation(stg, options)
    start = time.perf_counter()

    signals = options.signals if options.signals is not None else stg.non_input_signals
    circuit = Circuit(name=stg.name, signal_order=tuple(stg.signal_names))
    for signal in signals:
        circuit.implementations[signal] = _synthesize_signal(
            approximation, signal, options
        )
    stats["synthesis_seconds"] = time.perf_counter() - start
    stats["level"] = options.level
    return SynthesisResult(circuit=circuit, approximation=approximation, statistics=stats)


def _synthesize_signal(
    approximation: SignalRegionApproximation,
    signal: str,
    options: SynthesisOptions,
) -> SignalImplementation:
    """Synthesize one output signal at the requested minimization level."""
    level = options.level

    if level == 1:
        set_regions = _per_region_covers(approximation, signal, "+")
        reset_regions = _per_region_covers(approximation, signal, "-")
        variables = tuple(approximation.stg.signal_names)
        set_cover = Cover.empty(variables)
        for cover in set_regions.values():
            set_cover = set_cover.union(cover)
        reset_cover = Cover.empty(variables)
        for cover in reset_regions.values():
            reset_cover = reset_cover.union(cover)
        return latch_implementation(
            signal,
            set_cover,
            reset_cover,
            architecture=Architecture.ER_ONE_HOT,
            region_covers={**set_regions, **reset_regions},
        )

    set_cover = _merged_cover(approximation, signal, "+")
    reset_cover = _merged_cover(approximation, signal, "-")

    if level >= 3:
        complete_set = _try_complete_cover(approximation, signal, "+", set_cover)
        if complete_set is not None:
            return combinational_implementation(signal, complete_set)
        complete_reset = _try_complete_cover(approximation, signal, "-", reset_cover)
        if complete_reset is not None:
            # The reset network computes the complemented next-state function;
            # implementing the signal as NOT(reset) keeps the cost model
            # identical, so the reset cover is reported as the gate.
            return combinational_implementation(signal, complete_reset)

    if level >= 5:
        set_cover = _backward_expand(approximation, signal, "+", set_cover, reset_cover)
        reset_cover = _backward_expand(approximation, signal, "-", reset_cover, set_cover)

    architecture = Architecture.SET_RESET_LATCH
    if level >= 4 and _try_gated_latch(set_cover, reset_cover):
        architecture = Architecture.GATED_LATCH
    return latch_implementation(signal, set_cover, reset_cover, architecture=architecture)
