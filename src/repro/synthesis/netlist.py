"""Circuit netlists produced by the synthesis flow.

A synthesized circuit assigns one :class:`SignalImplementation` to every
non-input signal.  Depending on the architecture (Section III-A) the
implementation is:

* ``COMPLEX_GATE`` — a single atomic complex gate computing the next-state
  function (Fig. 3(a));
* ``SET_RESET_LATCH`` — set and reset complex gates feeding a C-latch
  (Fig. 3(b));
* ``ER_ONE_HOT`` — one complex gate per excitation region, OR-ed into the
  set/reset inputs of the C-latch (Fig. 3(c));
* ``GATED_LATCH`` — the collapsed memory element of Appendix D.

The netlist knows how to evaluate itself on a binary signal vector (used by
the verifier) and how to report its cost in literals and estimated
transistors (used by the area experiments).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from collections.abc import Mapping
from typing import Optional

from repro.boolean.cost import CLATCH_TRANSISTORS, sop_transistor_estimate
from repro.boolean.cover import Cover


class Architecture(Enum):
    """Implementation architectures of Section III-A."""

    COMPLEX_GATE = "complex-gate-per-signal"
    SET_RESET_LATCH = "complex-gate-per-excitation-function"
    ER_ONE_HOT = "complex-gate-per-excitation-region"
    GATED_LATCH = "gated-latch"


@dataclass
class SignalImplementation:
    """The logic implementing one output signal."""

    signal: str
    architecture: Architecture
    #: single cover for COMPLEX_GATE; set-network cover otherwise
    set_cover: Cover
    #: reset-network cover (empty for COMPLEX_GATE)
    reset_cover: Cover
    #: per-excitation-region covers (ER_ONE_HOT only), keyed by transition
    region_covers: dict[str, Cover] = field(default_factory=dict)
    uses_latch: bool = True

    # ------------------------------------------------------------------ #
    # Cost
    # ------------------------------------------------------------------ #

    def literal_count(self) -> int:
        """Total literals of the implementation's combinational logic."""
        if self.architecture is Architecture.ER_ONE_HOT and self.region_covers:
            return sum(cover.num_literals() for cover in self.region_covers.values())
        if (
            self.architecture is Architecture.GATED_LATCH
            and len(self.set_cover) == 1
            and len(self.reset_cover) == 1
        ):
            # The collapsed gated latch shares the common literals of the set
            # and reset cubes (Appendix D): data input = common part,
            # control input = the single differing literal.
            common = self.set_cover.cubes[0].supercube(self.reset_cover.cubes[0])
            return common.num_literals() + 2
        total = self.set_cover.num_literals()
        if self.uses_latch:
            total += self.reset_cover.num_literals()
        return total

    def transistor_estimate(self) -> int:
        """Estimated transistor count (combinational logic + memory cell)."""
        if self.architecture is Architecture.ER_ONE_HOT and self.region_covers:
            total = sum(
                sop_transistor_estimate(cover) for cover in self.region_covers.values()
            )
        else:
            total = sop_transistor_estimate(self.set_cover)
            if self.uses_latch:
                total += sop_transistor_estimate(self.reset_cover)
        if self.uses_latch:
            total += CLATCH_TRANSISTORS
        return total

    # ------------------------------------------------------------------ #
    # Behaviour
    # ------------------------------------------------------------------ #

    def next_value(self, vector: Mapping[str, int]) -> int:
        """Next value of the signal for a complete input/state vector.

        For latch-based architectures the C-latch semantics apply: the output
        rises when the set network is on, falls when the reset network is on,
        and holds its value otherwise.
        """
        current = vector.get(self.signal, 0)
        set_on = self.set_cover.covers_vertex(vector)
        if not self.uses_latch:
            return 1 if set_on else 0
        reset_on = self.reset_cover.covers_vertex(vector)
        if set_on and not reset_on:
            return 1
        if reset_on and not set_on:
            return 0
        return current

    def set_expression(self) -> str:
        """Human-readable SOP of the set network (or the single gate)."""
        return self.set_cover.to_expression()

    def reset_expression(self) -> str:
        """Human-readable SOP of the reset network."""
        return self.reset_cover.to_expression()

    def describe(self) -> str:
        """One-line description of the implementation."""
        if not self.uses_latch:
            return f"{self.signal} = {self.set_expression()}"
        return (
            f"{self.signal} = C-latch(set = {self.set_expression()}, "
            f"reset = {self.reset_expression()})"
        )

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    def to_json(self) -> dict:
        """Lossless JSON-serializable form of the implementation."""
        return {
            "signal": self.signal,
            "architecture": self.architecture.value,
            "set_cover": self.set_cover.to_json(),
            "reset_cover": self.reset_cover.to_json(),
            "region_covers": {
                transition: cover.to_json()
                for transition, cover in self.region_covers.items()
            },
            "uses_latch": self.uses_latch,
        }

    @classmethod
    def from_json(cls, data: dict) -> "SignalImplementation":
        """Rebuild an implementation from :meth:`to_json` output."""
        return cls(
            signal=data["signal"],
            architecture=Architecture(data["architecture"]),
            set_cover=Cover.from_json(data["set_cover"]),
            reset_cover=Cover.from_json(data["reset_cover"]),
            region_covers={
                transition: Cover.from_json(cover)
                for transition, cover in data.get("region_covers", {}).items()
            },
            uses_latch=bool(data.get("uses_latch", True)),
        )


@dataclass
class Circuit:
    """A complete synthesized circuit: one implementation per output signal."""

    name: str
    implementations: dict[str, SignalImplementation] = field(default_factory=dict)
    signal_order: tuple[str, ...] = ()
    metadata: dict = field(default_factory=dict)

    def __getitem__(self, signal: str) -> SignalImplementation:
        return self.implementations[signal]

    def __contains__(self, signal: str) -> bool:
        return signal in self.implementations

    def __iter__(self):
        return iter(self.implementations.values())

    @property
    def signals(self) -> list[str]:
        """The implemented (non-input) signals."""
        return list(self.implementations)

    # ------------------------------------------------------------------ #
    # Cost
    # ------------------------------------------------------------------ #

    def literal_count(self) -> int:
        """Total literal count of the circuit."""
        return sum(impl.literal_count() for impl in self.implementations.values())

    def transistor_estimate(self) -> int:
        """Total estimated transistor count of the circuit."""
        return sum(impl.transistor_estimate() for impl in self.implementations.values())

    def num_latches(self) -> int:
        """Number of memory elements in the circuit."""
        return sum(1 for impl in self.implementations.values() if impl.uses_latch)

    # ------------------------------------------------------------------ #
    # Behaviour
    # ------------------------------------------------------------------ #

    def next_values(self, vector: Mapping[str, int]) -> dict[str, int]:
        """Next value of every implemented signal for a complete vector."""
        return {
            signal: impl.next_value(vector)
            for signal, impl in self.implementations.items()
        }

    def next_value(self, signal: str, vector: Mapping[str, int]) -> int:
        """Next value of one signal."""
        return self.implementations[signal].next_value(vector)

    def describe(self) -> str:
        """Multi-line human readable netlist."""
        lines = [f"circuit {self.name}"]
        for signal in self.signals:
            lines.append("  " + self.implementations[signal].describe())
        lines.append(
            f"  cost: {self.literal_count()} literals, "
            f"{self.transistor_estimate()} transistors, "
            f"{self.num_latches()} latches"
        )
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    def to_json(self) -> dict:
        """Lossless, versioned JSON form of the circuit.

        Covers serialize by literal names (see :meth:`Cube.to_json`), so a
        circuit loaded in another process re-interns its variables and
        re-derives the packed masks — the same contract as pickling.
        """
        return {
            "format": "repro-circuit",
            "version": 1,
            "name": self.name,
            "signal_order": list(self.signal_order),
            "metadata": dict(self.metadata),
            "implementations": [
                self.implementations[signal].to_json() for signal in self.implementations
            ],
        }

    @classmethod
    def from_json(cls, data: dict) -> "Circuit":
        """Rebuild a circuit from :meth:`to_json` output."""
        if data.get("format") != "repro-circuit":
            raise ValueError(
                f"not a circuit document (format={data.get('format')!r})"
            )
        implementations = [
            SignalImplementation.from_json(impl)
            for impl in data.get("implementations", ())
        ]
        return cls(
            name=data["name"],
            implementations={impl.signal: impl for impl in implementations},
            signal_order=tuple(data.get("signal_order", ())),
            metadata=dict(data.get("metadata", {})),
        )


def combinational_implementation(
    signal: str, cover: Cover, architecture: Architecture = Architecture.COMPLEX_GATE
) -> SignalImplementation:
    """An implementation without a memory element (complete cover)."""
    return SignalImplementation(
        signal=signal,
        architecture=architecture,
        set_cover=cover,
        reset_cover=Cover.empty(cover.variables),
        uses_latch=False,
    )


def latch_implementation(
    signal: str,
    set_cover: Cover,
    reset_cover: Cover,
    architecture: Architecture = Architecture.SET_RESET_LATCH,
    region_covers: Optional[dict[str, Cover]] = None,
) -> SignalImplementation:
    """A set/reset C-latch based implementation."""
    return SignalImplementation(
        signal=signal,
        architecture=architecture,
        set_cover=set_cover,
        reset_cover=reset_cover,
        region_covers=dict(region_covers or {}),
        uses_latch=True,
    )
