"""Speed-independent synthesis flow.

Implements the three implementation architectures of Section III, the
correctness and monotonicity conditions (equations (1)–(4), Property 16), the
minimization loop of Section VIII and the Appendix, a small gate library with
Boolean-matching technology mapping, and the top-level synthesis engines:

* :func:`repro.synthesis.engine.synthesize` — the structural flow (the
  paper's contribution), driven by the region approximations of
  :mod:`repro.structural`;
* :func:`repro.statebased.synthesis.synthesize_state_based` — the exhaustive
  baseline (SIS/ASSASSIN style), driven by the exact regions of
  :mod:`repro.statebased`.
"""

from repro.synthesis.netlist import Architecture, Circuit, SignalImplementation
from repro.synthesis.conditions import (
    check_cover_correctness,
    check_monotonicity_structural,
    check_monotonicity_state_based,
)
from repro.synthesis.mapping import (
    GateLibrary,
    LibraryCell,
    MappingResult,
    default_library,
    get_library,
    latch_free_library,
    map_circuit,
    two_input_library,
)
from repro.synthesis.engine import SynthesisError, SynthesisOptions, synthesize

__all__ = [
    "Architecture",
    "Circuit",
    "SignalImplementation",
    "check_cover_correctness",
    "check_monotonicity_structural",
    "check_monotonicity_state_based",
    "GateLibrary",
    "LibraryCell",
    "MappingResult",
    "default_library",
    "get_library",
    "latch_free_library",
    "map_circuit",
    "two_input_library",
    "SynthesisError",
    "SynthesisOptions",
    "synthesize",
]
