"""Technology mapping: from behavioural covers to a gate-level netlist.

The paper maps the minimized signal networks onto a library of standard
cells, merging simple gates into complex gates (up to four inputs, e.g.
AOI22) when available (Appendix F).  This module performs that mapping
*structurally*: :func:`map_circuit` lowers every
:class:`~repro.synthesis.netlist.SignalImplementation` into real
:class:`~repro.gates.ir.GateInstance` nodes wired through named nets,
following the Section III-A architectures:

* combinational complex gates (Fig. 3(a)) become one SOP cell (or a
  term-split cell group joined by an explicit 2-input OR tree);
* set/reset networks (Fig. 3(b)) become two cover cones feeding a C-latch;
* the per-excitation-region architecture (Fig. 3(c)) instantiates one gate
  per region cover and ORs the region outputs into the latch inputs;
* the Appendix-D gated latch collapses set/reset cubes that share all but
  one literal into an enable cone plus a ``gated-latch`` cell.

Product terms too wide for any library cell are decomposed through an
explicit AND tree of the library's widest AND-capable cells (a
deterministic structure with a deterministic area — no estimates), and
libraries with ``allow_latch=False`` expand every memory element into the
combinational feedback form ``q = set + q·reset'``.

The cell selection itself is delegated to
:meth:`repro.gates.library.GateLibrary.plan_cover`, so the area reported by
the plain estimator :meth:`GateLibrary.map_cover` and the area of the
constructed netlist always agree.

This intentionally stops short of general logic decomposition, which the
paper also excludes ("it is not possible to apply a generalized
decomposition process ... due to the restrictive correctness conditions
imposed by speed-independent circuits").
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube
from repro.gates.ir import GateInstance, GateKind, GateNetlist, Net
from repro.gates.library import (
    GateLibrary,
    LibraryCell,
    PlanNode,
    default_library,
    get_library,
    latch_free_library,
    two_input_library,
)
from repro.synthesis.netlist import Architecture, Circuit, SignalImplementation

__all__ = [
    "GateLibrary",
    "LibraryCell",
    "MappingResult",
    "default_library",
    "get_library",
    "latch_free_library",
    "map_circuit",
    "two_input_library",
]


def _ident(name: str) -> str:
    """Sanitize a transition label for use inside net names."""
    return re.sub(r"[^A-Za-z0-9_]", "_", name.replace("+", "p").replace("-", "m"))


@dataclass
class MappingResult:
    """A mapped circuit: area report plus the constructed gate netlist."""

    circuit: Circuit
    total_area: int
    per_signal_area: dict[str, int] = field(default_factory=dict)
    cells_used: dict[str, list[str]] = field(default_factory=dict)
    #: the typed gate-graph IR of the mapped circuit
    netlist: Optional[GateNetlist] = None
    #: the library the circuit was mapped with
    library: Optional[GateLibrary] = None


class _NetlistBuilder:
    """Incrementally constructs the :class:`GateNetlist` of one circuit."""

    def __init__(self, circuit: Circuit, library: GateLibrary):
        self.library = library
        implemented = set(circuit.implementations)
        ordered = list(circuit.signal_order)
        ordered += [s for s in circuit.implementations if s not in ordered]
        self._inputs = [s for s in ordered if s not in implemented]
        self._outputs = [s for s in ordered if s in implemented]
        self.netlist = GateNetlist(name=circuit.name, library=library.name)
        for signal in self._inputs:
            self.netlist.nets[signal] = Net(signal, "input", signal=signal)
        for signal in self._outputs:
            self.netlist.nets[signal] = Net(signal, "output", signal=signal)

    # -------------------------------------------------------------- #
    # Net / gate plumbing
    # -------------------------------------------------------------- #

    def _signal_net(self, variable: str) -> str:
        """The net carrying a cover variable (declared lazily as an input)."""
        if variable not in self.netlist.nets:
            self.netlist.nets[variable] = Net(variable, "input", signal=variable)
            self._inputs.append(variable)
        return variable

    def _internal_net(self, name: str) -> str:
        if name in self.netlist.nets:
            raise ValueError(f"net name collision: {name!r}")
        self.netlist.nets[name] = Net(name, "internal")
        return name

    def _add_gate(
        self,
        cell: str,
        kind: GateKind,
        inputs: tuple[str, ...],
        output: str,
        terms: tuple,
        area: int,
    ) -> None:
        self.netlist.gates.append(
            GateInstance(
                name=f"g_{output}",
                cell=cell,
                kind=kind,
                inputs=inputs,
                output=output,
                terms=terms,
                area=area,
            )
        )

    def _emit_const(self, value: int, output_net: Optional[str], prefix: str) -> str:
        net = output_net if output_net is not None else self._internal_net(prefix)
        terms = ((),) if value else ()
        self._add_gate(f"const{value}", GateKind.SOP, (), net, terms, 0)
        return net

    # -------------------------------------------------------------- #
    # Cover cones
    # -------------------------------------------------------------- #

    def _emit_plan(
        self, plan: list[PlanNode], prefix: str, output_net: Optional[str]
    ) -> str:
        node_nets: list[str] = []
        for index, node in enumerate(plan):
            is_root = index == len(plan) - 1
            if is_root and output_net is not None:
                net = output_net
            elif is_root:
                net = self._internal_net(prefix)
            else:
                net = self._internal_net(f"{prefix}__n{index}")
            pins: list[tuple[str, int]] = []
            pin_index: dict[str, int] = {}
            terms: list[tuple[tuple[int, int], ...]] = []
            for term in node.terms:
                resolved: list[tuple[int, int]] = []
                for operand in term:
                    if operand[0] == "var":
                        _, variable, polarity = operand
                        source = self._signal_net(variable)
                    else:
                        source = node_nets[operand[1]]
                        polarity = 1
                    position = pin_index.get(source)
                    if position is None:
                        position = len(pins)
                        pin_index[source] = position
                        pins.append((source, polarity))
                    resolved.append((position, polarity))
                terms.append(tuple(resolved))
            self._add_gate(
                node.cell,
                GateKind.SOP,
                tuple(name for name, _ in pins),
                net,
                tuple(terms),
                node.area,
            )
            node_nets.append(net)
        return node_nets[-1]

    def _emit_cover(
        self, cover: Cover, prefix: str, output_net: Optional[str] = None
    ) -> str:
        """Lower one cover to gates; returns the net carrying its value."""
        plan = self.library.plan_cover(cover)
        if not plan:
            return self._emit_const(0, output_net, prefix)
        return self._emit_plan(plan, prefix, output_net)

    def _or_join(self, nets: list[str], prefix: str) -> str:
        """Join nets with a balanced tree of 2-input ORs."""
        if not nets:
            return self._emit_const(0, None, prefix)
        if len(nets) == 1:
            return nets[0]
        counter = 0
        while len(nets) > 1:
            joined: list[str] = []
            for index in range(0, len(nets) - 1, 2):
                final = len(nets) == 2
                net = prefix if final else f"{prefix}_or{counter}"
                counter += 1
                out = self._internal_net(net)
                self._add_gate(
                    "or2",
                    GateKind.SOP,
                    (nets[index], nets[index + 1]),
                    out,
                    (((0, 1),), ((1, 1),)),
                    self.library.or2_area,
                )
                joined.append(out)
            if len(nets) % 2:
                joined.append(nets[-1])
            nets = joined
        return nets[0]

    # -------------------------------------------------------------- #
    # Memory elements
    # -------------------------------------------------------------- #

    def _emit_latch(self, signal: str, set_net: str, reset_net: str) -> None:
        if self.library.allow_latch:
            self._add_gate(
                "c-latch",
                GateKind.C_LATCH,
                (set_net, reset_net),
                signal,
                (),
                self.library.latch_area,
            )
            return
        # latch-free realization: q = set + q * reset'
        hold_cell = self.library.cheapest_and(2)
        hold_name, hold_area = (
            (hold_cell.name, hold_cell.area) if hold_cell else ("wide-and2", 6)
        )
        hold_net = self._internal_net(f"{signal}__hold")
        self._add_gate(
            hold_name,
            GateKind.SOP,
            (self._signal_net(signal), reset_net),
            hold_net,
            (((0, 1), (1, 0)),),
            hold_area,
        )
        self._add_gate(
            "or2",
            GateKind.SOP,
            (set_net, hold_net),
            signal,
            (((0, 1),), ((1, 1),)),
            self.library.or2_area,
        )

    @staticmethod
    def _gated_latch_shape(
        implementation: SignalImplementation,
    ) -> Optional[tuple[Cube, str, int]]:
        """(common cube, data variable, data polarity) for Appendix-D covers."""
        set_cover = implementation.set_cover
        reset_cover = implementation.reset_cover
        if len(set_cover) != 1 or len(reset_cover) != 1:
            return None
        set_cube = set_cover.cubes[0]
        reset_cube = reset_cover.cubes[0]
        if set_cube.support != reset_cube.support:
            return None
        if set_cube.distance(reset_cube) != 1:
            return None
        differing = [
            variable
            for variable, value in set_cube.literals.items()
            if reset_cube.value_of(variable) != value
        ]
        common = set_cube.supercube(reset_cube)
        return common, differing[0], set_cube[differing[0]]

    # -------------------------------------------------------------- #
    # Per-signal mapping
    # -------------------------------------------------------------- #

    def map_signal(self, implementation: SignalImplementation) -> tuple[int, list[str]]:
        """Lower one signal implementation; returns (area, cells used)."""
        start = len(self.netlist.gates)
        signal = implementation.signal
        if not implementation.uses_latch:
            self._emit_cover(implementation.set_cover, signal, output_net=signal)
        elif (
            implementation.architecture is Architecture.ER_ONE_HOT
            and implementation.region_covers
        ):
            rising: list[str] = []
            falling: list[str] = []
            for transition, cover in implementation.region_covers.items():
                region_net = self._emit_cover(
                    cover, f"{signal}__er_{_ident(transition)}"
                )
                (rising if "+" in transition else falling).append(region_net)
            set_net = self._or_join(rising, f"{signal}__set")
            reset_net = self._or_join(falling, f"{signal}__reset")
            self._emit_latch(signal, set_net, reset_net)
        else:
            shape = (
                self._gated_latch_shape(implementation)
                if implementation.architecture is Architecture.GATED_LATCH
                and self.library.allow_latch
                else None
            )
            if shape is not None:
                common, data_var, polarity = shape
                if common.is_universal():
                    enable_net = self._emit_const(1, None, f"{signal}__en")
                else:
                    enable_net = self._emit_cover(
                        Cover([common], implementation.set_cover.variables),
                        f"{signal}__en",
                    )
                self._add_gate(
                    "gated-latch",
                    GateKind.GATED_LATCH,
                    (enable_net, self._signal_net(data_var)),
                    signal,
                    (((1, polarity),),),
                    self.library.latch_area,
                )
            else:
                set_net = self._emit_cover(implementation.set_cover, f"{signal}__set")
                reset_net = self._emit_cover(
                    implementation.reset_cover, f"{signal}__reset"
                )
                self._emit_latch(signal, set_net, reset_net)
        new_gates = self.netlist.gates[start:]
        return sum(gate.area for gate in new_gates), [gate.cell for gate in new_gates]

    def finish(self) -> GateNetlist:
        self.netlist.inputs = tuple(self._inputs)
        self.netlist.outputs = tuple(self._outputs)
        self.netlist.validate()
        return self.netlist


def map_circuit(
    circuit: Circuit, library: Union[GateLibrary, str, None] = None
) -> MappingResult:
    """Map every signal network of a circuit onto the library.

    ``library`` may be a :class:`GateLibrary`, a built-in name
    (``generic-cmos``, ``two-input-only``, ``latch-free``), a path to a
    library JSON file, or ``None`` for the default.  The result carries the
    constructed :class:`~repro.gates.ir.GateNetlist` alongside the
    per-signal area report.
    """
    library = get_library(library)
    builder = _NetlistBuilder(circuit, library)
    total = 0
    per_signal: dict[str, int] = {}
    cells: dict[str, list[str]] = {}
    for implementation in circuit:
        area, used = builder.map_signal(implementation)
        per_signal[implementation.signal] = area
        cells[implementation.signal] = used
        total += area
    netlist = builder.finish()
    return MappingResult(
        circuit=circuit,
        total_area=total,
        per_signal_area=per_signal,
        cells_used=cells,
        netlist=netlist,
        library=library,
    )
