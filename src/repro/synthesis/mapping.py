"""Gate library and Boolean-matching technology mapping (Appendix F).

The paper maps the minimized signal networks onto a library of standard
cells, merging simple gates into complex gates (up to four inputs, e.g.
AOI22) when available.  The reproduction uses a generic CMOS-style library:
every cell is characterized by the largest SOP it can absorb (number of
product terms, literals per term, total literals) and an area in normalized
transistor units.  Mapping a cover means finding the cheapest set of cells
whose combined capacity absorbs it; covers too large for one cell are split
across cells term by term, with an OR tree in front of the latch.

This intentionally stops short of general logic decomposition, which the
paper also excludes ("it is not possible to apply a generalized decomposition
process ... due to the restrictive correctness conditions imposed by
speed-independent circuits").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.boolean.cover import Cover
from repro.synthesis.netlist import Circuit


@dataclass(frozen=True)
class LibraryCell:
    """One combinational cell of the gate library."""

    name: str
    max_terms: int
    max_literals_per_term: int
    max_total_literals: int
    area: int

    def fits(self, cover: Cover) -> bool:
        """True if the cover can be absorbed by one instance of the cell."""
        if len(cover) > self.max_terms:
            return False
        if cover.num_literals() > self.max_total_literals:
            return False
        return all(
            cube.num_literals() <= self.max_literals_per_term for cube in cover
        )


@dataclass
class GateLibrary:
    """An ordered collection of library cells (cheapest first)."""

    name: str
    cells: list[LibraryCell] = field(default_factory=list)
    #: area of the C-latch memory cell
    latch_area: int = 8
    #: area of a 2-input OR used to combine split covers
    or2_area: int = 6

    def cheapest_fit(self, cover: Cover) -> LibraryCell | None:
        """The cheapest cell absorbing the whole cover, if any."""
        candidates = [cell for cell in self.cells if cell.fits(cover)]
        if not candidates:
            return None
        return min(candidates, key=lambda cell: cell.area)

    def map_cover(self, cover: Cover) -> tuple[int, list[str]]:
        """Map a cover onto the library.

        Returns ``(area, cell_names)``.  If no single cell absorbs the cover
        it is split per product term (each term mapped to its cheapest cell)
        and the terms are combined with a tree of 2-input ORs.
        """
        if cover.is_empty():
            return 0, []
        single = self.cheapest_fit(cover)
        if single is not None:
            return single.area, [single.name]
        area = 0
        names: list[str] = []
        for cube in cover:
            term_cover = Cover([cube], cover.variables)
            cell = self.cheapest_fit(term_cover)
            if cell is None:
                # fall back to an area estimate proportional to the literals
                area += 2 * cube.num_literals() + 2
                names.append("wide-and")
            else:
                area += cell.area
                names.append(cell.name)
        # OR tree to combine the terms
        or_gates = max(len(cover) - 1, 0)
        area += or_gates * self.or2_area
        names.extend(["or2"] * or_gates)
        return area, names


def default_library() -> GateLibrary:
    """A generic CMOS-style library with complex gates up to four inputs."""
    cells = [
        LibraryCell("inv", max_terms=1, max_literals_per_term=1, max_total_literals=1, area=2),
        LibraryCell("and2", max_terms=1, max_literals_per_term=2, max_total_literals=2, area=6),
        LibraryCell("and3", max_terms=1, max_literals_per_term=3, max_total_literals=3, area=8),
        LibraryCell("and4", max_terms=1, max_literals_per_term=4, max_total_literals=4, area=10),
        LibraryCell("or2", max_terms=2, max_literals_per_term=1, max_total_literals=2, area=6),
        LibraryCell("aoi21", max_terms=2, max_literals_per_term=2, max_total_literals=3, area=8),
        LibraryCell("aoi22", max_terms=2, max_literals_per_term=2, max_total_literals=4, area=10),
        LibraryCell("aoi222", max_terms=3, max_literals_per_term=2, max_total_literals=6, area=14),
        LibraryCell("oai31", max_terms=2, max_literals_per_term=3, max_total_literals=4, area=10),
        LibraryCell("complex4x3", max_terms=4, max_literals_per_term=3, max_total_literals=12, area=22),
    ]
    return GateLibrary(name="generic-cmos", cells=cells, latch_area=8, or2_area=6)


@dataclass
class MappingResult:
    """Area report of a mapped circuit."""

    circuit: Circuit
    total_area: int
    per_signal_area: dict[str, int] = field(default_factory=dict)
    cells_used: dict[str, list[str]] = field(default_factory=dict)


def map_circuit(circuit: Circuit, library: GateLibrary | None = None) -> MappingResult:
    """Map every signal network of a circuit onto the library."""
    if library is None:
        library = default_library()
    total = 0
    per_signal: dict[str, int] = {}
    cells: dict[str, list[str]] = {}
    for implementation in circuit:
        area = 0
        used: list[str] = []
        covers = [implementation.set_cover]
        if implementation.uses_latch:
            covers.append(implementation.reset_cover)
        for cover in covers:
            cover_area, cover_cells = library.map_cover(cover)
            area += cover_area
            used.extend(cover_cells)
        if implementation.uses_latch:
            area += library.latch_area
            used.append("c-latch")
        per_signal[implementation.signal] = area
        cells[implementation.signal] = used
        total += area
    return MappingResult(
        circuit=circuit,
        total_area=total,
        per_signal_area=per_signal,
        cells_used=cells,
    )
