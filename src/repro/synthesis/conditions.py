"""Implementability conditions: cover correctness and monotonicity.

Correctness (equation (2)): the set function of a signal must cover the
binary codes of GER(a+) and avoid GER(a-) ∪ GQR(a=0); symmetrically for the
reset function.  For the per-excitation-region architecture the quiescent
region is replaced by the *restricted* quiescent region (equation (4)).

Monotonicity (Property 1 / Property 16): a correct cover may only switch
twice along any firing sequence.  Two checks are provided: the *structural*
check of Property 16 (using the next relation, the quiescent place sets and
the place cover functions — no reachability graph), and a *state-based*
oracle that walks the encoded reachability graph and verifies Property 1
directly (used by the verifier and by the tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.boolean.cover import Cover
from repro.statebased.regions import SignalRegions
from repro.stg.stg import STG
from repro.structural.approximation import SignalRegionApproximation


@dataclass
class ConditionReport:
    """Result of a correctness or monotonicity check."""

    satisfied: bool
    violations: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.satisfied


# ---------------------------------------------------------------------- #
# Correctness (equation (2) / (3))
# ---------------------------------------------------------------------- #


def check_cover_correctness(
    on_set: Cover,
    off_set: Cover,
    cover: Cover,
    what: str = "cover",
) -> ConditionReport:
    """Equation (2): ``on_set ⊆ cover`` and ``cover ∩ off_set = ∅``."""
    violations: list[str] = []
    if not cover.contains_cover(on_set):
        violations.append(f"{what} does not cover its excitation region")
    if cover.intersects_cover(off_set):
        violations.append(f"{what} intersects its off-set")
    return ConditionReport(not violations, violations)


def set_function_sets(
    regions: SignalRegionApproximation | SignalRegions,
    signal: str,
    restricted: bool = False,
) -> tuple[Cover, Cover]:
    """(on-set, off-set) covers for the set function of ``signal``.

    Works both with the structural approximation and with the exact
    state-based regions (which expose ``ger_codes``/``gqr_codes``).
    """
    if isinstance(regions, SignalRegionApproximation):
        on_set = regions.ger_cover(signal, "+")
        off_set = regions.ger_cover(signal, "-").union(
            regions.gqr_cover(signal, 0, restricted=restricted)
        )
    else:
        on_set = regions.ger_codes(signal, "+")
        off_set = regions.ger_codes(signal, "-").union(regions.gqr_codes(signal, 0))
    return on_set, off_set


def reset_function_sets(
    regions: SignalRegionApproximation | SignalRegions,
    signal: str,
    restricted: bool = False,
) -> tuple[Cover, Cover]:
    """(on-set, off-set) covers for the reset function of ``signal``."""
    if isinstance(regions, SignalRegionApproximation):
        on_set = regions.ger_cover(signal, "-")
        off_set = regions.ger_cover(signal, "+").union(
            regions.gqr_cover(signal, 1, restricted=restricted)
        )
    else:
        on_set = regions.ger_codes(signal, "-")
        off_set = regions.ger_codes(signal, "+").union(regions.gqr_codes(signal, 1))
    return on_set, off_set


# ---------------------------------------------------------------------- #
# Monotonicity — structural check (Property 16)
# ---------------------------------------------------------------------- #


def check_monotonicity_structural(
    approximation: SignalRegionApproximation,
    transition: str,
    cover: Cover,
) -> ConditionReport:
    """Property 16: the cover of a transition must not switch on again.

    Starting from the quiescent place set of the transition, the places are
    walked in topological (token-flow) order; once a place is found whose
    cover function is no longer intersected by ``cover`` (the cover has been
    turned off), the cover must not intersect the cover function of any place
    reachable strictly after it before the next transition of the signal.
    """
    stg = approximation.stg
    qps = approximation.qps.get(transition, set())
    if not qps:
        return ConditionReport(True)
    net = stg.net
    signal = stg.signal_of(transition)
    violations: list[str] = []

    # Walk forward from the transition through its QPS; record, along every
    # path, whether the cover was already off at some earlier place.
    from collections import deque

    # state: (node, cover_was_off)
    frontier: deque[tuple[str, bool]] = deque()
    for place in net.postset(transition):
        frontier.append((place, False))
    visited: set[tuple[str, bool]] = set()
    while frontier:
        node, was_off = frontier.popleft()
        if (node, was_off) in visited:
            continue
        visited.add((node, was_off))
        if net.is_transition(node):
            if stg.signal_of(node) == signal:
                continue
            for successor in net.postset(node):
                frontier.append((successor, was_off))
            continue
        # node is a place
        if node not in qps:
            continue
        intersects = cover.intersects_cover(approximation.place_cover(node))
        if was_off and intersects:
            violations.append(
                f"cover of {transition} switches on again at place {node}"
            )
            continue
        next_off = was_off or not intersects
        for successor in net.postset(node):
            frontier.append((successor, next_off))
    return ConditionReport(not violations, violations)


# ---------------------------------------------------------------------- #
# Monotonicity — state-based oracle (Property 1)
# ---------------------------------------------------------------------- #


def check_monotonicity_state_based(
    stg: STG,
    regions: SignalRegions,
    signal: str,
    cover: Cover,
    direction: str,
) -> ConditionReport:
    """Property 1 checked on the exact regions.

    For a set function (``direction == '+'``): if the cover is on at a
    marking of GQR(signal=1), it must stay on at every predecessor marking of
    that marking inside GQR(signal=1) — i.e. the cover may fall at most once
    inside the quiescent region and never rise again.  The formulation below
    follows the paper: for every marking of the generalized quiescent region
    whose code is covered, the codes of all *previous* markings of the region
    along any path from the excitation region must be covered too.
    """
    value = 1 if direction == "+" else 0
    quiescent = regions.gqr_bits(signal, value)
    excitation = regions.ger_bits(signal, direction)
    encoded = regions.encoded
    indexed = encoded.indexed()
    pred = indexed.pred
    codes = encoded.packed_codes
    cube_masks = [(cube.care_mask, cube.value_mask) for cube in cover]
    violations: list[str] = []
    region = quiescent | excitation
    pending = quiescent
    while pending:
        low = pending & -pending
        pending ^= low
        state = low.bit_length() - 1
        code = codes[state]
        if not any(code & care == val for care, val in cube_masks):
            continue
        # every predecessor inside the region must also be covered
        for _, source in pred[state]:
            source_bit = 1 << source
            if not region & source_bit:
                continue
            if excitation & source_bit:
                continue
            source_code = codes[source]
            if not any(source_code & care == val for care, val in cube_masks):
                violations.append(
                    f"{signal}{direction}: cover rises again inside the "
                    f"quiescent region at {indexed.marking_list[state]}"
                )
                break
    return ConditionReport(not violations, violations)
