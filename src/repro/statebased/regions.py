"""Exact signal regions computed from the encoded reachability graph.

Implements the region definitions of Section II-C as explicit sets of
reachable markings:

* ``ER(t)`` — excitation region: markings enabling transition ``t``;
* ``QR(t)`` — quiescent region: maximal set of markings reached from
  ``ER(t)`` after firing ``t`` without enabling any other transition of the
  same signal;
* ``RQR(t)`` — restricted quiescent region: ``QR(t)`` minus markings shared
  with other quiescent regions of the signal (used by the per-excitation-
  region architecture, equation (4));
* ``BR(t)`` — backward quiescent region (Appendix E): maximal set of
  markings that can reach ``ER(t)`` without enabling any other transition of
  the same signal;
* generalized regions ``GER`` / ``GQR`` as unions over a signal's
  transitions.

Each region can be converted to a cover of binary codes with
:meth:`SignalRegions.codes_of`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.boolean.cover import Cover
from repro.petri.marking import Marking
from repro.stg.encoding import EncodedReachabilityGraph, encode_reachability_graph
from repro.stg.stg import STG


@dataclass
class SignalRegions:
    """All signal regions of one STG, computed state-based."""

    stg: STG
    encoded: EncodedReachabilityGraph
    excitation: dict[str, set[Marking]] = field(default_factory=dict)
    quiescent: dict[str, set[Marking]] = field(default_factory=dict)
    restricted_quiescent: dict[str, set[Marking]] = field(default_factory=dict)
    backward: dict[str, set[Marking]] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Region accessors
    # ------------------------------------------------------------------ #

    def er(self, transition: str) -> set[Marking]:
        """Excitation region of a transition."""
        return set(self.excitation[transition])

    def qr(self, transition: str) -> set[Marking]:
        """Quiescent region of a transition."""
        return set(self.quiescent[transition])

    def rqr(self, transition: str) -> set[Marking]:
        """Restricted quiescent region of a transition."""
        return set(self.restricted_quiescent[transition])

    def br(self, transition: str) -> set[Marking]:
        """Backward quiescent region of a transition."""
        return set(self.backward[transition])

    def ger(self, signal: str, direction: str) -> set[Marking]:
        """Generalized excitation region GER(signal direction)."""
        result: set[Marking] = set()
        for transition in self.stg.transitions_by_direction(signal, direction):
            result |= self.excitation[transition]
        return result

    def gqr(self, signal: str, value: int) -> set[Marking]:
        """Generalized quiescent region GQR(signal = value).

        ``value=1`` is the union of the quiescent regions of the rising
        transitions, ``value=0`` of the falling transitions.
        """
        direction = "+" if value == 1 else "-"
        result: set[Marking] = set()
        for transition in self.stg.transitions_by_direction(signal, direction):
            result |= self.quiescent[transition]
        return result

    # ------------------------------------------------------------------ #
    # Binary-code conversions
    # ------------------------------------------------------------------ #

    def codes_of(self, markings: set[Marking]) -> Cover:
        """Characteristic cover (set of minterms) of a set of markings."""
        signals = self.stg.signal_names
        vertices = [self.encoded.code_of(m) for m in markings]
        return Cover.from_vertices(vertices, signals)

    def er_codes(self, transition: str) -> Cover:
        """Binary codes of ER(t)."""
        return self.codes_of(self.excitation[transition])

    def qr_codes(self, transition: str) -> Cover:
        """Binary codes of QR(t)."""
        return self.codes_of(self.quiescent[transition])

    def ger_codes(self, signal: str, direction: str) -> Cover:
        """Binary codes of GER(signal direction)."""
        return self.codes_of(self.ger(signal, direction))

    def gqr_codes(self, signal: str, value: int) -> Cover:
        """Binary codes of GQR(signal = value)."""
        return self.codes_of(self.gqr(signal, value))

    def dc_codes(self) -> Cover:
        """Binary codes NOT used by any reachable marking (the RG dc-set)."""
        signals = self.stg.signal_names
        used = self.codes_of(set(self.encoded.markings))
        return Cover.universe(signals).sharp(used)


def _quiescent_region(
    stg: STG,
    encoded: EncodedReachabilityGraph,
    transition: str,
) -> set[Marking]:
    """Forward closure from the post-firing markings of a transition,
    stopping at markings that enable another transition of the signal."""
    graph = encoded.graph
    signal = stg.signal_of(transition)
    signal_transitions = set(stg.transitions_of_signal(stg.signal_of(transition)))
    start_markings: list[Marking] = []
    for marking in graph.markings_enabling(transition):
        for label, target in graph.successors(marking):
            if label == transition:
                start_markings.append(target)
    region: set[Marking] = set()
    frontier: deque[Marking] = deque()
    for marking in start_markings:
        enabled = graph.enabled_transitions(marking)
        if enabled & signal_transitions:
            continue
        if marking not in region:
            region.add(marking)
            frontier.append(marking)
    while frontier:
        current = frontier.popleft()
        for label, target in graph.successors(current):
            if target in region:
                continue
            enabled = graph.enabled_transitions(target)
            if enabled & signal_transitions:
                continue
            region.add(target)
            frontier.append(target)
    del signal  # kept for readability of the derivation above
    return region


def _backward_region(
    stg: STG,
    encoded: EncodedReachabilityGraph,
    transition: str,
) -> set[Marking]:
    """Backward closure from ER(t), stopping at markings that enable another
    transition of the signal (Appendix E)."""
    graph = encoded.graph
    signal_transitions = set(stg.transitions_of_signal(stg.signal_of(transition)))
    other_transitions = signal_transitions - {transition}
    excitation = set(graph.markings_enabling(transition))
    region: set[Marking] = set()
    frontier: deque[Marking] = deque(excitation)
    seen: set[Marking] = set(excitation)
    while frontier:
        current = frontier.popleft()
        for label, source in graph.predecessors(current):
            if source in seen:
                continue
            enabled = graph.enabled_transitions(source)
            if enabled & other_transitions:
                continue
            if transition in enabled:
                # still inside the excitation region; keep walking backwards
                seen.add(source)
                frontier.append(source)
                continue
            seen.add(source)
            region.add(source)
            frontier.append(source)
    return region


def compute_signal_regions(
    stg: STG,
    encoded: Optional[EncodedReachabilityGraph] = None,
    signals: Optional[list[str]] = None,
    compute_backward: bool = True,
) -> SignalRegions:
    """Compute all signal regions of an STG from its reachability graph."""
    if encoded is None:
        encoded = encode_reachability_graph(stg)
    graph = encoded.graph
    regions = SignalRegions(stg=stg, encoded=encoded)
    selected_signals = set(signals) if signals is not None else set(stg.signal_names)

    for transition in stg.transitions:
        if stg.signal_of(transition) not in selected_signals:
            continue
        regions.excitation[transition] = set(graph.markings_enabling(transition))
        regions.quiescent[transition] = _quiescent_region(stg, encoded, transition)
        if compute_backward:
            regions.backward[transition] = _backward_region(stg, encoded, transition)
        else:
            regions.backward[transition] = set()

    # Restricted quiescent regions: remove markings shared with other QRs of
    # the same signal.
    for transition in list(regions.quiescent):
        signal = stg.signal_of(transition)
        others: set[Marking] = set()
        for other in stg.transitions_of_signal(signal):
            if other == transition or other not in regions.quiescent:
                continue
            others |= regions.quiescent[other]
        regions.restricted_quiescent[transition] = regions.quiescent[transition] - others
    return regions
