"""Exact signal regions computed from the encoded reachability graph.

Implements the region definitions of Section II-C:

* ``ER(t)`` — excitation region: markings enabling transition ``t``;
* ``QR(t)`` — quiescent region: maximal set of markings reached from
  ``ER(t)`` after firing ``t`` without enabling any other transition of the
  same signal;
* ``RQR(t)`` — restricted quiescent region: ``QR(t)`` minus markings shared
  with other quiescent regions of the signal (used by the per-excitation-
  region architecture, equation (4));
* ``BR(t)`` — backward quiescent region (Appendix E): maximal set of
  markings that can reach ``ER(t)`` without enabling any other transition of
  the same signal;
* generalized regions ``GER`` / ``GQR`` as unions over a signal's
  transitions.

Representation: every region is a *bitset over state indices* (one int per
region, bit ``i`` set iff state ``i`` of the encoded reachability graph
belongs to the region).  Region algebra — unions for the generalized
regions, the RQR subtraction, the membership tests of the next-state
functions — is mask and/or/and-not arithmetic, and the closures that build
QR/BR walk the indexed adjacency of the graph guarded by per-signal
transition masks.  The historical set-of-:class:`Marking` accessors
(:meth:`SignalRegions.er` …) are retained as boundary shims that materialise
fresh sets on demand; the dict-based closure algorithms are retained as
``_reference_*`` oracles for the differential tests.

Each region converts to a cover of binary codes with
:meth:`SignalRegions.codes_of`, which emits packed minterm cubes straight
from the per-state code ints.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional, Union

from repro.boolean.cover import Cover
from repro.petri.marking import Marking
from repro.stg.encoding import EncodedReachabilityGraph, encode_reachability_graph
from repro.stg.stg import STG

RegionLike = Union[int, Iterable[Marking]]


class SignalRegions:
    """All signal regions of one STG, computed state-based.

    Internally every region is one int (a bitset over state indices); use
    the ``*_bits`` accessors in hot loops and the name-based accessors at
    API boundaries.
    """

    __slots__ = (
        "stg",
        "encoded",
        "_er",
        "_qr",
        "_rqr",
        "_br",
        "_ger_cache",
        "_gqr_cache",
    )

    def __init__(self, stg: STG, encoded: EncodedReachabilityGraph):
        self.stg = stg
        self.encoded = encoded
        self._er: dict[str, int] = {}
        self._qr: dict[str, int] = {}
        self._rqr: dict[str, int] = {}
        self._br: dict[str, int] = {}
        self._ger_cache: dict[tuple[str, str], int] = {}
        self._gqr_cache: dict[tuple[str, int], int] = {}

    # ------------------------------------------------------------------ #
    # Bitset accessors (non-copying)
    # ------------------------------------------------------------------ #

    def er_bits(self, transition: str) -> int:
        """Excitation region of a transition as a state-index bitset."""
        return self._er[transition]

    def qr_bits(self, transition: str) -> int:
        """Quiescent region bitset."""
        return self._qr[transition]

    def rqr_bits(self, transition: str) -> int:
        """Restricted quiescent region bitset."""
        return self._rqr[transition]

    def br_bits(self, transition: str) -> int:
        """Backward quiescent region bitset."""
        return self._br[transition]

    def ger_bits(self, signal: str, direction: str) -> int:
        """Generalized excitation region bitset (cached union).

        Raises ``KeyError`` for signals excluded from the computation
        (mirroring the historical dict-of-sets accessors).
        """
        key = (signal, direction)
        bits = self._ger_cache.get(key)
        if bits is None:
            bits = 0
            for transition in self.stg.transitions_by_direction(signal, direction):
                bits |= self._er[transition]
            self._ger_cache[key] = bits
        return bits

    def gqr_bits(self, signal: str, value: int) -> int:
        """Generalized quiescent region bitset (cached union).

        Raises ``KeyError`` for signals excluded from the computation.
        """
        key = (signal, value)
        bits = self._gqr_cache.get(key)
        if bits is None:
            direction = "+" if value == 1 else "-"
            bits = 0
            for transition in self.stg.transitions_by_direction(signal, direction):
                bits |= self._qr[transition]
            self._gqr_cache[key] = bits
        return bits

    # ------------------------------------------------------------------ #
    # Name-based region accessors (boundary shims; fresh sets)
    # ------------------------------------------------------------------ #

    def er(self, transition: str) -> set[Marking]:
        """Excitation region of a transition."""
        return self.encoded.markings_of_bits(self._er[transition])

    def qr(self, transition: str) -> set[Marking]:
        """Quiescent region of a transition."""
        return self.encoded.markings_of_bits(self._qr[transition])

    def rqr(self, transition: str) -> set[Marking]:
        """Restricted quiescent region of a transition."""
        return self.encoded.markings_of_bits(self._rqr[transition])

    def br(self, transition: str) -> set[Marking]:
        """Backward quiescent region of a transition."""
        return self.encoded.markings_of_bits(self._br[transition])

    def ger(self, signal: str, direction: str) -> set[Marking]:
        """Generalized excitation region GER(signal direction)."""
        return self.encoded.markings_of_bits(self.ger_bits(signal, direction))

    def gqr(self, signal: str, value: int) -> set[Marking]:
        """Generalized quiescent region GQR(signal = value).

        ``value=1`` is the union of the quiescent regions of the rising
        transitions, ``value=0`` of the falling transitions.
        """
        return self.encoded.markings_of_bits(self.gqr_bits(signal, value))

    @property
    def excitation(self) -> dict[str, set[Marking]]:
        """Materialised ER map (copies; kept for API compatibility)."""
        return {t: self.er(t) for t in self._er}

    @property
    def quiescent(self) -> dict[str, set[Marking]]:
        """Materialised QR map (copies)."""
        return {t: self.qr(t) for t in self._qr}

    @property
    def restricted_quiescent(self) -> dict[str, set[Marking]]:
        """Materialised RQR map (copies)."""
        return {t: self.rqr(t) for t in self._rqr}

    @property
    def backward(self) -> dict[str, set[Marking]]:
        """Materialised BR map (copies)."""
        return {t: self.br(t) for t in self._br}

    # ------------------------------------------------------------------ #
    # Binary-code conversions
    # ------------------------------------------------------------------ #

    def codes_of(self, markings: RegionLike) -> Cover:
        """Characteristic cover of a region (bitset or marking collection)."""
        if isinstance(markings, int):
            bits = markings
        else:
            bits = self.encoded.bits_of(markings)
        return self.encoded.cover_of_bits(bits)

    def er_codes(self, transition: str) -> Cover:
        """Binary codes of ER(t)."""
        return self.encoded.cover_of_bits(self._er[transition])

    def qr_codes(self, transition: str) -> Cover:
        """Binary codes of QR(t)."""
        return self.encoded.cover_of_bits(self._qr[transition])

    def ger_codes(self, signal: str, direction: str) -> Cover:
        """Binary codes of GER(signal direction)."""
        return self.encoded.cover_of_bits(self.ger_bits(signal, direction))

    def gqr_codes(self, signal: str, value: int) -> Cover:
        """Binary codes of GQR(signal = value)."""
        return self.encoded.cover_of_bits(self.gqr_bits(signal, value))

    def used_code_set(self) -> set[int]:
        """Distinct packed codes of all reachable markings."""
        return set(self.encoded.packed_codes)

    def code_set(self, bits: int) -> set[int]:
        """Distinct packed codes of a state-index bitset."""
        return self.encoded.code_set_of_bits(bits)

    def dc_codes(self) -> Cover:
        """Binary codes NOT used by any reachable marking (the RG dc-set).

        Computed as the direct orthogonal complement of the used code set —
        the same minterm semantics as ``universe.sharp(used_codes)`` at a
        fraction of the cost.
        """
        return self.encoded.complement_cover_of_codes(self.used_code_set())


def compute_signal_regions(
    stg: STG,
    encoded: Optional[EncodedReachabilityGraph] = None,
    signals: Optional[list[str]] = None,
    compute_backward: bool = True,
) -> SignalRegions:
    """Compute all signal regions of an STG from its reachability graph.

    Works entirely in index space: excitation regions fall out of the
    per-state enabled masks, QR/BR are bitset closures over the indexed
    adjacency, and RQR is a mask subtraction.
    """
    if encoded is None:
        encoded = encode_reachability_graph(stg)
    indexed = encoded.indexed()
    regions = SignalRegions(stg, encoded)
    selected_signals = set(signals) if signals is not None else set(stg.signal_names)

    tindex = indexed.transition_index
    enabled = indexed.enabled
    succ = indexed.succ
    pred = indexed.pred

    signal_tmask = indexed.signal_transition_masks(stg)

    # ER(t) for every transition of the selected signals, in one sweep over
    # the enabled masks.
    selected_tbits = 0
    for signal in selected_signals:
        selected_tbits |= signal_tmask.get(signal, 0)
    er_by_index: dict[int, int] = {}
    for i, mask in enumerate(enabled):
        mask &= selected_tbits
        state_bit = 1 << i
        while mask:
            low = mask & -mask
            mask ^= low
            t = low.bit_length() - 1
            er_by_index[t] = er_by_index.get(t, 0) | state_bit

    # Post-firing start states per transition (edge targets).
    targets_by_index: dict[int, list[int]] = {}
    for _, t, target in indexed.edges:
        if selected_tbits >> t & 1:
            targets_by_index.setdefault(t, []).append(target)

    for transition in stg.transitions:
        signal = stg.signal_of(transition)
        if signal not in selected_signals:
            continue
        t = tindex.get(transition)
        if t is None:
            regions._er[transition] = 0
            regions._qr[transition] = 0
            regions._br[transition] = 0
            continue
        sig_mask = signal_tmask[signal]
        regions._er[transition] = er_by_index.get(t, 0)

        # QR(t): forward closure from the post-firing states, stopping at
        # states that enable another transition of the signal.
        region = 0
        stack: list[int] = []
        for start in targets_by_index.get(t, ()):
            if enabled[start] & sig_mask:
                continue
            bit = 1 << start
            if not region & bit:
                region |= bit
                stack.append(start)
        while stack:
            current = stack.pop()
            for _, target in succ[current]:
                bit = 1 << target
                if region & bit:
                    continue
                if enabled[target] & sig_mask:
                    continue
                region |= bit
                stack.append(target)
        regions._qr[transition] = region

        # BR(t): backward closure from ER(t), stopping at states that enable
        # another transition of the signal (Appendix E).
        if compute_backward:
            other_mask = sig_mask & ~(1 << t)
            excitation = regions._er[transition]
            seen = excitation
            region = 0
            stack = []
            bits = excitation
            while bits:
                low = bits & -bits
                bits ^= low
                stack.append(low.bit_length() - 1)
            while stack:
                current = stack.pop()
                for _, source in pred[current]:
                    bit = 1 << source
                    if seen & bit:
                        continue
                    source_enabled = enabled[source]
                    if source_enabled & other_mask:
                        continue
                    seen |= bit
                    stack.append(source)
                    if not source_enabled >> t & 1:
                        region |= bit
            regions._br[transition] = region
        else:
            regions._br[transition] = 0

    # Restricted quiescent regions: remove states shared with other QRs of
    # the same signal.
    for transition, quiescent in regions._qr.items():
        signal = stg.signal_of(transition)
        others = 0
        for other in stg.transitions_of_signal(signal):
            if other != transition and other in regions._qr:
                others |= regions._qr[other]
        regions._rqr[transition] = quiescent & ~others
    return regions


# ---------------------------------------------------------------------- #
# Dict/set-based reference implementations (differential-test oracles)
# ---------------------------------------------------------------------- #


def _reference_quiescent_region(
    stg: STG,
    encoded: EncodedReachabilityGraph,
    transition: str,
) -> set[Marking]:
    """Forward closure from the post-firing markings of a transition,
    stopping at markings that enable another transition of the signal."""
    graph = encoded.graph
    signal_transitions = set(stg.transitions_of_signal(stg.signal_of(transition)))
    start_markings: list[Marking] = []
    for marking in graph.markings_enabling(transition):
        for label, target in graph.successors(marking):
            if label == transition:
                start_markings.append(target)
    region: set[Marking] = set()
    frontier: deque[Marking] = deque()
    for marking in start_markings:
        enabled = graph.enabled_transitions(marking)
        if enabled & signal_transitions:
            continue
        if marking not in region:
            region.add(marking)
            frontier.append(marking)
    while frontier:
        current = frontier.popleft()
        for label, target in graph.successors(current):
            if target in region:
                continue
            enabled = graph.enabled_transitions(target)
            if enabled & signal_transitions:
                continue
            region.add(target)
            frontier.append(target)
    return region


def _reference_backward_region(
    stg: STG,
    encoded: EncodedReachabilityGraph,
    transition: str,
) -> set[Marking]:
    """Backward closure from ER(t), stopping at markings that enable another
    transition of the signal (Appendix E)."""
    graph = encoded.graph
    signal_transitions = set(stg.transitions_of_signal(stg.signal_of(transition)))
    other_transitions = signal_transitions - {transition}
    excitation = set(graph.markings_enabling(transition))
    region: set[Marking] = set()
    frontier: deque[Marking] = deque(excitation)
    seen: set[Marking] = set(excitation)
    while frontier:
        current = frontier.popleft()
        for label, source in graph.predecessors(current):
            if source in seen:
                continue
            enabled = graph.enabled_transitions(source)
            if enabled & other_transitions:
                continue
            if transition in enabled:
                # still inside the excitation region; keep walking backwards
                seen.add(source)
                frontier.append(source)
                continue
            seen.add(source)
            region.add(source)
            frontier.append(source)
    return region


def _reference_signal_region_sets(
    stg: STG,
    encoded: EncodedReachabilityGraph,
    signals: Optional[list[str]] = None,
    compute_backward: bool = True,
) -> dict[str, dict[str, set[Marking]]]:
    """Reference region computation as plain dicts of marking sets."""
    graph = encoded.graph
    selected = set(signals) if signals is not None else set(stg.signal_names)
    er: dict[str, set[Marking]] = {}
    qr: dict[str, set[Marking]] = {}
    br: dict[str, set[Marking]] = {}
    for transition in stg.transitions:
        if stg.signal_of(transition) not in selected:
            continue
        er[transition] = set(graph.markings_enabling(transition))
        qr[transition] = _reference_quiescent_region(stg, encoded, transition)
        br[transition] = (
            _reference_backward_region(stg, encoded, transition)
            if compute_backward
            else set()
        )
    rqr: dict[str, set[Marking]] = {}
    for transition in list(qr):
        signal = stg.signal_of(transition)
        others: set[Marking] = set()
        for other in stg.transitions_of_signal(signal):
            if other == transition or other not in qr:
                continue
            others |= qr[other]
        rqr[transition] = qr[transition] - others
    return {"er": er, "qr": qr, "rqr": rqr, "br": br}
