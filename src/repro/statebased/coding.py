"""State coding checks (USC and CSC) on the encoded reachability graph.

The unique state coding (USC) property requires every reachable marking to
carry a distinct binary code; the weaker complete state coding (CSC) property
allows markings to share a code only when the *output* signals enabled at
them coincide (Section II-D).  CSC is the condition required for the
existence of a consistent next-state function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.petri.marking import Marking
from repro.stg.encoding import EncodedReachabilityGraph, encode_reachability_graph
from repro.stg.stg import STG


@dataclass
class CodingConflict:
    """A pair of markings sharing the same binary code."""

    code: tuple[int, ...]
    first: Marking
    second: Marking
    conflicting_signals: frozenset[str] = frozenset()

    @property
    def is_csc_conflict(self) -> bool:
        """True if the shared code also disagrees on enabled output signals."""
        return bool(self.conflicting_signals)


@dataclass
class CodingReport:
    """Result of the USC/CSC analysis."""

    satisfies_usc: bool
    satisfies_csc: bool
    usc_conflicts: list[CodingConflict] = field(default_factory=list)
    csc_conflicts: list[CodingConflict] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.satisfies_csc


def _enabled_output_signals(
    stg: STG, encoded: EncodedReachabilityGraph, marking: Marking
) -> frozenset[str]:
    return frozenset(
        stg.signal_of(t)
        for t in encoded.graph.enabled_transitions(marking)
        if not stg.is_input(stg.signal_of(t))
    )


def analyze_state_coding(
    stg: STG,
    encoded: Optional[EncodedReachabilityGraph] = None,
) -> CodingReport:
    """Full USC/CSC analysis by grouping markings by binary code."""
    if encoded is None:
        encoded = encode_reachability_graph(stg)
    order = stg.signal_names
    by_code: dict[tuple[int, ...], list[Marking]] = {}
    for marking in encoded.markings:
        code = tuple(encoded.code_of(marking)[s] for s in order)
        by_code.setdefault(code, []).append(marking)

    usc_conflicts: list[CodingConflict] = []
    csc_conflicts: list[CodingConflict] = []
    for code, markings in by_code.items():
        if len(markings) < 2:
            continue
        outputs = [
            _enabled_output_signals(stg, encoded, marking) for marking in markings
        ]
        for i in range(len(markings)):
            for j in range(i + 1, len(markings)):
                difference = outputs[i] ^ outputs[j]
                conflict = CodingConflict(
                    code=code,
                    first=markings[i],
                    second=markings[j],
                    conflicting_signals=frozenset(difference),
                )
                usc_conflicts.append(conflict)
                if difference:
                    csc_conflicts.append(conflict)
    return CodingReport(
        satisfies_usc=not usc_conflicts,
        satisfies_csc=not csc_conflicts,
        usc_conflicts=usc_conflicts,
        csc_conflicts=csc_conflicts,
    )


def check_usc(stg: STG, encoded: Optional[EncodedReachabilityGraph] = None) -> bool:
    """True if every reachable marking has a unique binary code."""
    return analyze_state_coding(stg, encoded).satisfies_usc


def check_csc(stg: STG, encoded: Optional[EncodedReachabilityGraph] = None) -> bool:
    """True if markings sharing a code enable the same output signals."""
    return analyze_state_coding(stg, encoded).satisfies_csc
