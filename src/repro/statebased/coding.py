"""State coding checks (USC and CSC) on the encoded reachability graph.

The unique state coding (USC) property requires every reachable marking to
carry a distinct binary code; the weaker complete state coding (CSC) property
allows markings to share a code only when the *output* signals enabled at
them coincide (Section II-D).  CSC is the condition required for the
existence of a consistent next-state function.

The analysis runs on the packed representation: states are grouped by their
code *ints*, and the enabled-output-signal set of a state is a bitmask
derived from its enabled-transition mask through a per-transition lookup
(memoised per distinct enabled mask — enabled masks repeat heavily across a
reachability graph).  The dict-based pass is retained as
:func:`_reference_analyze_state_coding`, the differential-test oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.petri.marking import Marking
from repro.stg.encoding import EncodedReachabilityGraph, encode_reachability_graph
from repro.stg.stg import STG


@dataclass
class CodingConflict:
    """A pair of markings sharing the same binary code."""

    code: tuple[int, ...]
    first: Marking
    second: Marking
    conflicting_signals: frozenset[str] = frozenset()

    @property
    def is_csc_conflict(self) -> bool:
        """True if the shared code also disagrees on enabled output signals."""
        return bool(self.conflicting_signals)


@dataclass
class CodingReport:
    """Result of the USC/CSC analysis."""

    satisfies_usc: bool
    satisfies_csc: bool
    usc_conflicts: list[CodingConflict] = field(default_factory=list)
    csc_conflicts: list[CodingConflict] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.satisfies_csc


def _enabled_output_signals(
    stg: STG, encoded: EncodedReachabilityGraph, marking: Marking
) -> frozenset[str]:
    return frozenset(
        stg.signal_of(t)
        for t in encoded.graph.enabled_transitions(marking)
        if not stg.is_input(stg.signal_of(t))
    )


def analyze_state_coding(
    stg: STG,
    encoded: Optional[EncodedReachabilityGraph] = None,
) -> CodingReport:
    """Full USC/CSC analysis by grouping states by packed binary code."""
    if encoded is None:
        encoded = encode_reachability_graph(stg)
    indexed = encoded.indexed()
    order = stg.signal_names
    signal_pos = {signal: i for i, signal in enumerate(order)}

    # transition index -> output-signal bit (0 for input-signal transitions)
    out_bit = []
    for name in indexed.transition_names:
        signal = stg.signal_of(name)
        out_bit.append(
            0 if stg.is_input(signal) else 1 << signal_pos[signal]
        )

    packed = encoded.packed_codes
    by_code: dict[int, list[int]] = {}
    for index, code in enumerate(packed):
        by_code.setdefault(code, []).append(index)

    enabled = indexed.enabled
    outputs_of_mask: dict[int, int] = {}

    def output_signature(state: int) -> int:
        mask = enabled[state]
        signature = outputs_of_mask.get(mask)
        if signature is None:
            signature = 0
            pending = mask
            while pending:
                low = pending & -pending
                pending ^= low
                signature |= out_bit[low.bit_length() - 1]
            outputs_of_mask[mask] = signature
        return signature

    bit_of = [1 << signal_pos[s] for s in order]
    usc_conflicts: list[CodingConflict] = []
    csc_conflicts: list[CodingConflict] = []
    for code, states in by_code.items():
        if len(states) < 2:
            continue
        # conflicts are the rare case; only they materialize Marking objects
        marking_list = indexed.marking_list
        code_tuple = tuple(encoded.code_dict_of_int(code)[s] for s in order)
        signatures = [output_signature(state) for state in states]
        for i in range(len(states)):
            for j in range(i + 1, len(states)):
                difference = signatures[i] ^ signatures[j]
                conflict = CodingConflict(
                    code=code_tuple,
                    first=marking_list[states[i]],
                    second=marking_list[states[j]],
                    conflicting_signals=frozenset(
                        signal
                        for signal, bit in zip(order, bit_of)
                        if difference & bit
                    ),
                )
                usc_conflicts.append(conflict)
                if difference:
                    csc_conflicts.append(conflict)
    return CodingReport(
        satisfies_usc=not usc_conflicts,
        satisfies_csc=not csc_conflicts,
        usc_conflicts=usc_conflicts,
        csc_conflicts=csc_conflicts,
    )


def check_usc(stg: STG, encoded: Optional[EncodedReachabilityGraph] = None) -> bool:
    """True if every reachable marking has a unique binary code."""
    return analyze_state_coding(stg, encoded).satisfies_usc


def check_csc(stg: STG, encoded: Optional[EncodedReachabilityGraph] = None) -> bool:
    """True if markings sharing a code enable the same output signals."""
    return analyze_state_coding(stg, encoded).satisfies_csc


# ---------------------------------------------------------------------- #
# Dict-based reference implementation (differential-test oracle)
# ---------------------------------------------------------------------- #


def _reference_analyze_state_coding(
    stg: STG,
    encoded: Optional[EncodedReachabilityGraph] = None,
) -> CodingReport:
    """Reference USC/CSC analysis over dict codes and name sets."""
    if encoded is None:
        encoded = encode_reachability_graph(stg)
    order = stg.signal_names
    by_code: dict[tuple[int, ...], list[Marking]] = {}
    for marking in encoded.markings:
        code = tuple(encoded.code_of(marking)[s] for s in order)
        by_code.setdefault(code, []).append(marking)

    usc_conflicts: list[CodingConflict] = []
    csc_conflicts: list[CodingConflict] = []
    for code, markings in by_code.items():
        if len(markings) < 2:
            continue
        outputs = [
            _enabled_output_signals(stg, encoded, marking) for marking in markings
        ]
        for i in range(len(markings)):
            for j in range(i + 1, len(markings)):
                difference = outputs[i] ^ outputs[j]
                conflict = CodingConflict(
                    code=code,
                    first=markings[i],
                    second=markings[j],
                    conflicting_signals=frozenset(difference),
                )
                usc_conflicts.append(conflict)
                if difference:
                    csc_conflicts.append(conflict)
    return CodingReport(
        satisfies_usc=not usc_conflicts,
        satisfies_csc=not csc_conflicts,
        usc_conflicts=usc_conflicts,
        csc_conflicts=csc_conflicts,
    )
