"""State-based (exhaustive) analysis and synthesis engine.

This package performs the explicit token-flow analysis that the structural
methods of the paper avoid: exact signal regions (ER/QR/GER/GQR) as sets of
reachable markings, USC/CSC checks by code comparison, next-state functions,
and an exhaustive synthesis baseline in the style of SIS/ASSASSIN.  It serves
two purposes in the reproduction:

* oracle — every structural result is validated against it on small and
  medium STGs;
* baseline — the CPU-time and area comparisons of Tables V–VII compare the
  structural flow against this engine.
"""

from repro.statebased.regions import SignalRegions, compute_signal_regions
from repro.statebased.coding import CodingReport, check_usc, check_csc
from repro.statebased.nextstate import next_state_function, next_state_functions

__all__ = [
    "SignalRegions",
    "compute_signal_regions",
    "CodingReport",
    "check_usc",
    "check_csc",
    "next_state_function",
    "next_state_functions",
]
