"""Next-state functions derived from exact signal regions.

The next-state function of an output signal ``a`` (Section II-E) maps every
binary code to:

* 1 on ``GER(a+) ∪ GQR(a=1)``,
* 0 on ``GER(a-) ∪ GQR(a=0)``,
* don't-care elsewhere (unreachable codes).

For a consistent STG satisfying CSC, the three sets are a consistent
partition of the Boolean space (no code is claimed both 0 and 1).
"""

from __future__ import annotations

from typing import Optional

from repro.boolean.cover import Cover
from repro.boolean.function import BooleanFunction
from repro.statebased.regions import SignalRegions, compute_signal_regions
from repro.stg.stg import STG


def next_state_function(
    stg: STG,
    signal: str,
    regions: Optional[SignalRegions] = None,
) -> BooleanFunction:
    """The incompletely specified next-state function of one signal."""
    if regions is None:
        regions = compute_signal_regions(stg, signals=[signal])
    on_markings = regions.ger(signal, "+") | regions.gqr(signal, 1)
    off_markings = regions.ger(signal, "-") | regions.gqr(signal, 0)
    on_set = regions.codes_of(on_markings)
    off_set = regions.codes_of(off_markings)
    variables = stg.signal_names
    dc_set = Cover.universe(variables).sharp(on_set).sharp(off_set)
    return BooleanFunction(on_set, off_set, dc_set, variables, name=signal)


def next_state_functions(
    stg: STG,
    regions: Optional[SignalRegions] = None,
    signals: Optional[list[str]] = None,
) -> dict[str, BooleanFunction]:
    """Next-state functions for all (or the given) non-input signals."""
    targets = signals if signals is not None else stg.non_input_signals
    if regions is None:
        regions = compute_signal_regions(stg, signals=targets)
    return {
        signal: next_state_function(stg, signal, regions) for signal in targets
    }


def next_state_value(
    stg: STG,
    regions: SignalRegions,
    signal: str,
    marking,
) -> Optional[int]:
    """Implied next-state value of a signal at one reachable marking."""
    if marking in regions.ger(signal, "+") or marking in regions.gqr(signal, 1):
        return 1
    if marking in regions.ger(signal, "-") or marking in regions.gqr(signal, 0):
        return 0
    return None
