"""Next-state functions derived from exact signal regions.

The next-state function of an output signal ``a`` (Section II-E) maps every
binary code to:

* 1 on ``GER(a+) ∪ GQR(a=1)``,
* 0 on ``GER(a-) ∪ GQR(a=0)``,
* don't-care elsewhere (unreachable codes).

For a consistent STG satisfying CSC, the three sets are a consistent
partition of the Boolean space (no code is claimed both 0 and 1).

The on/off sets are assembled as bitset unions over state indices and
converted to covers of packed minterm cubes in one pass; the membership
test of :func:`next_state_value` is two mask probes.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.boolean.function import BooleanFunction
from repro.petri.marking import Marking
from repro.statebased.regions import SignalRegions, compute_signal_regions
from repro.stg.stg import STG


def next_state_function(
    stg: STG,
    signal: str,
    regions: Optional[SignalRegions] = None,
) -> BooleanFunction:
    """The incompletely specified next-state function of one signal."""
    if regions is None:
        regions = compute_signal_regions(stg, signals=[signal])
    on_bits = regions.ger_bits(signal, "+") | regions.gqr_bits(signal, 1)
    off_bits = regions.ger_bits(signal, "-") | regions.gqr_bits(signal, 0)
    on_set = regions.codes_of(on_bits)
    off_set = regions.codes_of(off_bits)
    variables = stg.signal_names
    dc_set = regions.encoded.complement_cover_of_codes(
        regions.code_set(on_bits) | regions.code_set(off_bits)
    )
    return BooleanFunction(on_set, off_set, dc_set, variables, name=signal)


def next_state_functions(
    stg: STG,
    regions: Optional[SignalRegions] = None,
    signals: Optional[list[str]] = None,
) -> dict[str, BooleanFunction]:
    """Next-state functions for all (or the given) non-input signals."""
    targets = signals if signals is not None else stg.non_input_signals
    if regions is None:
        regions = compute_signal_regions(stg, signals=targets)
    return {
        signal: next_state_function(stg, signal, regions) for signal in targets
    }


def implied_value_bitsets(
    regions: SignalRegions, signals: list[str]
) -> tuple[dict[str, int], dict[str, int]]:
    """Per-signal (on, off) state-index bitsets of the implied next value.

    A state implies 1 for a signal when it lies in ``GER(+) ∪ GQR(1)``, 0
    when in ``GER(-) ∪ GQR(0)``, nothing otherwise.  This is the bulk form
    of :func:`next_state_value`, shared by the speed-independence verifier
    and the differential ``compare()`` mode so the definition lives in one
    place.
    """
    on_bits = {
        s: regions.ger_bits(s, "+") | regions.gqr_bits(s, 1) for s in signals
    }
    off_bits = {
        s: regions.ger_bits(s, "-") | regions.gqr_bits(s, 0) for s in signals
    }
    return on_bits, off_bits


def next_state_value(
    stg: STG,
    regions: SignalRegions,
    signal: str,
    marking: Union[Marking, int],
) -> Optional[int]:
    """Implied next-state value of a signal at one reachable marking.

    ``marking`` may be a :class:`~repro.petri.marking.Marking` or a state
    index of the encoded reachability graph.
    """
    index = marking if isinstance(marking, int) else regions.encoded.index(marking)
    bit = 1 << index
    if (regions.ger_bits(signal, "+") | regions.gqr_bits(signal, 1)) & bit:
        return 1
    if (regions.ger_bits(signal, "-") | regions.gqr_bits(signal, 0)) & bit:
        return 0
    return None
