"""Exhaustive state-based synthesis baseline (SIS / ASSASSIN style).

This engine performs the explicit token-flow analysis that the structural
flow avoids: the full reachability graph is generated and encoded, the exact
signal regions are extracted as sets of markings, and the set/reset covers
are minimized against the exact off-sets.  Its purpose in the reproduction is
twofold: it is the correctness oracle of the test-suite, and it plays the
role of the state-based comparators in Tables V–VII (its run time explodes
with the number of markings while the structural engine's does not).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.boolean.cover import Cover
from repro.boolean.minimize import minimize_cover
from repro.statebased.coding import analyze_state_coding
from repro.statebased.regions import SignalRegions, compute_signal_regions
from repro.stg.consistency import check_consistency_state_based
from repro.stg.encoding import encode_reachability_graph
from repro.stg.stg import STG
from repro.synthesis.conditions import (
    check_cover_correctness,
    check_monotonicity_state_based,
)
from repro.synthesis.netlist import (
    Circuit,
    combinational_implementation,
    latch_implementation,
)


class StateBasedSynthesisError(RuntimeError):
    """Raised when the specification cannot be synthesized state-based."""


@dataclass
class StateBasedResult:
    """Synthesized circuit plus the exact regions and statistics."""

    circuit: Circuit
    regions: SignalRegions
    statistics: dict = field(default_factory=dict)


def synthesize_state_based(
    stg: STG,
    signals: Optional[list[str]] = None,
    allow_combinational: bool = True,
    check_specification: bool = True,
    max_markings: Optional[int] = None,
    assume_csc: bool = False,
) -> StateBasedResult:
    """Synthesize a circuit by exhaustive reachability analysis.

    Parameters
    ----------
    max_markings:
        Optional bound on the explored state space; exceeding it raises
        :class:`repro.petri.reachability.StateSpaceLimitExceeded` (used by the
        scalability experiments to document where the baseline gives up).
    assume_csc:
        Skip only the CSC part of the specification check (the caller takes
        responsibility, mirroring the structural flow's ``assume_csc``);
        consistency is still verified when ``check_specification`` is set.
    """
    start = time.perf_counter()
    stats: dict = {}
    from repro.petri.reachability import build_reachability_graph

    graph = build_reachability_graph(stg.net, max_markings=max_markings)
    stats["markings"] = len(graph)
    encoded = encode_reachability_graph(stg, graph)

    if check_specification:
        report = check_consistency_state_based(stg, graph)
        if not report.consistent:
            raise StateBasedSynthesisError(f"inconsistent STG: {report.message}")
        if not assume_csc:
            coding = analyze_state_coding(stg, encoded)
            if not coding.satisfies_csc:
                raise StateBasedSynthesisError(
                    f"CSC violations: {len(coding.csc_conflicts)} conflicting pairs"
                )

    targets = signals if signals is not None else stg.non_input_signals
    regions = compute_signal_regions(stg, encoded, signals=targets)
    variables = tuple(stg.signal_names)
    unreachable = regions.dc_codes()

    circuit = Circuit(name=stg.name, signal_order=variables)
    for signal in targets:
        circuit.implementations[signal] = _synthesize_signal(
            stg, regions, signal, unreachable, allow_combinational
        )
    stats["seconds"] = time.perf_counter() - start
    return StateBasedResult(circuit=circuit, regions=regions, statistics=stats)


def _synthesize_signal(
    stg: STG,
    regions: SignalRegions,
    signal: str,
    unreachable: Cover,
    allow_combinational: bool,
):
    """Derive the implementation of one signal from the exact regions."""
    variables = tuple(stg.signal_names)
    ger_plus = regions.ger_codes(signal, "+")
    ger_minus = regions.ger_codes(signal, "-")
    gqr_one = regions.gqr_codes(signal, 1)
    gqr_zero = regions.gqr_codes(signal, 0)

    if allow_combinational:
        # Complex gate per signal: a cover of the full next-state function.
        on_set = ger_plus.union(gqr_one)
        off_set = ger_minus.union(gqr_zero)
        cover = minimize_cover(on_set, off_set, unreachable)
        if check_cover_correctness(on_set, off_set, cover):
            # only keep the combinational form when it is actually cheaper
            set_candidate, reset_candidate = _set_reset_covers(
                stg, regions, signal, unreachable
            )
            latch_cost = set_candidate.num_literals() + reset_candidate.num_literals() + 4
            if cover.num_literals() <= latch_cost:
                return combinational_implementation(signal, cover)
            return latch_implementation(signal, set_candidate, reset_candidate)

    set_cover, reset_cover = _set_reset_covers(stg, regions, signal, unreachable)
    return latch_implementation(signal, set_cover, reset_cover)


def _set_reset_covers(
    stg: STG,
    regions: SignalRegions,
    signal: str,
    unreachable: Cover,
) -> tuple[Cover, Cover]:
    """Minimized set and reset covers against the exact off-sets."""
    ger_plus = regions.ger_codes(signal, "+")
    ger_minus = regions.ger_codes(signal, "-")
    gqr_one = regions.gqr_codes(signal, 1)
    gqr_zero = regions.gqr_codes(signal, 0)

    set_off = ger_minus.union(gqr_zero)
    reset_off = ger_plus.union(gqr_one)
    set_cover = minimize_cover(ger_plus, set_off, gqr_one.union(unreachable))
    reset_cover = minimize_cover(ger_minus, reset_off, gqr_zero.union(unreachable))

    if not check_monotonicity_state_based(stg, regions, signal, set_cover, "+"):
        set_cover = ger_plus
    if not check_monotonicity_state_based(stg, regions, signal, reset_cover, "-"):
        reset_cover = ger_minus
    return set_cover, reset_cover
