"""Exhaustive state-based synthesis baseline (SIS / ASSASSIN style).

This engine performs the explicit token-flow analysis that the structural
flow avoids: the full reachability graph is generated and encoded, the exact
signal regions are extracted, and the set/reset covers are minimized against
the exact off-sets.  Its purpose in the reproduction is twofold: it is the
correctness oracle of the test-suite, and it plays the role of the
state-based comparators in Tables V–VII (its run time explodes with the
number of markings while the structural engine's does not).

The whole chain runs on the compiled state-based substrate: packed int
codes computed during the BFS (:mod:`repro.stg.encoding`), bitset regions
(:mod:`repro.statebased.regions`), mask-based USC/CSC grouping
(:mod:`repro.statebased.coding`) and packed-cube region covers, so "explodes
with the number of markings" now means machine-integer work per marking
rather than dict churn per marking.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.boolean.cover import Cover
from repro.boolean.minimize import minimize_cover
from repro.statebased.coding import analyze_state_coding
from repro.statebased.regions import SignalRegions, compute_signal_regions
from repro.stg.consistency import check_consistency_state_based
from repro.stg.encoding import encode_reachability_graph
from repro.stg.stg import STG
from repro.synthesis.conditions import (
    check_cover_correctness,
    check_monotonicity_state_based,
)
from repro.synthesis.netlist import (
    Circuit,
    combinational_implementation,
    latch_implementation,
)


class StateBasedSynthesisError(RuntimeError):
    """Raised when the specification cannot be synthesized state-based."""


@dataclass
class StateBasedResult:
    """Synthesized circuit plus the exact regions and statistics."""

    circuit: Circuit
    regions: SignalRegions
    statistics: dict = field(default_factory=dict)


def synthesize_state_based(
    stg: STG,
    signals: Optional[list[str]] = None,
    allow_combinational: bool = True,
    check_specification: bool = True,
    max_markings: Optional[int] = None,
    assume_csc: bool = False,
) -> StateBasedResult:
    """Synthesize a circuit by exhaustive reachability analysis.

    Parameters
    ----------
    max_markings:
        Optional bound on the explored state space; exceeding it raises
        :class:`repro.petri.reachability.StateSpaceLimitExceeded` (used by the
        scalability experiments to document where the baseline gives up).
    assume_csc:
        Skip only the CSC part of the specification check (the caller takes
        responsibility, mirroring the structural flow's ``assume_csc``);
        consistency is still verified when ``check_specification`` is set.
    """
    start = time.perf_counter()
    stats: dict = {}
    from repro.petri.reachability import build_reachability_graph

    graph = build_reachability_graph(stg.net, max_markings=max_markings)
    stats["markings"] = len(graph)
    encoded = encode_reachability_graph(stg, graph)

    if check_specification:
        report = check_consistency_state_based(stg, graph)
        if not report.consistent:
            raise StateBasedSynthesisError(f"inconsistent STG: {report.message}")
        if not assume_csc:
            coding = analyze_state_coding(stg, encoded)
            if not coding.satisfies_csc:
                raise StateBasedSynthesisError(
                    f"CSC violations: {len(coding.csc_conflicts)} conflicting pairs"
                )

    targets = signals if signals is not None else stg.non_input_signals
    regions = compute_signal_regions(stg, encoded, signals=targets)
    variables = tuple(stg.signal_names)
    used_codes = regions.used_code_set()
    unreachable = regions.dc_codes()

    circuit = Circuit(name=stg.name, signal_order=variables)
    for signal in targets:
        circuit.implementations[signal] = _synthesize_signal(
            stg, regions, signal, used_codes, unreachable, allow_combinational
        )
    stats["seconds"] = time.perf_counter() - start
    return StateBasedResult(circuit=circuit, regions=regions, statistics=stats)


def _synthesize_signal(
    stg: STG,
    regions: SignalRegions,
    signal: str,
    used_codes: set[int],
    unreachable: Cover,
    allow_combinational: bool,
):
    """Derive the implementation of one signal from the exact regions.

    On-sets stay exact minterm covers (they seed the expansion, so their
    cube list is part of the minimizer's contract); off- and dc-sets are
    compact merged covers with identical minterm semantics — the minimizer
    only ever asks semantic questions of them.
    """
    encoded = regions.encoded
    on_bits = regions.ger_bits(signal, "+") | regions.gqr_bits(signal, 1)
    off_bits = regions.ger_bits(signal, "-") | regions.gqr_bits(signal, 0)

    if allow_combinational:
        # Complex gate per signal: a cover of the full next-state function.
        on_set = regions.codes_of(on_bits)
        off_set = encoded.merged_cover_of_codes(regions.code_set(off_bits))
        cover = minimize_cover(on_set, off_set, unreachable)
        if check_cover_correctness(on_set, off_set, cover):
            # only keep the combinational form when it is actually cheaper
            set_candidate, reset_candidate = _set_reset_covers(
                stg, regions, signal, used_codes
            )
            latch_cost = set_candidate.num_literals() + reset_candidate.num_literals() + 4
            if cover.num_literals() <= latch_cost:
                return combinational_implementation(signal, cover)
            return latch_implementation(signal, set_candidate, reset_candidate)

    set_cover, reset_cover = _set_reset_covers(stg, regions, signal, used_codes)
    return latch_implementation(signal, set_cover, reset_cover)


def _set_reset_covers(
    stg: STG,
    regions: SignalRegions,
    signal: str,
    used_codes: set[int],
) -> tuple[Cover, Cover]:
    """Minimized set and reset covers against the exact off-sets."""
    encoded = regions.encoded
    ger_plus = regions.ger_codes(signal, "+")
    ger_minus = regions.ger_codes(signal, "-")
    gqr_one_codes = regions.code_set(regions.gqr_bits(signal, 1))
    gqr_zero_codes = regions.code_set(regions.gqr_bits(signal, 0))

    set_off = encoded.merged_cover_of_codes(
        regions.code_set(regions.ger_bits(signal, "-") | regions.gqr_bits(signal, 0))
    )
    reset_off = encoded.merged_cover_of_codes(
        regions.code_set(regions.ger_bits(signal, "+") | regions.gqr_bits(signal, 1))
    )
    # dc = quiescent-region codes plus all unreachable codes, i.e. the
    # complement of the used codes outside the quiescent region
    set_dc = encoded.complement_cover_of_codes(used_codes - gqr_one_codes)
    reset_dc = encoded.complement_cover_of_codes(used_codes - gqr_zero_codes)
    set_cover = minimize_cover(ger_plus, set_off, set_dc)
    reset_cover = minimize_cover(ger_minus, reset_off, reset_dc)

    if not check_monotonicity_state_based(stg, regions, signal, set_cover, "+"):
        set_cover = ger_plus
    if not check_monotonicity_state_based(stg, regions, signal, reset_cover, "-"):
        reset_cover = ger_minus
    return set_cover, reset_cover
