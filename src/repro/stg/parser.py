"""Parser for the astg / SIS ``.g`` signal-transition-graph text format.

The format (used by SIS, petrify, and the classic asynchronous benchmark
suites) looks like::

    .model example
    .inputs a b
    .outputs c d
    .graph
    a+ b+
    b+ c+ d+
    c+ a-
    d+ a-
    a- b-
    b- a+
    .marking { <b-,a+> }
    .end

Edges connect transitions and explicit places; a transition→transition edge
implies an implicit place written ``<t1,t2>`` in ``.marking``.  Explicit
places are any identifiers that are not parseable as transitions of declared
signals.
"""

from __future__ import annotations

import os
import re
from typing import Optional

from repro.stg.signals import SignalType, parse_transition_label
from repro.stg.stg import STG


class GFormatError(ValueError):
    """Raised when a ``.g`` description cannot be parsed."""


_MARKING_TOKEN_RE = re.compile(r"<[^>]*>(?:=\d+)?|[^\s{}]+")


def parse_g(text: str, name: Optional[str] = None) -> STG:
    """Parse a ``.g`` format STG description from a string."""
    model_name = name or "stg"
    inputs: list[str] = []
    outputs: list[str] = []
    internal: list[str] = []
    dummies: list[str] = []
    graph_lines: list[str] = []
    marking_tokens: list[str] = []
    initial_values: dict[str, int] = {}

    in_graph = False
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("."):
            in_graph = False
            directive, _, rest = line.partition(" ")
            rest = rest.strip()
            if directive == ".model" or directive == ".name":
                if rest:
                    model_name = rest.split()[0]
            elif directive == ".inputs":
                inputs.extend(rest.split())
            elif directive == ".outputs":
                outputs.extend(rest.split())
            elif directive == ".internal":
                internal.extend(rest.split())
            elif directive == ".dummy":
                dummies.extend(rest.split())
            elif directive == ".graph":
                in_graph = True
            elif directive == ".marking":
                marking_tokens.extend(_MARKING_TOKEN_RE.findall(rest))
            elif directive == ".initial" or directive == ".init":
                # non-standard extension: ".initial a=0 b=1"
                for token in rest.split():
                    if "=" in token:
                        signal, _, value = token.partition("=")
                        initial_values[signal] = int(value)
            elif directive in (".end", ".capacity", ".slowenv", ".coords"):
                continue
            else:
                # Unknown directives are ignored for robustness.
                continue
        else:
            if in_graph:
                graph_lines.append(line)
            else:
                raise GFormatError(f"unexpected line outside .graph section: {raw_line!r}")

    if not graph_lines:
        raise GFormatError("no .graph section found")

    stg = STG(model_name)
    for signal in inputs:
        stg.add_signal(signal, SignalType.INPUT)
    for signal in outputs:
        stg.add_signal(signal, SignalType.OUTPUT)
    for signal in internal:
        stg.add_signal(signal, SignalType.INTERNAL)
    for signal in dummies:
        stg.add_signal(signal, SignalType.DUMMY)

    declared = set(inputs) | set(outputs) | set(internal) | set(dummies)

    def is_transition_token(token: str) -> bool:
        try:
            parsed = parse_transition_label(token)
        except ValueError:
            return False
        if parsed.signal not in declared:
            return False
        if parsed.signal in dummies:
            return True
        return parsed.direction in "+-"

    # First pass: collect the node set of each line.
    edges: list[tuple[str, str]] = []
    for line in graph_lines:
        tokens = line.split()
        if len(tokens) < 2:
            raise GFormatError(f"graph line with a single node: {line!r}")
        source, targets = tokens[0], tokens[1:]
        for target in targets:
            edges.append((source, target))

    # Create nodes.
    for source, target in edges:
        for token in (source, target):
            if stg.net.has_node(token):
                continue
            if is_transition_token(token):
                stg.add_transition(token)
            else:
                stg.add_place(token)
    # Create arcs (implicit places inserted automatically).
    for source, target in edges:
        stg.add_arc(source, target)

    # Marking.  A token may carry an explicit count (``p=2`` /
    # ``<a+,b->=3``) for k-bounded nets; a bare name means one token.
    marked: dict[str, int] = {}
    for token in marking_tokens:
        count = 1
        if token.startswith("<"):
            if ">" not in token:
                raise GFormatError(f"malformed implicit place token {token!r}")
            name, _, suffix = token.rpartition(">")
            name += ">"
            if suffix:
                if not re.fullmatch(r"=\d+", suffix):
                    raise GFormatError(f"malformed marking token {token!r}")
                count = int(suffix[1:])
            inner = name[1:-1]
            parts = [part.strip() for part in inner.split(",")]
            if len(parts) != 2:
                raise GFormatError(f"malformed implicit place token {token!r}")
            place = f"<{parts[0]},{parts[1]}>"
            if not stg.net.is_place(place):
                raise GFormatError(f"marking refers to unknown implicit place {place!r}")
        else:
            place = token
            if "=" in token:
                place, _, suffix = token.partition("=")
                if not suffix.isdigit():
                    raise GFormatError(f"malformed marking token {token!r}")
                count = int(suffix)
            if not stg.net.is_place(place):
                raise GFormatError(f"marking refers to unknown place {place!r}")
        marked[place] = marked.get(place, 0) + count
    if not marked:
        raise GFormatError("no .marking section found")
    stg.set_marking(marked)
    if initial_values:
        stg.set_initial_values(initial_values)
    return stg


def load_g(path: str | os.PathLike) -> STG:
    """Load an STG from a ``.g`` file."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    name = os.path.splitext(os.path.basename(str(path)))[0]
    return parse_g(text, name=name)
