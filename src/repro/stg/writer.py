"""Writer for the astg / SIS ``.g`` signal-transition-graph text format.

The writer emits a description that :func:`repro.stg.parser.parse_g` parses
back to an equivalent STG (same signals, same net structure up to implicit
place naming, same marking); round-tripping is covered by the test-suite.

The output is *canonical*: graph lines are emitted in sorted node order
(with sorted targets), so two structurally identical STGs serialize to the
same text regardless of construction order.  The content hash of
:class:`repro.api.Spec` relies on this — ``write_g ∘ parse_g`` is a fixed
point on its own output.  Signal declarations keep their declaration order
(it is semantic: it fixes the variable order of the synthesis flow).
"""

from __future__ import annotations

import os
import re
from typing import Optional

from repro.stg.stg import STG

_IMPLICIT_RE = re.compile(r"^<([^,]+),([^>]+)>$")


def _is_implicit(stg: STG, place: str) -> Optional[tuple[str, str]]:
    """If a place is implicit (single pred/succ transition), return the pair."""
    predecessors = stg.net.preset(place)
    successors = stg.net.postset(place)
    if len(predecessors) == 1 and len(successors) == 1:
        return next(iter(predecessors)), next(iter(successors))
    return None


def write_g(stg: STG, path: Optional[str | os.PathLike] = None) -> str:
    """Serialize an STG to ``.g`` text; optionally write it to ``path``."""
    lines: list[str] = [f".model {stg.name}"]
    if stg.input_signals:
        lines.append(".inputs " + " ".join(stg.input_signals))
    if stg.output_signals:
        lines.append(".outputs " + " ".join(stg.output_signals))
    if stg.internal_signals:
        lines.append(".internal " + " ".join(stg.internal_signals))
    lines.append(".graph")

    # Adjacency: transitions first, then explicit places.  A place is
    # written implicitly (as a transition→transition arc) only when it is
    # the *unique* place between its transition pair — two parallel places
    # would collapse into one arc on re-parse, so they stay explicit.
    candidates: dict[str, tuple[str, str]] = {}
    pair_counts: dict[tuple[str, str], int] = {}
    for place in stg.places:
        pair = _is_implicit(stg, place)
        if pair is not None:
            candidates[place] = pair
            pair_counts[pair] = pair_counts.get(pair, 0) + 1
    implicit_pairs: dict[str, tuple[str, str]] = {}
    explicit_places: list[str] = []
    for place in stg.places:
        pair = candidates.get(place)
        if pair is not None and pair_counts[pair] == 1:
            implicit_pairs[place] = pair
        else:
            explicit_places.append(place)

    for transition in sorted(stg.transitions):
        targets: list[str] = []
        for successor in stg.net.postset(transition):
            if successor in implicit_pairs:
                _, next_transition = implicit_pairs[successor]
                targets.append(next_transition)
            else:
                targets.append(successor)
        if targets:
            lines.append(f"{transition} " + " ".join(sorted(targets)))
    for place in sorted(explicit_places):
        targets = sorted(stg.net.postset(place))
        if targets:
            lines.append(f"{place} " + " ".join(targets))

    marked: list[str] = []
    for place, count in stg.initial_marking.items():
        if place in implicit_pairs:
            source, target = implicit_pairs[place]
            token = f"<{source},{target}>"
        else:
            token = place
        # Multi-token places (k-bounded STGs) carry an explicit count;
        # plain tokens keep the classic one-token-per-name form.
        if count > 1:
            token += f"={count}"
        marked.append(token)
    lines.append(".marking { " + " ".join(sorted(marked)) + " }")
    if stg.initial_values:
        pairs = " ".join(f"{s}={v}" for s, v in sorted(stg.initial_values.items()))
        lines.append(f".initial {pairs}")
    lines.append(".end")
    text = "\n".join(lines) + "\n"
    if path is not None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
    return text
