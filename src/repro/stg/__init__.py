"""Signal transition graphs (STGs).

An STG is a Petri net whose transitions are interpreted as rising (``+``) or
falling (``-``) transitions of circuit signals (Section II-B of the paper).
This package provides the STG data structure, the astg/SIS ``.g`` text format
parser and writer, marking encodings, and the state-based consistency check
used as an oracle for the structural one.
"""

from repro.stg.signals import SignalType, SignalTransition, parse_transition_label
from repro.stg.stg import STG
from repro.stg.parser import parse_g, load_g
from repro.stg.writer import write_g
from repro.stg.encoding import EncodedReachabilityGraph, encode_reachability_graph
from repro.stg.consistency import check_consistency_state_based, ConsistencyReport

__all__ = [
    "SignalType",
    "SignalTransition",
    "parse_transition_label",
    "STG",
    "parse_g",
    "load_g",
    "write_g",
    "EncodedReachabilityGraph",
    "encode_reachability_graph",
    "check_consistency_state_based",
    "ConsistencyReport",
]
