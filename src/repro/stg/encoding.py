"""Binary encoding of reachable markings.

Each reachable marking of a consistent STG has a unique binary vector of
signal values (the labelling function ``v`` of Section II-B).  This module
computes the encoded reachability graph by token-flow analysis; it is the
state-based oracle used to validate the structural approximations and is the
workhorse of the baseline synthesis engine.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.petri.marking import Marking
from repro.petri.reachability import ReachabilityGraph, build_reachability_graph
from repro.stg.stg import STG


class EncodingError(ValueError):
    """Raised when no consistent binary encoding of the markings exists."""


class EncodedReachabilityGraph:
    """A reachability graph together with the binary code of every marking."""

    def __init__(
        self,
        stg: STG,
        graph: ReachabilityGraph,
        codes: dict[Marking, dict[str, int]],
        initial_values: dict[str, int],
    ):
        self.stg = stg
        self.graph = graph
        self._codes = codes
        self.initial_values = dict(initial_values)

    # ------------------------------------------------------------------ #

    @property
    def markings(self) -> list[Marking]:
        """All reachable markings."""
        return self.graph.markings

    def __len__(self) -> int:
        return len(self.graph)

    def code_of(self, marking: Marking) -> dict[str, int]:
        """The binary signal vector of a marking."""
        return dict(self._codes[marking])

    def code_string(self, marking: Marking, order: Optional[list[str]] = None) -> str:
        """The binary code of a marking as a string over a signal order."""
        signals = order if order is not None else self.stg.signal_names
        code = self._codes[marking]
        return "".join(str(code[s]) for s in signals)

    def value(self, marking: Marking, signal: str) -> int:
        """Binary value of one signal at a marking."""
        return self._codes[marking][signal]

    def markings_with_code(self, code: dict[str, int]) -> list[Marking]:
        """All markings whose code matches the (complete) assignment."""
        return [
            marking for marking, existing in self._codes.items()
            if all(existing[s] == v for s, v in code.items())
        ]

    def codes(self) -> dict[Marking, dict[str, int]]:
        """A copy of the full marking→code mapping."""
        return {marking: dict(code) for marking, code in self._codes.items()}

    def used_codes(self) -> set[tuple[int, ...]]:
        """The set of binary codes (tuples over the signal order) in use."""
        order = self.stg.signal_names
        return {
            tuple(code[s] for s in order) for code in self._codes.values()
        }

    def enabled_transitions(self, marking: Marking) -> set[str]:
        """Transitions enabled at a marking."""
        return self.graph.enabled_transitions(marking)

    def enabled_output_transitions(self, marking: Marking) -> set[str]:
        """Non-input transitions enabled at a marking (for CSC checks)."""
        return {
            t for t in self.graph.enabled_transitions(marking)
            if not self.stg.is_input(self.stg.signal_of(t))
        }


def infer_initial_values(
    stg: STG,
    graph: Optional[ReachabilityGraph] = None,
) -> dict[str, int]:
    """Infer the initial binary value of every signal.

    Declared values are taken as-is; for the rest, the value is derived from
    the direction of the first transition of the signal reachable from the
    initial marking (``0`` if a rising transition is reached first).  Signals
    with no transitions default to 0.
    """
    values = dict(stg.initial_values)
    missing = [s for s in stg.signal_names if s not in values]
    if not missing:
        return values
    if graph is None:
        graph = build_reachability_graph(stg.net)
    pending = set(missing)
    frontier: deque[Marking] = deque([graph.initial])
    seen: set[Marking] = {graph.initial}
    while frontier and pending:
        current = frontier.popleft()
        for transition, target in graph.successors(current):
            label = stg.label(transition)
            if label.signal in pending and label.direction in "+-":
                values[label.signal] = label.source_value
                pending.discard(label.signal)
            if target not in seen:
                seen.add(target)
                frontier.append(target)
    for signal in pending:
        values[signal] = 0
    return values


def encode_reachability_graph(
    stg: STG,
    graph: Optional[ReachabilityGraph] = None,
    initial_values: Optional[dict[str, int]] = None,
    strict: bool = True,
) -> EncodedReachabilityGraph:
    """Compute binary codes for all reachable markings.

    Codes are propagated along the edges of the reachability graph starting
    from the initial values; a rising transition sets its signal to 1, a
    falling transition to 0.

    Parameters
    ----------
    strict:
        When True (default) an :class:`EncodingError` is raised if a
        transition fires from a marking where its signal already has the
        target value (switchover violation) or if a marking receives two
        different codes along different paths.  With ``strict=False`` the
        first code reached wins, which is useful for diagnosing inconsistent
        specifications.
    """
    if graph is None:
        graph = build_reachability_graph(stg.net)
    if initial_values is None:
        initial_values = infer_initial_values(stg, graph)
    for signal in stg.signal_names:
        if signal not in initial_values:
            initial_values[signal] = 0

    codes: dict[Marking, dict[str, int]] = {graph.initial: dict(initial_values)}
    frontier: deque[Marking] = deque([graph.initial])
    while frontier:
        current = frontier.popleft()
        current_code = codes[current]
        for transition, target in graph.successors(current):
            label = stg.label(transition)
            new_code = dict(current_code)
            if label.direction in "+-":
                if strict and current_code[label.signal] != label.source_value:
                    raise EncodingError(
                        f"switchover violation: {transition} fires while "
                        f"{label.signal}={current_code[label.signal]}"
                    )
                new_code[label.signal] = label.target_value
            existing = codes.get(target)
            if existing is None:
                codes[target] = new_code
                frontier.append(target)
            elif existing != new_code:
                if strict:
                    raise EncodingError(
                        f"inconsistent encoding for marking {target}: "
                        f"{existing} vs {new_code}"
                    )
    return EncodedReachabilityGraph(stg, graph, codes, initial_values)
