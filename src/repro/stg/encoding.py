"""Binary encoding of reachable markings — packed-int state codes.

Each reachable marking of a consistent STG has a unique binary vector of
signal values (the labelling function ``v`` of Section II-B).  This module
computes the encoded reachability graph by token-flow analysis; it is the
state-based oracle used to validate the structural approximations and is the
workhorse of the baseline synthesis engine.

The representation is compiled: every state carries one machine integer
whose bits are the signal values over the *global interner order* of
:mod:`repro.boolean.interning` — the same bit positions the packed
:class:`~repro.boolean.cube.Cube` masks use, so a state code *is* the
``value_mask`` of its minterm cube and region covers can be emitted without
any dict marshalling.  Codes are propagated in a single pass over the edge
list of the compiled BFS (``IndexedGraph.edges`` is in BFS firing order, the
exact order the reference propagation visits edges), so encoding is a
by-product of exploration rather than a second dict pass.  The dict-based
propagation is retained as :func:`_reference_encode_codes` — the oracle for
the differential tests and the documentation of the semantics.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional, Union

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube
from repro.boolean.interning import mask_of_tuple, var_index
from repro.petri.marking import Marking
from repro.petri.reachability import (
    IndexedGraph,
    ReachabilityGraph,
    build_reachability_graph,
)
from repro.stg.stg import STG


class EncodingError(ValueError):
    """Raised when no consistent binary encoding of the markings exists."""


class EncodedReachabilityGraph:
    """A reachability graph with one packed int code per reachable marking.

    State ``i`` (discovery order) has marking ``marking_list[i]`` and code
    ``packed_codes[i]``; bit ``var_index(s)`` of the code is the value of
    signal ``s``.  The name-based accessors (:meth:`code_of`,
    :meth:`value`, :meth:`code_string`) are thin boundary shims over the
    packed arrays.
    """

    __slots__ = (
        "stg",
        "graph",
        "initial_values",
        "_packed",
        "_signal_order",
        "_signal_bits",
        "_bit_of",
        "_signals_mask",
        "_dict_cache",
        "_cube_cache",
    )

    def __init__(
        self,
        stg: STG,
        graph: ReachabilityGraph,
        codes: dict[Marking, dict[str, int]],
        initial_values: dict[str, int],
    ):
        """Build from a dict code map (the reference-path constructor)."""
        indexed = graph.indexed()
        packed = []
        for marking in indexed.marking_list:
            code = codes[marking]
            bits = 0
            for signal, value in code.items():
                if value:
                    bits |= 1 << var_index(signal)
            packed.append(bits)
        self._init_packed(stg, graph, packed, initial_values)

    @classmethod
    def _from_packed(
        cls,
        stg: STG,
        graph: ReachabilityGraph,
        packed_codes: list[int],
        initial_values: dict[str, int],
    ) -> "EncodedReachabilityGraph":
        self = cls.__new__(cls)
        self._init_packed(stg, graph, packed_codes, initial_values)
        return self

    def _init_packed(
        self,
        stg: STG,
        graph: ReachabilityGraph,
        packed_codes: list[int],
        initial_values: dict[str, int],
    ) -> None:
        self.stg = stg
        self.graph = graph
        self.initial_values = dict(initial_values)
        self._packed = packed_codes
        order = tuple(stg.signal_names)
        self._signal_order = order
        self._signal_bits = [var_index(s) for s in order]
        # known-signal lookup: name-based accessors raise KeyError on
        # unknown signals instead of silently interning fresh variables
        self._bit_of = dict(zip(order, self._signal_bits))
        self._signals_mask = mask_of_tuple(order)
        self._dict_cache: dict[int, dict[str, int]] = {}
        self._cube_cache: dict[int, Cube] = {}

    # ------------------------------------------------------------------ #
    # Index-space accessors (non-copying; the compiled synthesis/verify
    # loops run on these)
    # ------------------------------------------------------------------ #

    @property
    def packed_codes(self) -> list[int]:
        """The per-state code ints (the internal list — do not mutate)."""
        return self._packed

    def indexed(self) -> IndexedGraph:
        """The dense-index adjacency view of the underlying graph."""
        return self.graph.indexed()

    @property
    def marking_list(self) -> list[Marking]:
        """Markings by state index (materializes the name-based view)."""
        return self.graph.indexed().marking_list

    def index(self, marking: Marking) -> int:
        """State index of a marking (discovery order)."""
        return self.graph.indexed().index_of[marking]

    def code_int(self, marking: Marking) -> int:
        """Packed code of a marking over the global variable order."""
        return self._packed[self.index(marking)]

    def code_dict_of_int(self, code: int) -> dict[str, int]:
        """Shared name→value dict of a packed code (do not mutate)."""
        cached = self._dict_cache.get(code)
        if cached is None:
            cached = {
                signal: (code >> bit) & 1
                for signal, bit in zip(self._signal_order, self._signal_bits)
            }
            self._dict_cache[code] = cached
        return cached

    def code_view(self, marking: Marking) -> dict[str, int]:
        """Non-copying :meth:`code_of`: a shared dict per distinct code."""
        return self.code_dict_of_int(self.code_int(marking))

    def minterm_cube(self, code: int) -> Cube:
        """The minterm cube of a packed code over the signal universe.

        The cube's packed ``(care, value)`` pair is exactly
        ``(signals_mask, code)`` — the code int is reused as the value mask
        without translation.
        """
        cube = self._cube_cache.get(code)
        if cube is None:
            cube = Cube._raw(
                dict(self.code_dict_of_int(code)), self._signals_mask, code
            )
            self._cube_cache[code] = cube
        return cube

    def bits_of(self, markings: Iterable[Marking]) -> int:
        """State-index bitset of a collection of markings."""
        index_of = self.graph.indexed().index_of
        bits = 0
        for marking in markings:
            bits |= 1 << index_of[marking]
        return bits

    def markings_of_bits(self, bits: int) -> set[Marking]:
        """Markings of a state-index bitset (a fresh set)."""
        marking_list = self.marking_list
        result: set[Marking] = set()
        while bits:
            low = bits & -bits
            result.add(marking_list[low.bit_length() - 1])
            bits ^= low
        return result

    def cover_of_bits(self, bits: int) -> Cover:
        """Characteristic cover of a state-index bitset.

        Duplicate codes (markings sharing a code, i.e. USC violations) are
        emitted once, in first-state order; the cubes are packed minterms
        shared through the per-code cache.
        """
        packed = self._packed
        seen: set[int] = set()
        cubes: list[Cube] = []
        while bits:
            low = bits & -bits
            bits ^= low
            code = packed[low.bit_length() - 1]
            if code not in seen:
                seen.add(code)
                cubes.append(self.minterm_cube(code))
        return Cover._make(cubes, self._signal_order, self._signals_mask)

    def code_set_of_bits(self, bits: int) -> set[int]:
        """Distinct packed codes of a state-index bitset."""
        packed = self._packed
        codes: set[int] = set()
        while bits:
            low = bits & -bits
            bits ^= low
            codes.add(packed[low.bit_length() - 1])
        return codes

    def _prefix_cube(self, care: int, value: int) -> Cube:
        literals = {
            signal: (value >> bit) & 1
            for signal, bit in zip(self._signal_order, self._signal_bits)
            if care >> bit & 1
        }
        return Cube._raw(literals, care, value)

    def _space_cover(self, codes: Iterable[int], complement: bool) -> Cover:
        """Disjoint cube cover of a code set (or of its complement).

        Recursive orthogonal splitting over the signal bits: a subspace
        wholly inside the set (or, for ``complement=True``, wholly outside
        it) is emitted as one cube.  Cost is O(|codes| · #signals) — this is
        what replaces ``Cover.universe(...).sharp(minterms)`` (quadratic in
        the number of reachable codes) for dc-sets, and what compacts the
        off-set covers the minimizer probes: the emitted cover has the exact
        minterm semantics of the code set, which is all the minimizer's
        predicates (``intersects_cube``/``covers_cube``/``contains_cover``)
        depend on.
        """
        bits = self._signal_bits
        dimensions = len(bits)
        cubes: list[Cube] = []

        def recurse(subset: list[int], depth: int, care: int, value: int) -> None:
            if not subset:
                if complement:
                    cubes.append(self._prefix_cube(care, value))
                return
            if len(subset) == 1 << (dimensions - depth):
                if not complement:
                    cubes.append(self._prefix_cube(care, value))
                return
            bit = 1 << bits[depth]
            zeros = [c for c in subset if not c & bit]
            ones = [c for c in subset if c & bit]
            recurse(zeros, depth + 1, care | bit, value)
            recurse(ones, depth + 1, care | bit, value | bit)

        recurse(sorted(set(codes)), 0, 0, 0)
        return Cover._make(cubes, self._signal_order, self._signals_mask)

    def merged_cover_of_codes(self, codes: Iterable[int]) -> Cover:
        """Compact (merged, disjoint) cover with exactly the given codes."""
        return self._space_cover(codes, complement=False)

    def complement_cover_of_codes(self, codes: Iterable[int]) -> Cover:
        """Compact cover of every code NOT in the given set."""
        return self._space_cover(codes, complement=True)

    # ------------------------------------------------------------------ #
    # Name-based boundary API (unchanged semantics)
    # ------------------------------------------------------------------ #

    @property
    def markings(self) -> list[Marking]:
        """All reachable markings."""
        return self.graph.markings

    def __len__(self) -> int:
        return len(self.graph)

    def code_of(self, marking: Marking) -> dict[str, int]:
        """The binary signal vector of a marking (a fresh dict)."""
        return dict(self.code_view(marking))

    def code_string(self, marking: Marking, order: Optional[list[str]] = None) -> str:
        """The binary code of a marking as a string over a signal order."""
        code = self.code_int(marking)
        if order is None:
            return "".join(
                str((code >> bit) & 1) for bit in self._signal_bits
            )
        return "".join(str((code >> self._bit_of[s]) & 1) for s in order)

    def value(self, marking: Marking, signal: str) -> int:
        """Binary value of one signal at a marking."""
        return (self.code_int(marking) >> self._bit_of[signal]) & 1

    def markings_with_code(self, code: dict[str, int]) -> list[Marking]:
        """All markings whose code matches the (possibly partial) assignment."""
        care = 0
        value = 0
        for signal, bound in code.items():
            bit = 1 << self._bit_of[signal]
            care |= bit
            if bound:
                value |= bit
        return [
            marking
            for marking, packed in zip(self.marking_list, self._packed)
            if packed & care == value
        ]

    def codes(self) -> dict[Marking, dict[str, int]]:
        """A copy of the full marking→code mapping."""
        return {
            marking: dict(self.code_dict_of_int(packed))
            for marking, packed in zip(self.marking_list, self._packed)
        }

    def used_codes(self) -> set[tuple[int, ...]]:
        """The set of binary codes (tuples over the signal order) in use."""
        bits = self._signal_bits
        return {
            tuple((code >> bit) & 1 for bit in bits) for code in self._packed
        }

    def enabled_transitions(self, marking: Marking) -> set[str]:
        """Transitions enabled at a marking."""
        return self.graph.enabled_transitions(marking)

    def enabled_output_transitions(self, marking: Marking) -> set[str]:
        """Non-input transitions enabled at a marking (for CSC checks)."""
        return {
            t for t in self.graph.enabled_transitions(marking)
            if not self.stg.is_input(self.stg.signal_of(t))
        }


def infer_initial_values(
    stg: STG,
    graph: Optional[ReachabilityGraph] = None,
) -> dict[str, int]:
    """Infer the initial binary value of every signal.

    Declared values are taken as-is; for the rest, the value is derived from
    the direction of the first transition of the signal reachable from the
    initial marking (``0`` if a rising transition is reached first).  Signals
    with no transitions default to 0.

    The scan is a single pass over the indexed edge list, which visits edges
    in exactly the order of the reference BFS
    (:func:`_reference_infer_initial_values`).
    """
    values = dict(stg.initial_values)
    missing = [s for s in stg.signal_names if s not in values]
    if not missing:
        return values
    if graph is None:
        graph = build_reachability_graph(stg.net)
    indexed = graph.indexed()
    labels = [stg.label(name) for name in indexed.transition_names]
    pending = set(missing)
    for _, transition, _ in indexed.edges:
        if not pending:
            break
        label = labels[transition]
        if label.signal in pending and label.direction in "+-":
            values[label.signal] = label.source_value
            pending.discard(label.signal)
    for signal in pending:
        values[signal] = 0
    return values


def encode_reachability_graph(
    stg: STG,
    graph: Optional[ReachabilityGraph] = None,
    initial_values: Optional[dict[str, int]] = None,
    strict: bool = True,
) -> EncodedReachabilityGraph:
    """Compute binary codes for all reachable markings.

    Codes are propagated along the edges of the reachability graph starting
    from the initial values; a rising transition sets its signal's bit, a
    falling transition clears it.  The propagation is one pass over the
    indexed edge list working entirely on ints; the dict-based pass is kept
    as :func:`_reference_encode_codes` (the differential-test oracle).

    Parameters
    ----------
    strict:
        When True (default) an :class:`EncodingError` is raised if a
        transition fires from a marking where its signal already has the
        target value (switchover violation) or if a marking receives two
        different codes along different paths.  With ``strict=False`` the
        first code reached wins, which is useful for diagnosing inconsistent
        specifications.
    """
    if graph is None:
        graph = build_reachability_graph(stg.net)
    if initial_values is None:
        initial_values = infer_initial_values(stg, graph)
    for signal in stg.signal_names:
        if signal not in initial_values:
            initial_values[signal] = 0

    indexed = graph.indexed()
    initial_code = 0
    for signal in stg.signal_names:
        if initial_values.get(signal):
            initial_code |= 1 << var_index(signal)

    # Per-transition flip tables: (bit mask, target value, source value),
    # or None for dummy transitions (no signal change).
    flips: list[Optional[tuple[int, int, int]]] = []
    for name in indexed.transition_names:
        label = stg.label(name)
        if label.direction in "+-":
            flips.append(
                (1 << var_index(label.signal), label.target_value, label.source_value)
            )
        else:
            flips.append(None)

    num_states = len(indexed)
    codes: list[int] = [-1] * num_states
    codes[0] = initial_code
    transition_names = indexed.transition_names
    for source, transition, target in indexed.edges:
        current = codes[source]
        flip = flips[transition]
        if flip is None:
            new_code = current
        else:
            bit, target_value, source_value = flip
            if strict and bool(current & bit) != bool(source_value):
                label = stg.label(transition_names[transition])
                raise EncodingError(
                    f"switchover violation: {transition_names[transition]} "
                    f"fires while {label.signal}={1 if current & bit else 0}"
                )
            new_code = (current | bit) if target_value else (current & ~bit)
        existing = codes[target]
        if existing == -1:
            codes[target] = new_code
        elif existing != new_code and strict:
            def as_dict(code: int) -> dict[str, int]:
                return {
                    s: (code >> var_index(s)) & 1 for s in stg.signal_names
                }
            raise EncodingError(
                f"inconsistent encoding for marking "
                f"{indexed.marking_list[target]}: "
                f"{as_dict(existing)} vs {as_dict(new_code)}"
            )
    return EncodedReachabilityGraph._from_packed(stg, graph, codes, initial_values)


# ---------------------------------------------------------------------- #
# Dict-based reference implementations
#
# The original Marking→dict propagation.  Kept as the oracle side of the
# differential tests (tests/test_compiled_statebased.py) and as the
# executable specification of the encoding semantics.
# ---------------------------------------------------------------------- #


def _reference_infer_initial_values(
    stg: STG,
    graph: ReachabilityGraph,
) -> dict[str, int]:
    """Reference BFS scan for undeclared initial values."""
    values = dict(stg.initial_values)
    missing = [s for s in stg.signal_names if s not in values]
    if not missing:
        return values
    pending = set(missing)
    frontier: deque[Marking] = deque([graph.initial])
    seen: set[Marking] = {graph.initial}
    while frontier and pending:
        current = frontier.popleft()
        for transition, target in graph.successors(current):
            label = stg.label(transition)
            if label.signal in pending and label.direction in "+-":
                values[label.signal] = label.source_value
                pending.discard(label.signal)
            if target not in seen:
                seen.add(target)
                frontier.append(target)
    for signal in pending:
        values[signal] = 0
    return values


def _reference_encode_codes(
    stg: STG,
    graph: ReachabilityGraph,
    initial_values: dict[str, int],
    strict: bool = True,
) -> dict[Marking, dict[str, int]]:
    """Reference dict-based code propagation over the reachability graph."""
    codes: dict[Marking, dict[str, int]] = {graph.initial: dict(initial_values)}
    frontier: deque[Marking] = deque([graph.initial])
    while frontier:
        current = frontier.popleft()
        current_code = codes[current]
        for transition, target in graph.successors(current):
            label = stg.label(transition)
            new_code = dict(current_code)
            if label.direction in "+-":
                if strict and current_code[label.signal] != label.source_value:
                    raise EncodingError(
                        f"switchover violation: {transition} fires while "
                        f"{label.signal}={current_code[label.signal]}"
                    )
                new_code[label.signal] = label.target_value
            existing = codes.get(target)
            if existing is None:
                codes[target] = new_code
                frontier.append(target)
            elif existing != new_code:
                if strict:
                    raise EncodingError(
                        f"inconsistent encoding for marking {target}: "
                        f"{existing} vs {new_code}"
                    )
    return codes


def _reference_encode_reachability_graph(
    stg: STG,
    graph: Optional[ReachabilityGraph] = None,
    initial_values: Optional[dict[str, int]] = None,
    strict: bool = True,
) -> EncodedReachabilityGraph:
    """Reference construction path (dict propagation, then packing)."""
    if graph is None:
        graph = build_reachability_graph(stg.net)
    if initial_values is None:
        initial_values = _reference_infer_initial_values(stg, graph)
    for signal in stg.signal_names:
        if signal not in initial_values:
            initial_values[signal] = 0
    codes = _reference_encode_codes(stg, graph, initial_values, strict)
    return EncodedReachabilityGraph(stg, graph, codes, initial_values)
