"""State-based consistency checking of STGs.

An STG satisfies the consistency condition when it has no autoconcurrent
transitions and every firing sequence is switchover correct (Section V-B).
This module checks consistency on the reachability graph — it is the oracle
against which the *structural* consistency algorithm
(:mod:`repro.structural.consistency`) is validated, and it also reports
output-semimodularity violations (Section II-B), the remaining specification
correctness condition besides CSC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.petri.marking import Marking
from repro.petri.reachability import ReachabilityGraph, build_reachability_graph
from repro.stg.encoding import EncodingError, encode_reachability_graph, infer_initial_values
from repro.stg.stg import STG


@dataclass
class ConsistencyReport:
    """Result of the state-based consistency / semimodularity analysis."""

    consistent: bool
    autoconcurrent_pairs: list[tuple[str, str]] = field(default_factory=list)
    switchover_violations: list[str] = field(default_factory=list)
    semimodularity_violations: list[tuple[str, str]] = field(default_factory=list)
    message: str = ""

    @property
    def output_semimodular(self) -> bool:
        """True when no enabled output transition can be disabled."""
        return not self.semimodularity_violations

    def __bool__(self) -> bool:
        return self.consistent


def find_autoconcurrent_pairs(
    stg: STG, graph: ReachabilityGraph
) -> list[tuple[str, str]]:
    """Pairs of same-signal transitions that are simultaneously enabled."""
    pairs: set[tuple[str, str]] = set()
    for marking in graph:
        enabled = sorted(graph.enabled_transitions(marking))
        for i, first in enumerate(enabled):
            for second in enabled[i + 1:]:
                if first == second:
                    continue
                if stg.signal_of(first) == stg.signal_of(second):
                    pairs.add((first, second))
    return sorted(pairs)


def find_semimodularity_violations(
    stg: STG, graph: ReachabilityGraph
) -> list[tuple[str, str]]:
    """Output transitions disabled by the firing of another transition.

    Returns pairs ``(disabled_output_transition, disabling_transition)``.
    """
    violations: set[tuple[str, str]] = set()
    net = stg.net
    for marking in graph:
        enabled = graph.enabled_transitions(marking)
        outputs_enabled = [
            t for t in enabled if not stg.is_input(stg.signal_of(t))
        ]
        if not outputs_enabled:
            continue
        for fired, target in graph.successors(marking):
            for output in outputs_enabled:
                if output == fired:
                    continue
                if stg.signal_of(output) == stg.signal_of(fired):
                    # Same-signal conflicts are autoconcurrency/consistency
                    # matters, not semimodularity.
                    continue
                if not net.is_enabled(output, target):
                    violations.add((output, fired))
    return sorted(violations)


def check_consistency_state_based(
    stg: STG,
    graph: Optional[ReachabilityGraph] = None,
    check_semimodularity: bool = True,
) -> ConsistencyReport:
    """Full state-based consistency check of an STG.

    Checks (1) nonautoconcurrency, (2) switchover correctness via the marking
    encoding, and optionally (3) output semimodularity.
    """
    if graph is None:
        graph = build_reachability_graph(stg.net)
    autoconcurrent = find_autoconcurrent_pairs(stg, graph)
    switchover: list[str] = []
    try:
        encode_reachability_graph(
            stg, graph, initial_values=infer_initial_values(stg, graph), strict=True
        )
    except EncodingError as error:
        switchover.append(str(error))
    semimodularity: list[tuple[str, str]] = []
    if check_semimodularity:
        semimodularity = find_semimodularity_violations(stg, graph)

    consistent = not autoconcurrent and not switchover
    message = "consistent" if consistent else "inconsistent"
    if autoconcurrent:
        message += f"; autoconcurrent pairs: {autoconcurrent}"
    if switchover:
        message += f"; switchover violations: {switchover}"
    if semimodularity:
        message += f"; semimodularity violations: {semimodularity}"
    return ConsistencyReport(
        consistent=consistent,
        autoconcurrent_pairs=autoconcurrent,
        switchover_violations=switchover,
        semimodularity_violations=semimodularity,
        message=message,
    )


def adjacent_transition_pairs(
    stg: STG, graph: Optional[ReachabilityGraph] = None
) -> dict[str, set[str]]:
    """State-based ``next`` relation: for every transition, its successors.

    ``b`` is in ``next(a)`` when some feasible sequence fires ``a``, then
    fires ``b`` without any other transition of the same signal in between
    (Section II-B).  Computed by a BFS from every post-firing marking that
    stops at transitions of the signal.  This is the oracle for the
    structural adjacency characterization (Properties 4 and 5).
    """
    if graph is None:
        graph = build_reachability_graph(stg.net)
    result: dict[str, set[str]] = {t: set() for t in stg.transitions}
    for transition in stg.transitions:
        signal = stg.signal_of(transition)
        starts = [
            target
            for marking in graph.markings_enabling(transition)
            for label, target in graph.successors(marking)
            if label == transition
        ]
        seen: set[Marking] = set()
        frontier = list(dict.fromkeys(starts))
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            for label, target in graph.successors(current):
                if stg.signal_of(label) == signal:
                    result[transition].add(label)
                    continue
                if target not in seen:
                    frontier.append(target)
    return result
