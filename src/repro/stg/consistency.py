"""State-based consistency checking of STGs.

An STG satisfies the consistency condition when it has no autoconcurrent
transitions and every firing sequence is switchover correct (Section V-B).
This module checks consistency on the reachability graph — it is the oracle
against which the *structural* consistency algorithm
(:mod:`repro.structural.consistency`) is validated, and it also reports
output-semimodularity violations (Section II-B), the remaining specification
correctness condition besides CSC.

All checks run on the indexed view of the graph: per-state enabled bitmasks
against per-signal transition masks for autoconcurrency, a single pass over
the indexed edge list for semimodularity, and bitset-guarded BFS for the
``next`` relation.  The dict-based passes are retained as ``_reference_*``
oracles for the differential tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.petri.marking import Marking
from repro.petri.reachability import ReachabilityGraph, build_reachability_graph
from repro.stg.encoding import EncodingError, encode_reachability_graph, infer_initial_values
from repro.stg.stg import STG


@dataclass
class ConsistencyReport:
    """Result of the state-based consistency / semimodularity analysis."""

    consistent: bool
    autoconcurrent_pairs: list[tuple[str, str]] = field(default_factory=list)
    switchover_violations: list[str] = field(default_factory=list)
    semimodularity_violations: list[tuple[str, str]] = field(default_factory=list)
    message: str = ""

    @property
    def output_semimodular(self) -> bool:
        """True when no enabled output transition can be disabled."""
        return not self.semimodularity_violations

    def __bool__(self) -> bool:
        return self.consistent


def find_autoconcurrent_pairs(
    stg: STG, graph: ReachabilityGraph
) -> list[tuple[str, str]]:
    """Pairs of same-signal transitions that are simultaneously enabled."""
    indexed = graph.indexed()
    names = indexed.transition_names
    sig_masks = list(indexed.signal_transition_masks(stg).values())
    pairs: set[tuple[str, str]] = set()
    pairs_of_mask: dict[int, list[tuple[str, str]]] = {}
    for enabled in indexed.enabled:
        if enabled & (enabled - 1) == 0:
            continue  # fewer than two enabled transitions
        cached = pairs_of_mask.get(enabled)
        if cached is None:
            cached = []
            for sig_mask in sig_masks:
                both = enabled & sig_mask
                if both & (both - 1) == 0:
                    continue
                group = []
                while both:
                    low = both & -both
                    both ^= low
                    group.append(names[low.bit_length() - 1])
                group.sort()
                for i, first in enumerate(group):
                    for second in group[i + 1:]:
                        cached.append((first, second))
            pairs_of_mask[enabled] = cached
        pairs.update(cached)
    return sorted(pairs)


def find_semimodularity_violations(
    stg: STG, graph: ReachabilityGraph
) -> list[tuple[str, str]]:
    """Output transitions disabled by the firing of another transition.

    Returns pairs ``(disabled_output_transition, disabling_transition)``.
    """
    indexed = graph.indexed()
    names = indexed.transition_names
    sig_masks = indexed.signal_transition_masks(stg)
    output_tmask = 0
    same_signal_mask = []
    for t, name in enumerate(names):
        signal = stg.signal_of(name)
        if not stg.is_input(signal):
            output_tmask |= 1 << t
        same_signal_mask.append(sig_masks[signal])

    enabled = indexed.enabled
    violations: set[tuple[str, str]] = set()
    for source, fired, target in indexed.edges:
        outputs = enabled[source] & output_tmask
        if not outputs:
            continue
        # outputs enabled at the source, minus the fired transition and its
        # signal's other transitions, that are no longer enabled at the target
        candidates = outputs & ~same_signal_mask[fired] & ~enabled[target]
        while candidates:
            low = candidates & -candidates
            candidates ^= low
            violations.add((names[low.bit_length() - 1], names[fired]))
    return sorted(violations)


def check_consistency_state_based(
    stg: STG,
    graph: Optional[ReachabilityGraph] = None,
    check_semimodularity: bool = True,
) -> ConsistencyReport:
    """Full state-based consistency check of an STG.

    Checks (1) nonautoconcurrency, (2) switchover correctness via the marking
    encoding, and optionally (3) output semimodularity.
    """
    if graph is None:
        graph = build_reachability_graph(stg.net)
    autoconcurrent = find_autoconcurrent_pairs(stg, graph)
    switchover: list[str] = []
    try:
        encode_reachability_graph(
            stg, graph, initial_values=infer_initial_values(stg, graph), strict=True
        )
    except EncodingError as error:
        switchover.append(str(error))
    semimodularity: list[tuple[str, str]] = []
    if check_semimodularity:
        semimodularity = find_semimodularity_violations(stg, graph)

    consistent = not autoconcurrent and not switchover
    message = "consistent" if consistent else "inconsistent"
    if autoconcurrent:
        message += f"; autoconcurrent pairs: {autoconcurrent}"
    if switchover:
        message += f"; switchover violations: {switchover}"
    if semimodularity:
        message += f"; semimodularity violations: {semimodularity}"
    return ConsistencyReport(
        consistent=consistent,
        autoconcurrent_pairs=autoconcurrent,
        switchover_violations=switchover,
        semimodularity_violations=semimodularity,
        message=message,
    )


def adjacent_transition_pairs(
    stg: STG, graph: Optional[ReachabilityGraph] = None
) -> dict[str, set[str]]:
    """State-based ``next`` relation: for every transition, its successors.

    ``b`` is in ``next(a)`` when some feasible sequence fires ``a``, then
    fires ``b`` without any other transition of the same signal in between
    (Section II-B).  Computed by a bitset-guarded search from every
    post-firing state that stops at transitions of the signal.  This is the
    oracle for the structural adjacency characterization (Properties 4/5).
    """
    if graph is None:
        graph = build_reachability_graph(stg.net)
    indexed = graph.indexed()
    names = indexed.transition_names
    tindex = indexed.transition_index
    sig_masks = indexed.signal_transition_masks(stg)
    succ = indexed.succ

    # Post-firing start states per transition, collected in one edge pass.
    starts: dict[int, list[int]] = {}
    for _, t, target in indexed.edges:
        starts.setdefault(t, []).append(target)

    result: dict[str, set[str]] = {t: set() for t in stg.transitions}
    for transition in stg.transitions:
        t = tindex.get(transition)
        if t is None:
            continue
        sig_mask = sig_masks[stg.signal_of(transition)]
        successors = result[transition]
        seen = 0
        stack = []
        for state in starts.get(t, ()):
            bit = 1 << state
            if not seen & bit:
                seen |= bit
                stack.append(state)
        while stack:
            current = stack.pop()
            for label, target in succ[current]:
                if sig_mask >> label & 1:
                    successors.add(names[label])
                    continue
                bit = 1 << target
                if not seen & bit:
                    seen |= bit
                    stack.append(target)
    return result


# ---------------------------------------------------------------------- #
# Dict-based reference implementations (differential-test oracles)
# ---------------------------------------------------------------------- #


def _reference_find_autoconcurrent_pairs(
    stg: STG, graph: ReachabilityGraph
) -> list[tuple[str, str]]:
    """Reference autoconcurrency scan over name sets."""
    pairs: set[tuple[str, str]] = set()
    for marking in graph:
        enabled = sorted(graph.enabled_transitions(marking))
        for i, first in enumerate(enabled):
            for second in enabled[i + 1:]:
                if first == second:
                    continue
                if stg.signal_of(first) == stg.signal_of(second):
                    pairs.add((first, second))
    return sorted(pairs)


def _reference_find_semimodularity_violations(
    stg: STG, graph: ReachabilityGraph
) -> list[tuple[str, str]]:
    """Reference semimodularity scan over name sets."""
    violations: set[tuple[str, str]] = set()
    net = stg.net
    for marking in graph:
        enabled = graph.enabled_transitions(marking)
        outputs_enabled = [
            t for t in enabled if not stg.is_input(stg.signal_of(t))
        ]
        if not outputs_enabled:
            continue
        for fired, target in graph.successors(marking):
            for output in outputs_enabled:
                if output == fired:
                    continue
                if stg.signal_of(output) == stg.signal_of(fired):
                    # Same-signal conflicts are autoconcurrency/consistency
                    # matters, not semimodularity.
                    continue
                if not net.is_enabled(output, target):
                    violations.add((output, fired))
    return sorted(violations)


def _reference_adjacent_transition_pairs(
    stg: STG, graph: ReachabilityGraph
) -> dict[str, set[str]]:
    """Reference ``next`` relation over Marking objects."""
    result: dict[str, set[str]] = {t: set() for t in stg.transitions}
    for transition in stg.transitions:
        signal = stg.signal_of(transition)
        starts = [
            target
            for marking in graph.markings_enabling(transition)
            for label, target in graph.successors(marking)
            if label == transition
        ]
        seen: set[Marking] = set()
        frontier = list(dict.fromkeys(starts))
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            for label, target in graph.successors(current):
                if stg.signal_of(label) == signal:
                    result[transition].add(label)
                    continue
                if target not in seen:
                    frontier.append(target)
    return result
