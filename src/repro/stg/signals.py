"""Signal names, signal types, and transition labels.

Transitions of an STG are labelled with value changes of circuit signals:
``a+`` (rising), ``a-`` (falling), with an optional index to distinguish
multiple transitions of the same signal (``a+/2``).  The paper writes indexed
transitions as ``a+1`` / ``a*1``; the astg text format uses ``a+/1``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum


class SignalType(Enum):
    """Role of a signal in the specification."""

    INPUT = "input"
    OUTPUT = "output"
    INTERNAL = "internal"
    DUMMY = "dummy"

    @property
    def is_controlled_by_circuit(self) -> bool:
        """True for signals the synthesized circuit must produce."""
        return self in (SignalType.OUTPUT, SignalType.INTERNAL)


_LABEL_RE = re.compile(
    r"^(?P<signal>[A-Za-z_][A-Za-z0-9_\[\].]*)"
    r"(?P<direction>[+\-~])?"
    r"(?:/(?P<index>\d+))?$"
)


@dataclass(frozen=True)
class SignalTransition:
    """A labelled signal transition ``signal`` ``direction`` ``index``.

    ``direction`` is ``'+'`` for rising, ``'-'`` for falling and ``'~'`` for
    dummy/toggle events (kept for completeness; the synthesis flow requires
    ``+``/``-`` only).  ``index`` distinguishes multiple transitions of the
    same signal and direction.
    """

    signal: str
    direction: str
    index: int = 0

    def __post_init__(self) -> None:
        if self.direction not in ("+", "-", "~"):
            raise ValueError(f"invalid transition direction {self.direction!r}")
        if self.index < 0:
            raise ValueError("transition index must be non-negative")

    # ------------------------------------------------------------------ #

    @property
    def is_rising(self) -> bool:
        """True for a rising (``+``) transition."""
        return self.direction == "+"

    @property
    def is_falling(self) -> bool:
        """True for a falling (``-``) transition."""
        return self.direction == "-"

    @property
    def target_value(self) -> int:
        """Value of the signal after the transition fires (1 for ``+``)."""
        if self.direction == "+":
            return 1
        if self.direction == "-":
            return 0
        raise ValueError("dummy transitions have no target value")

    @property
    def source_value(self) -> int:
        """Value of the signal required for the transition to be consistent."""
        return 1 - self.target_value

    def opposite_direction(self) -> str:
        """The opposite switching direction (``+`` <-> ``-``)."""
        if self.direction == "+":
            return "-"
        if self.direction == "-":
            return "+"
        return "~"

    def name(self) -> str:
        """Canonical transition name, e.g. ``a+`` or ``a-/2``."""
        base = f"{self.signal}{self.direction}"
        if self.index:
            return f"{base}/{self.index}"
        return base

    def __str__(self) -> str:
        return self.name()


def parse_transition_label(label: str) -> SignalTransition:
    """Parse a transition label of the astg ``.g`` format.

    Accepts ``a+``, ``a-``, ``a+/1``, ``a~`` (dummy) and plain ``a`` (treated
    as a dummy event).
    """
    match = _LABEL_RE.match(label.strip())
    if not match:
        raise ValueError(f"cannot parse transition label {label!r}")
    signal = match.group("signal")
    direction = match.group("direction") or "~"
    index = int(match.group("index") or 0)
    return SignalTransition(signal, direction, index)


def format_transition(signal: str, direction: str, index: int = 0) -> str:
    """Canonical label for a signal transition."""
    return SignalTransition(signal, direction, index).name()
