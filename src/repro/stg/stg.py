"""The signal transition graph data structure.

An :class:`STG` is the triple ``(N, A, λ)`` of the paper: an underlying Petri
net, a set of signals partitioned into inputs and outputs (plus internal
signals added, for example, by state-signal insertion), and a labelling of
transitions with signal value changes.

Transition node names *are* their labels (``a+``, ``b-/2``), so the labelling
function is implicit and the underlying net can be analysed directly with the
:mod:`repro.petri` machinery.  Places that connect exactly one transition to
exactly one transition (the "implicit" places usually omitted from drawings
and from the ``.g`` format) are ordinary places named ``<t1,t2>``.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from typing import Optional

from repro.petri.marking import Marking
from repro.petri.net import PetriNet
from repro.stg.signals import SignalTransition, SignalType, parse_transition_label


class STG:
    """A signal transition graph."""

    def __init__(self, name: str = "stg"):
        self.name = name
        self.net = PetriNet(name)
        self._signals: dict[str, SignalType] = {}
        self._labels: dict[str, SignalTransition] = {}
        self._initial_values: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Signal management
    # ------------------------------------------------------------------ #

    def add_signal(self, name: str, signal_type: SignalType) -> None:
        """Declare a signal with its role (idempotent, role may be updated)."""
        self._signals[name] = signal_type

    @property
    def signals(self) -> dict[str, SignalType]:
        """Mapping from signal name to type."""
        return dict(self._signals)

    @property
    def signal_names(self) -> list[str]:
        """All declared signal names, in declaration order."""
        return list(self._signals)

    @property
    def input_signals(self) -> list[str]:
        """Signals driven by the environment."""
        return [s for s, t in self._signals.items() if t is SignalType.INPUT]

    @property
    def output_signals(self) -> list[str]:
        """Signals the circuit must produce (outputs)."""
        return [s for s, t in self._signals.items() if t is SignalType.OUTPUT]

    @property
    def internal_signals(self) -> list[str]:
        """Internal (state) signals the circuit must produce."""
        return [s for s, t in self._signals.items() if t is SignalType.INTERNAL]

    @property
    def non_input_signals(self) -> list[str]:
        """Signals implemented by the circuit (outputs + internals)."""
        return [
            s for s, t in self._signals.items() if t.is_controlled_by_circuit
        ]

    def signal_type(self, signal: str) -> SignalType:
        """The declared role of a signal."""
        return self._signals[signal]

    def is_input(self, signal: str) -> bool:
        """True if ``signal`` is an input signal."""
        return self._signals[signal] is SignalType.INPUT

    # ------------------------------------------------------------------ #
    # Initial signal values
    # ------------------------------------------------------------------ #

    def set_initial_value(self, signal: str, value: int) -> None:
        """Declare the binary value of ``signal`` at the initial marking."""
        if value not in (0, 1):
            raise ValueError("initial value must be 0 or 1")
        self._initial_values[signal] = value

    def set_initial_values(self, values: Mapping[str, int]) -> None:
        """Declare initial values for several signals."""
        for signal, value in values.items():
            self.set_initial_value(signal, value)

    @property
    def initial_values(self) -> dict[str, int]:
        """Declared initial binary values (may be partial)."""
        return dict(self._initial_values)

    # ------------------------------------------------------------------ #
    # Transitions and places
    # ------------------------------------------------------------------ #

    def add_transition(self, label: str) -> SignalTransition:
        """Add a labelled transition; the signal is auto-declared as input
        if unknown (parsers re-declare roles explicitly)."""
        transition = parse_transition_label(label)
        name = transition.name()
        self.net.add_transition(name)
        self._labels[name] = transition
        if transition.signal not in self._signals:
            self._signals[transition.signal] = SignalType.INPUT
        return transition

    def add_place(self, name: str, tokens: int = 0) -> None:
        """Add an explicit place."""
        self.net.add_place(name, tokens)

    def add_arc(self, source: str, target: str) -> None:
        """Add an arc; a transition→transition arc inserts an implicit place."""
        source_is_transition = self.net.is_transition(source)
        target_is_transition = self.net.is_transition(target)
        if source_is_transition and target_is_transition:
            implicit = f"<{source},{target}>"
            self.net.add_place(implicit)
            self.net.add_arc(source, implicit)
            self.net.add_arc(implicit, target)
        else:
            self.net.add_arc(source, target)

    def set_marking(self, places: Iterable[str] | Mapping[str, int]) -> None:
        """Set the initial marking from marked places or a count mapping.

        An iterable of names puts one token on each listed place (the safe
        case); a mapping assigns explicit token counts, for k-bounded STGs.
        Place names of the form ``<t1,t2>`` refer to implicit places.
        """
        for place in self.net.places:
            self.net.set_initial_tokens(place, 0)
        if isinstance(places, Mapping):
            for place, count in places.items():
                self.net.set_initial_tokens(place, count)
        else:
            for place in places:
                self.net.set_initial_tokens(place, 1)

    # ------------------------------------------------------------------ #
    # Label queries
    # ------------------------------------------------------------------ #

    @property
    def transitions(self) -> list[str]:
        """All transition names."""
        return self.net.transitions

    @property
    def places(self) -> list[str]:
        """All place names (explicit and implicit)."""
        return self.net.places

    def label(self, transition: str) -> SignalTransition:
        """The signal transition labelling a net transition."""
        return self._labels[transition]

    def signal_of(self, transition: str) -> str:
        """The signal of a transition."""
        return self._labels[transition].signal

    def direction_of(self, transition: str) -> str:
        """The switching direction (``+``/``-``) of a transition."""
        return self._labels[transition].direction

    def transitions_of_signal(self, signal: str) -> list[str]:
        """All transitions of one signal."""
        return [t for t, lab in self._labels.items() if lab.signal == signal]

    def rising_transitions(self, signal: str) -> list[str]:
        """All rising transitions of a signal."""
        return [
            t for t, lab in self._labels.items()
            if lab.signal == signal and lab.is_rising
        ]

    def falling_transitions(self, signal: str) -> list[str]:
        """All falling transitions of a signal."""
        return [
            t for t, lab in self._labels.items()
            if lab.signal == signal and lab.is_falling
        ]

    def transitions_by_direction(self, signal: str, direction: str) -> list[str]:
        """Transitions of a signal with a given direction (``+`` or ``-``)."""
        return [
            t for t, lab in self._labels.items()
            if lab.signal == signal and lab.direction == direction
        ]

    @property
    def initial_marking(self) -> Marking:
        """The initial marking of the underlying net."""
        return self.net.initial_marking

    # ------------------------------------------------------------------ #
    # Convenience construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_edges(
        cls,
        name: str,
        inputs: Iterable[str],
        outputs: Iterable[str],
        edges: Iterable[tuple[str, str]],
        marking: Iterable[str],
        internal: Iterable[str] = (),
        initial_values: Optional[Mapping[str, int]] = None,
    ) -> "STG":
        """Build an STG from transition/place edge pairs.

        ``edges`` may connect transitions directly (an implicit place is
        inserted) or go through explicit place names.  Any edge endpoint that
        parses as a signal transition of a declared signal is treated as a
        transition; everything else is a place.
        """
        stg = cls(name)
        declared: set[str] = set()
        for signal in inputs:
            stg.add_signal(signal, SignalType.INPUT)
            declared.add(signal)
        for signal in outputs:
            stg.add_signal(signal, SignalType.OUTPUT)
            declared.add(signal)
        for signal in internal:
            stg.add_signal(signal, SignalType.INTERNAL)
            declared.add(signal)

        def is_transition_label(token: str) -> bool:
            try:
                parsed = parse_transition_label(token)
            except ValueError:
                return False
            return parsed.signal in declared and parsed.direction in "+-"

        # First pass: create nodes.
        for source, target in edges:
            for token in (source, target):
                if stg.net.has_node(token):
                    continue
                if is_transition_label(token):
                    stg.add_transition(token)
                else:
                    stg.add_place(token)
        # Second pass: create arcs.
        for source, target in edges:
            stg.add_arc(source, target)
        stg.set_marking(marking)
        if initial_values:
            stg.set_initial_values(initial_values)
        return stg

    def copy(self, name: Optional[str] = None) -> "STG":
        """A deep copy of the STG."""
        clone = STG(name or self.name)
        clone.net = self.net.copy(name or self.name)
        clone._signals = dict(self._signals)
        clone._labels = dict(self._labels)
        clone._initial_values = dict(self._initial_values)
        return clone

    # ------------------------------------------------------------------ #
    # Summary
    # ------------------------------------------------------------------ #

    def __repr__(self) -> str:
        return (
            f"STG({self.name!r}, signals={len(self._signals)}, "
            f"|P|={self.net.num_places()}, |T|={self.net.num_transitions()})"
        )

    def describe(self) -> str:
        """Multi-line human readable summary."""
        lines = [
            f"STG {self.name}",
            f"  inputs : {', '.join(self.input_signals) or '-'}",
            f"  outputs: {', '.join(self.output_signals) or '-'}",
        ]
        if self.internal_signals:
            lines.append(f"  internal: {', '.join(self.internal_signals)}")
        lines.append(
            f"  places: {self.net.num_places()}  transitions: "
            f"{self.net.num_transitions()}  arcs: {self.net.num_arcs()}"
        )
        marked = ", ".join(sorted(self.initial_marking.marked_places))
        lines.append(f"  marking: {marked}")
        return "\n".join(lines)
