"""Reachability-graph generation (exhaustive token-flow analysis).

This is the state-based substrate that structural methods avoid; it is needed
here both as the correctness oracle for the structural algorithms (on small
and medium STGs) and as the baseline synthesis engine used for the CPU-time
comparisons of Tables VI and VII.

The exploration itself runs on the bit-packed compiled kernel
(:mod:`repro.petri.compiled`): markings are plain ints during BFS and are
converted back to :class:`~repro.petri.marking.Marking` objects only at the
API boundary.  Nets that are not safe (or markings that cannot be packed)
transparently fall back to the dict-based reference implementation, which is
also kept as the oracle for the kernel's differential tests.
"""

from __future__ import annotations

import random
from collections import deque
from collections.abc import Iterable, Iterator
from typing import Optional

from repro.petri.compiled import (
    BOUNDED_BITS_LADDER,
    BoundExceededError,
    CompiledBoundedNet,
    CompiledNet,
    StateSpaceLimitExceeded,
    UnsafeNetError,
    compile_bounded_net,
    compile_net,
)
from repro.petri.marking import Marking
from repro.petri.net import PetriNet

__all__ = [
    "IndexedGraph",
    "ReachabilityGraph",
    "StateSpaceLimitExceeded",
    "build_reachability_graph",
    "count_reachable_markings",
    "random_walk",
    "concurrent_pairs_from_rg",
    "marking_sets_of_places",
]


class ReachabilityGraph:
    """The reachability graph (RG) of a Petri net.

    Vertices are :class:`~repro.petri.marking.Marking` objects; edges are
    labelled with the fired transition.  Graphs produced by the compiled
    kernel additionally carry the packed form of every vertex, which the
    bulk queries (:func:`concurrent_pairs_from_rg`,
    :func:`marking_sets_of_places`) use to stay on int markings.
    """

    def __init__(self, net: PetriNet, initial: Marking):
        self.net = net
        self.initial = initial
        self._successors: dict[Marking, list[tuple[str, Marking]]] = {}
        self._predecessors: dict[Marking, list[tuple[str, Marking]]] = {}
        # Packed payload (populated by the compiled builder only).
        self._compiled: Optional[CompiledNet] = None
        self._packed: Optional[list[int]] = None
        self._packed_enabled: Optional[list[int]] = None
        self._marking_list: Optional[list[Marking]] = None
        self._packed_edges: Optional[list[tuple[int, int, int]]] = None
        self._indexed: Optional["IndexedGraph"] = None
        # Graphs built by the reference BFS are materialized from the start;
        # the compiled builder defers Marking objects and adjacency dicts
        # until a name-based accessor needs them (purely packed consumers —
        # the encoder, the region/coding/consistency algorithms, the mapped
        # verifier — never pay for them).
        self._materialized = True

    def _ensure_materialized(self) -> None:
        """Build the name-based view from the packed payload on demand."""
        if self._materialized:
            return
        self._materialized = True
        compiled = self._compiled
        markings = [self.initial]
        unpack = compiled.unpack
        markings.extend(unpack(bits) for bits in self._packed[1:])
        self._marking_list = markings
        successors = self._successors
        predecessors = self._predecessors
        for marking in markings:
            successors[marking] = []
            predecessors[marking] = []
        transition_names = compiled.transition_names
        for source, transition, target in self._packed_edges:
            label = transition_names[transition]
            source_marking = markings[source]
            target_marking = markings[target]
            successors[source_marking].append((label, target_marking))
            predecessors[target_marking].append((label, source_marking))

    # ------------------------------------------------------------------ #
    # Construction (used by the builder)
    # ------------------------------------------------------------------ #

    def _add_marking(self, marking: Marking) -> None:
        self._successors.setdefault(marking, [])
        self._predecessors.setdefault(marking, [])

    def _add_edge(self, source: Marking, transition: str, target: Marking) -> None:
        self._add_marking(source)
        self._add_marking(target)
        self._successors[source].append((transition, target))
        self._predecessors[target].append((transition, source))

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    @property
    def markings(self) -> list[Marking]:
        """All reachable markings (discovery order)."""
        self._ensure_materialized()
        return list(self._successors)

    def __len__(self) -> int:
        if self._packed is not None:
            return len(self._packed)
        return len(self._successors)

    def __contains__(self, marking: Marking) -> bool:
        self._ensure_materialized()
        return marking in self._successors

    def __iter__(self) -> Iterator[Marking]:
        self._ensure_materialized()
        return iter(self._successors)

    def successors(self, marking: Marking) -> list[tuple[str, Marking]]:
        """Outgoing edges of a marking as ``(transition, target)`` pairs."""
        self._ensure_materialized()
        return list(self._successors[marking])

    def predecessors(self, marking: Marking) -> list[tuple[str, Marking]]:
        """Incoming edges of a marking as ``(transition, source)`` pairs."""
        self._ensure_materialized()
        return list(self._predecessors[marking])

    def edges(self) -> Iterator[tuple[Marking, str, Marking]]:
        """Iterate over all edges as ``(source, transition, target)``."""
        self._ensure_materialized()
        for source, items in self._successors.items():
            for transition, target in items:
                yield source, transition, target

    def num_edges(self) -> int:
        """Total number of edges."""
        if self._packed_edges is not None:
            return len(self._packed_edges)
        return sum(len(items) for items in self._successors.values())

    def enabled_transitions(self, marking: Marking) -> set[str]:
        """Transitions enabled at a marking (labels of outgoing edges)."""
        self._ensure_materialized()
        return {transition for transition, _ in self._successors[marking]}

    def markings_enabling(self, transition: str) -> list[Marking]:
        """All markings at which ``transition`` is enabled."""
        self._ensure_materialized()
        return [m for m, items in self._successors.items()
                if any(label == transition for label, _ in items)]

    def is_deadlock(self, marking: Marking) -> bool:
        """True if no transition is enabled at the marking."""
        self._ensure_materialized()
        return not self._successors[marking]

    def deadlocks(self) -> list[Marking]:
        """All deadlocked markings."""
        self._ensure_materialized()
        return [m for m in self._successors if self.is_deadlock(m)]

    def fired_transitions(self) -> set[str]:
        """Transitions appearing as an edge label somewhere in the graph."""
        self._ensure_materialized()
        labels: set[str] = set()
        for items in self._successors.values():
            labels.update(label for label, _ in items)
        return labels

    def is_strongly_connected(self) -> bool:
        """True if every marking can reach every other marking."""
        self._ensure_materialized()
        if not self._successors:
            return False
        start = next(iter(self._successors))
        if len(self._forward_reachable(start)) != len(self._successors):
            return False
        if len(self._backward_reachable(start)) != len(self._successors):
            return False
        return True

    def _forward_reachable(self, start: Marking) -> set[Marking]:
        seen = {start}
        frontier = deque([start])
        while frontier:
            current = frontier.popleft()
            for _, target in self._successors[current]:
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return seen

    def _backward_reachable(self, start: Marking) -> set[Marking]:
        seen = {start}
        frontier = deque([start])
        while frontier:
            current = frontier.popleft()
            for _, source in self._predecessors[current]:
                if source not in seen:
                    seen.add(source)
                    frontier.append(source)
        return seen

    # ------------------------------------------------------------------ #
    # Index-space view (the compiled state-based substrate)
    # ------------------------------------------------------------------ #

    def indexed(self) -> "IndexedGraph":
        """Integer-index view of the graph for the compiled state-based flow.

        Markings become dense indices in discovery order, transitions become
        the compiled transition indices (or the net's declaration order for
        reference-built graphs), adjacency becomes index pairs, and the
        enabled set of every marking becomes a bitmask over transition
        indices.  The view is built once and cached; graphs built by the
        bit-packed kernel reuse the kernel's own payload, graphs built by the
        dict-based fallback are indexed from their adjacency dicts, so every
        downstream consumer (encoding, regions, coding, consistency) runs the
        same integer algorithms regardless of how the graph was produced.
        """
        view = self._indexed
        if view is None:
            view = IndexedGraph(self)
            self._indexed = view
        return view


class IndexedGraph:
    """Dense-index payload of a :class:`ReachabilityGraph`.

    ``marking_list[i]`` is the marking of state ``i`` (discovery order),
    ``succ[i]`` / ``pred[i]`` hold ``(transition_index, state_index)`` pairs
    in the same order as the name-based adjacency, ``enabled[i]`` is the
    bitmask over transition indices of the transitions enabled at state
    ``i``, and ``edges`` lists ``(source, transition, target)`` triples in
    BFS firing order — the order in which the reference algorithms visit
    them, which is what lets single passes over ``edges`` replace reference
    BFS traversals exactly.
    """

    __slots__ = (
        "_graph",
        "_marking_list",
        "_index_of",
        "transition_names",
        "transition_index",
        "edges",
        "succ",
        "pred",
        "enabled",
    )

    def __init__(self, graph: ReachabilityGraph):
        self._graph = graph
        self._marking_list: Optional[list[Marking]] = None
        self._index_of: Optional[dict[Marking, int]] = None
        compiled = graph._compiled
        if (
            compiled is not None
            and graph._packed_edges is not None
            and graph._packed_enabled is not None
        ):
            # Marking objects stay deferred: purely packed consumers never
            # touch `marking_list`/`index_of`, so the unpacking cost is only
            # paid by name-based boundary queries.
            self.transition_names = compiled.transition_names
            self.transition_index = compiled.transition_index
            self.edges = graph._packed_edges
            self.enabled = graph._packed_enabled
        else:
            graph._ensure_materialized()
            self._marking_list = list(graph._successors)
            names = graph.net.transitions
            self.transition_names = names
            self.transition_index = {name: i for i, name in enumerate(names)}
            index_of = {m: i for i, m in enumerate(self._marking_list)}
            tindex = self.transition_index
            edges: list[tuple[int, int, int]] = []
            enabled: list[int] = []
            for source, marking in enumerate(self._marking_list):
                mask = 0
                for label, target in graph._successors[marking]:
                    t = tindex[label]
                    mask |= 1 << t
                    edges.append((source, t, index_of[target]))
                enabled.append(mask)
            self.edges = edges
            self.enabled = enabled
            self._index_of = index_of
        succ: list[list[tuple[int, int]]] = [[] for _ in self.enabled]
        pred: list[list[tuple[int, int]]] = [[] for _ in self.enabled]
        for source, transition, target in self.edges:
            succ[source].append((transition, target))
            pred[target].append((transition, source))
        self.succ = succ
        self.pred = pred

    @property
    def marking_list(self) -> list[Marking]:
        """Markings by state index (materializes the name-based view)."""
        markings = self._marking_list
        if markings is None:
            self._graph._ensure_materialized()
            markings = self._graph._marking_list
            self._marking_list = markings
        return markings

    @property
    def index_of(self) -> dict[Marking, int]:
        """Marking → state index (materializes the name-based view)."""
        index_of = self._index_of
        if index_of is None:
            index_of = {m: i for i, m in enumerate(self.marking_list)}
            self._index_of = index_of
        return index_of

    def __len__(self) -> int:
        return len(self.enabled)

    def signal_transition_masks(self, stg) -> dict[str, int]:
        """Per-signal bitmask over this graph's transition indices.

        ``stg`` is anything with ``signal_names`` and
        ``transitions_of_signal``; transitions the net does not know about
        simply contribute no bit.  Shared by the region, coding and
        consistency algorithms so the indexing convention lives in one
        place.
        """
        tindex = self.transition_index
        masks: dict[str, int] = {}
        for signal in stg.signal_names:
            mask = 0
            for name in stg.transitions_of_signal(signal):
                t = tindex.get(name)
                if t is not None:
                    mask |= 1 << t
            masks[signal] = mask
        return masks


def build_reachability_graph(
    net: PetriNet,
    initial: Optional[Marking] = None,
    max_markings: Optional[int] = None,
) -> ReachabilityGraph:
    """Breadth-first exhaustive exploration of the reachable markings.

    Runs on the bit-packed kernel (markings are ints during the BFS) and
    falls back to the dict-based reference exploration when the net is not
    safe.  Both paths produce identical graphs for safe nets — the
    differential tests in ``tests/test_compiled_kernel.py`` enforce this.

    Parameters
    ----------
    net:
        The Petri net.
    initial:
        Starting marking (default: the net's initial marking).
    max_markings:
        Optional safety bound; exceeding it raises
        :class:`StateSpaceLimitExceeded`.  Used by benchmarks that demonstrate
        the state-explosion of the baseline.
    """
    start = initial if initial is not None else net.initial_marking
    compiled = compile_net(net)
    try:
        packed_start = compiled.pack(start)
        order, enabled, edges = compiled.explore(
            packed_start, max_markings=max_markings, want_edges=True
        )
    except UnsafeNetError:
        bounded = _bounded_explore(net, start, max_markings, want_edges=True)
        if bounded is None:
            return _reference_build_reachability_graph(net, start, max_markings)
        compiled, order, enabled, edges = bounded
    graph = ReachabilityGraph(net, start)
    graph._compiled = compiled
    graph._packed = order
    graph._packed_enabled = enabled
    graph._packed_edges = edges
    graph._materialized = False
    return graph


def count_reachable_markings(
    net: PetriNet,
    initial: Optional[Marking] = None,
    max_markings: Optional[int] = None,
) -> int:
    """Count reachable markings without storing the edges."""
    start = initial if initial is not None else net.initial_marking
    compiled = compile_net(net)
    try:
        packed_start = compiled.pack(start)
        order, _, _ = compiled.explore(packed_start, max_markings=max_markings)
    except UnsafeNetError:
        bounded = _bounded_explore(net, start, max_markings, want_edges=False)
        if bounded is None:
            return _reference_count_reachable_markings(net, start, max_markings)
        return len(bounded[1])
    return len(order)


def _bounded_explore(
    net: PetriNet,
    start: Marking,
    max_markings: Optional[int],
    want_edges: bool,
):
    """Run the k-bounded kernel, widening the fields until the net fits.

    Returns ``(compiled, order, enabled, edges)`` on success, or ``None``
    when the net is not 255-bounded (or the marking is unpackable) and the
    caller must fall back to the unbounded reference semantics.
    ``StateSpaceLimitExceeded`` propagates — the reference BFS would hit the
    same limit.
    """
    for bits in BOUNDED_BITS_LADDER:
        compiled = compile_bounded_net(net, bits)
        try:
            packed_start = compiled.pack(start)
            order, enabled, edges = compiled.explore(
                packed_start, max_markings=max_markings, want_edges=want_edges
            )
        except BoundExceededError:
            continue
        except UnsafeNetError:
            return None
        return compiled, order, enabled, edges
    return None


def random_walk(
    net: PetriNet,
    steps: int,
    initial: Optional[Marking] = None,
    seed: int = 0,
) -> list[str]:
    """A pseudo-random feasible firing sequence of at most ``steps`` firings.

    Used by property-based tests and by the hazard simulator to exercise
    arbitrary interleavings without building the full reachability graph.
    """
    rng = random.Random(seed)
    current = initial if initial is not None else net.initial_marking
    sequence: list[str] = []
    for _ in range(steps):
        enabled = net.enabled_transitions(current)
        if not enabled:
            break
        choice = rng.choice(enabled)
        sequence.append(choice)
        current = net.fire(choice, current)
    return sequence


def concurrent_pairs_from_rg(graph: ReachabilityGraph) -> set[frozenset[str]]:
    """Exact transition-concurrency pairs extracted from a reachability graph.

    Two transitions are concurrent when both are enabled at some marking and
    firing one does not disable the other (Section II-B).  This is the oracle
    against which the structural concurrency relation is validated.
    """
    compiled = graph._compiled
    if compiled is None or graph._packed is None or graph._packed_enabled is None:
        return _reference_concurrent_pairs_from_rg(graph)
    if isinstance(compiled, CompiledBoundedNet):
        return _bounded_concurrent_pairs_from_rg(graph, compiled)
    pre_masks = compiled.pre_masks
    post_masks = compiled.post_masks
    not_pre = compiled._not_pre
    confirmed: set[tuple[int, int]] = set()
    for marking, enabled in zip(graph._packed, graph._packed_enabled):
        if enabled & (enabled - 1) == 0:
            continue  # fewer than two enabled transitions
        transitions = []
        pending = enabled
        while pending:
            low = pending & -pending
            pending ^= low
            transitions.append(low.bit_length() - 1)
        for i, first in enumerate(transitions):
            after_first = (marking & not_pre[first]) | post_masks[first]
            for second in transitions[i + 1:]:
                if (first, second) in confirmed:
                    continue
                pre_second = pre_masks[second]
                if after_first & pre_second != pre_second:
                    continue
                after_second = (marking & not_pre[second]) | post_masks[second]
                pre_first = pre_masks[first]
                if after_second & pre_first == pre_first:
                    confirmed.add((first, second))
    names = compiled.transition_names
    return {frozenset((names[a], names[b])) for a, b in confirmed}


def _bounded_concurrent_pairs_from_rg(
    graph: ReachabilityGraph, compiled: "CompiledBoundedNet"
) -> set[frozenset[str]]:
    """Concurrency extraction over k-bit packed markings (SWAR enabled test)."""
    pre_guards = compiled.pre_guards
    pre_subs = compiled.pre_subs
    deltas = compiled.deltas
    confirmed: set[tuple[int, int]] = set()
    for marking, enabled in zip(graph._packed, graph._packed_enabled):
        if enabled & (enabled - 1) == 0:
            continue  # fewer than two enabled transitions
        transitions = []
        pending = enabled
        while pending:
            low = pending & -pending
            pending ^= low
            transitions.append(low.bit_length() - 1)
        for i, first in enumerate(transitions):
            after_first = marking + deltas[first]
            for second in transitions[i + 1:]:
                if (first, second) in confirmed:
                    continue
                guard = pre_guards[second]
                if ((after_first | guard) - pre_subs[second]) & guard != guard:
                    continue
                after_second = marking + deltas[second]
                guard = pre_guards[first]
                if ((after_second | guard) - pre_subs[first]) & guard == guard:
                    confirmed.add((first, second))
    names = compiled.transition_names
    return {frozenset((names[a], names[b])) for a, b in confirmed}


def marking_sets_of_places(graph: ReachabilityGraph, places: Iterable[str]) -> dict[str, set[Marking]]:
    """For every place, the set of reachable markings in which it is marked.

    This is the exact *marked region* MR(p) (Definition 6) computed from the
    reachability graph — the oracle for the structural cover-cube tests.
    """
    compiled = graph._compiled
    if compiled is None or graph._packed is None:
        return _reference_marking_sets_of_places(graph, places)
    graph._ensure_materialized()
    result: dict[str, set[Marking]] = {place: set() for place in places}
    packed = graph._packed
    marking_list = graph._marking_list
    if isinstance(compiled, CompiledBoundedNet):
        width = compiled._width
        field_mask = compiled.field_mask
        for place, bucket in result.items():
            index = compiled.place_index.get(place)
            if index is None:
                continue
            field = field_mask << (index * width)
            for bits, marking in zip(packed, marking_list):
                if bits & field:
                    bucket.add(marking)
        return result
    for place, bucket in result.items():
        index = compiled.place_index.get(place)
        if index is None:
            continue
        bit = 1 << index
        for bits, marking in zip(packed, marking_list):
            if bits & bit:
                bucket.add(marking)
    return result


# ---------------------------------------------------------------------- #
# Dict-based reference implementations
#
# These are the original Marking-object paths.  They serve two purposes:
# the automatic fallback for nets the kernel cannot pack (non-safe nets,
# markings on unknown places), and the oracle side of the differential
# tests that pin the compiled kernel to the reference semantics.
# ---------------------------------------------------------------------- #


def _reference_build_reachability_graph(
    net: PetriNet,
    start: Marking,
    max_markings: Optional[int] = None,
) -> ReachabilityGraph:
    """Reference BFS over :class:`Marking` objects (multiset semantics)."""
    graph = ReachabilityGraph(net, start)
    graph._add_marking(start)
    frontier: deque[Marking] = deque([start])
    seen: set[Marking] = {start}
    while frontier:
        current = frontier.popleft()
        for transition in net.enabled_transitions(current):
            target = net.fire(transition, current)
            if target not in seen:
                if max_markings is not None and len(seen) >= max_markings:
                    raise StateSpaceLimitExceeded(
                        f"more than {max_markings} reachable markings"
                    )
                seen.add(target)
                frontier.append(target)
            graph._add_edge(current, transition, target)
    return graph


def _reference_count_reachable_markings(
    net: PetriNet,
    start: Marking,
    max_markings: Optional[int] = None,
) -> int:
    """Reference marking count over :class:`Marking` objects."""
    frontier: deque[Marking] = deque([start])
    seen: set[Marking] = {start}
    while frontier:
        current = frontier.popleft()
        for transition in net.enabled_transitions(current):
            target = net.fire(transition, current)
            if target not in seen:
                if max_markings is not None and len(seen) >= max_markings:
                    raise StateSpaceLimitExceeded(
                        f"more than {max_markings} reachable markings"
                    )
                seen.add(target)
                frontier.append(target)
    return len(seen)


def _reference_concurrent_pairs_from_rg(graph: ReachabilityGraph) -> set[frozenset[str]]:
    """Reference concurrency extraction over :class:`Marking` objects."""
    net = graph.net
    pairs: set[frozenset[str]] = set()
    for marking in graph:
        enabled = sorted(graph.enabled_transitions(marking))
        for i, first in enumerate(enabled):
            after_first = net.fire(first, marking)
            for second in enabled[i + 1:]:
                if not net.is_enabled(second, after_first):
                    continue
                after_second = net.fire(second, marking)
                if net.is_enabled(first, after_second):
                    pairs.add(frozenset((first, second)))
    return pairs


def _reference_marking_sets_of_places(
    graph: ReachabilityGraph, places: Iterable[str]
) -> dict[str, set[Marking]]:
    """Reference marked-region extraction over :class:`Marking` objects."""
    result: dict[str, set[Marking]] = {place: set() for place in places}
    for marking in graph:
        for place in marking.marked_places:
            if place in result:
                result[place].add(marking)
    return result
