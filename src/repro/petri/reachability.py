"""Reachability-graph generation (exhaustive token-flow analysis).

This is the state-based substrate that structural methods avoid; it is needed
here both as the correctness oracle for the structural algorithms (on small
and medium STGs) and as the baseline synthesis engine used for the CPU-time
comparisons of Tables VI and VII.

The exploration itself runs on the bit-packed compiled kernel
(:mod:`repro.petri.compiled`): markings are plain ints during BFS and are
converted back to :class:`~repro.petri.marking.Marking` objects only at the
API boundary.  Nets that are not safe (or markings that cannot be packed)
transparently fall back to the dict-based reference implementation, which is
also kept as the oracle for the kernel's differential tests.
"""

from __future__ import annotations

import random
from collections import deque
from collections.abc import Iterable, Iterator
from typing import Optional

from repro.petri.compiled import (
    CompiledNet,
    StateSpaceLimitExceeded,
    UnsafeNetError,
    compile_net,
)
from repro.petri.marking import Marking
from repro.petri.net import PetriNet

__all__ = [
    "ReachabilityGraph",
    "StateSpaceLimitExceeded",
    "build_reachability_graph",
    "count_reachable_markings",
    "random_walk",
    "concurrent_pairs_from_rg",
    "marking_sets_of_places",
]


class ReachabilityGraph:
    """The reachability graph (RG) of a Petri net.

    Vertices are :class:`~repro.petri.marking.Marking` objects; edges are
    labelled with the fired transition.  Graphs produced by the compiled
    kernel additionally carry the packed form of every vertex, which the
    bulk queries (:func:`concurrent_pairs_from_rg`,
    :func:`marking_sets_of_places`) use to stay on int markings.
    """

    def __init__(self, net: PetriNet, initial: Marking):
        self.net = net
        self.initial = initial
        self._successors: dict[Marking, list[tuple[str, Marking]]] = {}
        self._predecessors: dict[Marking, list[tuple[str, Marking]]] = {}
        # Packed payload (populated by the compiled builder only).
        self._compiled: Optional[CompiledNet] = None
        self._packed: Optional[list[int]] = None
        self._packed_enabled: Optional[list[int]] = None
        self._marking_list: Optional[list[Marking]] = None

    # ------------------------------------------------------------------ #
    # Construction (used by the builder)
    # ------------------------------------------------------------------ #

    def _add_marking(self, marking: Marking) -> None:
        self._successors.setdefault(marking, [])
        self._predecessors.setdefault(marking, [])

    def _add_edge(self, source: Marking, transition: str, target: Marking) -> None:
        self._add_marking(source)
        self._add_marking(target)
        self._successors[source].append((transition, target))
        self._predecessors[target].append((transition, source))

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    @property
    def markings(self) -> list[Marking]:
        """All reachable markings (discovery order)."""
        return list(self._successors)

    def __len__(self) -> int:
        return len(self._successors)

    def __contains__(self, marking: Marking) -> bool:
        return marking in self._successors

    def __iter__(self) -> Iterator[Marking]:
        return iter(self._successors)

    def successors(self, marking: Marking) -> list[tuple[str, Marking]]:
        """Outgoing edges of a marking as ``(transition, target)`` pairs."""
        return list(self._successors[marking])

    def predecessors(self, marking: Marking) -> list[tuple[str, Marking]]:
        """Incoming edges of a marking as ``(transition, source)`` pairs."""
        return list(self._predecessors[marking])

    def edges(self) -> Iterator[tuple[Marking, str, Marking]]:
        """Iterate over all edges as ``(source, transition, target)``."""
        for source, items in self._successors.items():
            for transition, target in items:
                yield source, transition, target

    def num_edges(self) -> int:
        """Total number of edges."""
        return sum(len(items) for items in self._successors.values())

    def enabled_transitions(self, marking: Marking) -> set[str]:
        """Transitions enabled at a marking (labels of outgoing edges)."""
        return {transition for transition, _ in self._successors[marking]}

    def markings_enabling(self, transition: str) -> list[Marking]:
        """All markings at which ``transition`` is enabled."""
        return [m for m, items in self._successors.items()
                if any(label == transition for label, _ in items)]

    def is_deadlock(self, marking: Marking) -> bool:
        """True if no transition is enabled at the marking."""
        return not self._successors[marking]

    def deadlocks(self) -> list[Marking]:
        """All deadlocked markings."""
        return [m for m in self._successors if self.is_deadlock(m)]

    def fired_transitions(self) -> set[str]:
        """Transitions appearing as an edge label somewhere in the graph."""
        labels: set[str] = set()
        for items in self._successors.values():
            labels.update(label for label, _ in items)
        return labels

    def is_strongly_connected(self) -> bool:
        """True if every marking can reach every other marking."""
        if not self._successors:
            return False
        start = next(iter(self._successors))
        if len(self._forward_reachable(start)) != len(self._successors):
            return False
        if len(self._backward_reachable(start)) != len(self._successors):
            return False
        return True

    def _forward_reachable(self, start: Marking) -> set[Marking]:
        seen = {start}
        frontier = deque([start])
        while frontier:
            current = frontier.popleft()
            for _, target in self._successors[current]:
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return seen

    def _backward_reachable(self, start: Marking) -> set[Marking]:
        seen = {start}
        frontier = deque([start])
        while frontier:
            current = frontier.popleft()
            for _, source in self._predecessors[current]:
                if source not in seen:
                    seen.add(source)
                    frontier.append(source)
        return seen


def build_reachability_graph(
    net: PetriNet,
    initial: Optional[Marking] = None,
    max_markings: Optional[int] = None,
) -> ReachabilityGraph:
    """Breadth-first exhaustive exploration of the reachable markings.

    Runs on the bit-packed kernel (markings are ints during the BFS) and
    falls back to the dict-based reference exploration when the net is not
    safe.  Both paths produce identical graphs for safe nets — the
    differential tests in ``tests/test_compiled_kernel.py`` enforce this.

    Parameters
    ----------
    net:
        The Petri net.
    initial:
        Starting marking (default: the net's initial marking).
    max_markings:
        Optional safety bound; exceeding it raises
        :class:`StateSpaceLimitExceeded`.  Used by benchmarks that demonstrate
        the state-explosion of the baseline.
    """
    start = initial if initial is not None else net.initial_marking
    compiled = compile_net(net)
    try:
        packed_start = compiled.pack(start)
        order, enabled, edges = compiled.explore(
            packed_start, max_markings=max_markings, want_edges=True
        )
    except UnsafeNetError:
        return _reference_build_reachability_graph(net, start, max_markings)
    graph = ReachabilityGraph(net, start)
    unpack = compiled.unpack
    markings = [start]
    markings.extend(unpack(bits) for bits in order[1:])
    successors = graph._successors
    predecessors = graph._predecessors
    for marking in markings:
        successors[marking] = []
        predecessors[marking] = []
    transition_names = compiled.transition_names
    for source, transition, target in edges:
        label = transition_names[transition]
        source_marking = markings[source]
        target_marking = markings[target]
        successors[source_marking].append((label, target_marking))
        predecessors[target_marking].append((label, source_marking))
    graph._compiled = compiled
    graph._packed = order
    graph._packed_enabled = enabled
    graph._marking_list = markings
    return graph


def count_reachable_markings(
    net: PetriNet,
    initial: Optional[Marking] = None,
    max_markings: Optional[int] = None,
) -> int:
    """Count reachable markings without storing the edges."""
    start = initial if initial is not None else net.initial_marking
    compiled = compile_net(net)
    try:
        packed_start = compiled.pack(start)
        order, _, _ = compiled.explore(packed_start, max_markings=max_markings)
    except UnsafeNetError:
        return _reference_count_reachable_markings(net, start, max_markings)
    return len(order)


def random_walk(
    net: PetriNet,
    steps: int,
    initial: Optional[Marking] = None,
    seed: int = 0,
) -> list[str]:
    """A pseudo-random feasible firing sequence of at most ``steps`` firings.

    Used by property-based tests and by the hazard simulator to exercise
    arbitrary interleavings without building the full reachability graph.
    """
    rng = random.Random(seed)
    current = initial if initial is not None else net.initial_marking
    sequence: list[str] = []
    for _ in range(steps):
        enabled = net.enabled_transitions(current)
        if not enabled:
            break
        choice = rng.choice(enabled)
        sequence.append(choice)
        current = net.fire(choice, current)
    return sequence


def concurrent_pairs_from_rg(graph: ReachabilityGraph) -> set[frozenset[str]]:
    """Exact transition-concurrency pairs extracted from a reachability graph.

    Two transitions are concurrent when both are enabled at some marking and
    firing one does not disable the other (Section II-B).  This is the oracle
    against which the structural concurrency relation is validated.
    """
    compiled = graph._compiled
    if compiled is None or graph._packed is None or graph._packed_enabled is None:
        return _reference_concurrent_pairs_from_rg(graph)
    pre_masks = compiled.pre_masks
    post_masks = compiled.post_masks
    not_pre = compiled._not_pre
    confirmed: set[tuple[int, int]] = set()
    for marking, enabled in zip(graph._packed, graph._packed_enabled):
        if enabled & (enabled - 1) == 0:
            continue  # fewer than two enabled transitions
        transitions = []
        pending = enabled
        while pending:
            low = pending & -pending
            pending ^= low
            transitions.append(low.bit_length() - 1)
        for i, first in enumerate(transitions):
            after_first = (marking & not_pre[first]) | post_masks[first]
            for second in transitions[i + 1:]:
                if (first, second) in confirmed:
                    continue
                pre_second = pre_masks[second]
                if after_first & pre_second != pre_second:
                    continue
                after_second = (marking & not_pre[second]) | post_masks[second]
                pre_first = pre_masks[first]
                if after_second & pre_first == pre_first:
                    confirmed.add((first, second))
    names = compiled.transition_names
    return {frozenset((names[a], names[b])) for a, b in confirmed}


def marking_sets_of_places(graph: ReachabilityGraph, places: Iterable[str]) -> dict[str, set[Marking]]:
    """For every place, the set of reachable markings in which it is marked.

    This is the exact *marked region* MR(p) (Definition 6) computed from the
    reachability graph — the oracle for the structural cover-cube tests.
    """
    compiled = graph._compiled
    if compiled is None or graph._packed is None or graph._marking_list is None:
        return _reference_marking_sets_of_places(graph, places)
    result: dict[str, set[Marking]] = {place: set() for place in places}
    packed = graph._packed
    marking_list = graph._marking_list
    for place, bucket in result.items():
        index = compiled.place_index.get(place)
        if index is None:
            continue
        bit = 1 << index
        for bits, marking in zip(packed, marking_list):
            if bits & bit:
                bucket.add(marking)
    return result


# ---------------------------------------------------------------------- #
# Dict-based reference implementations
#
# These are the original Marking-object paths.  They serve two purposes:
# the automatic fallback for nets the kernel cannot pack (non-safe nets,
# markings on unknown places), and the oracle side of the differential
# tests that pin the compiled kernel to the reference semantics.
# ---------------------------------------------------------------------- #


def _reference_build_reachability_graph(
    net: PetriNet,
    start: Marking,
    max_markings: Optional[int] = None,
) -> ReachabilityGraph:
    """Reference BFS over :class:`Marking` objects (multiset semantics)."""
    graph = ReachabilityGraph(net, start)
    graph._add_marking(start)
    frontier: deque[Marking] = deque([start])
    seen: set[Marking] = {start}
    while frontier:
        current = frontier.popleft()
        for transition in net.enabled_transitions(current):
            target = net.fire(transition, current)
            if target not in seen:
                if max_markings is not None and len(seen) >= max_markings:
                    raise StateSpaceLimitExceeded(
                        f"more than {max_markings} reachable markings"
                    )
                seen.add(target)
                frontier.append(target)
            graph._add_edge(current, transition, target)
    return graph


def _reference_count_reachable_markings(
    net: PetriNet,
    start: Marking,
    max_markings: Optional[int] = None,
) -> int:
    """Reference marking count over :class:`Marking` objects."""
    frontier: deque[Marking] = deque([start])
    seen: set[Marking] = {start}
    while frontier:
        current = frontier.popleft()
        for transition in net.enabled_transitions(current):
            target = net.fire(transition, current)
            if target not in seen:
                if max_markings is not None and len(seen) >= max_markings:
                    raise StateSpaceLimitExceeded(
                        f"more than {max_markings} reachable markings"
                    )
                seen.add(target)
                frontier.append(target)
    return len(seen)


def _reference_concurrent_pairs_from_rg(graph: ReachabilityGraph) -> set[frozenset[str]]:
    """Reference concurrency extraction over :class:`Marking` objects."""
    net = graph.net
    pairs: set[frozenset[str]] = set()
    for marking in graph:
        enabled = sorted(graph.enabled_transitions(marking))
        for i, first in enumerate(enabled):
            after_first = net.fire(first, marking)
            for second in enabled[i + 1:]:
                if not net.is_enabled(second, after_first):
                    continue
                after_second = net.fire(second, marking)
                if net.is_enabled(first, after_second):
                    pairs.add(frozenset((first, second)))
    return pairs


def _reference_marking_sets_of_places(
    graph: ReachabilityGraph, places: Iterable[str]
) -> dict[str, set[Marking]]:
    """Reference marked-region extraction over :class:`Marking` objects."""
    result: dict[str, set[Marking]] = {place: set() for place in places}
    for marking in graph:
        for place in marking.marked_places:
            if place in result:
                result[place].add(marking)
    return result
