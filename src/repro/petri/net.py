"""Place/transition nets.

A :class:`PetriNet` is the four-tuple ``(P, T, F, m0)`` of the paper
(Section II-B): a set of places, a set of transitions, a flow relation and an
initial marking.  Nodes are referenced by name; the net object owns the
structure (presets, postsets) and the token-flow semantics is provided by
:class:`~repro.petri.marking.Marking`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from typing import Optional

from repro.petri.marking import Marking


@dataclass(frozen=True)
class Place:
    """A place of a Petri net."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Transition:
    """A transition of a Petri net."""

    name: str

    def __str__(self) -> str:
        return self.name


class PetriNet:
    """A place/transition net with an initial marking.

    The class is deliberately mutable during construction (places,
    transitions and arcs are added incrementally by parsers and generators)
    and treated as immutable afterwards by the analysis code.
    """

    def __init__(self, name: str = "net"):
        self.name = name
        self._places: dict[str, Place] = {}
        self._transitions: dict[str, Transition] = {}
        # presets / postsets keyed by node name
        self._pre: dict[str, set[str]] = {}
        self._post: dict[str, set[str]] = {}
        self._initial_tokens: dict[str, int] = {}
        # memoised frozenset views of presets/postsets (invalidated on
        # structural mutation) and the structural version counter keyed on by
        # the compiled-kernel cache (repro.petri.compiled.compile_net)
        self._preset_cache: dict[str, frozenset[str]] = {}
        self._postset_cache: dict[str, frozenset[str]] = {}
        self._version = 0

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def add_place(self, name: str, tokens: int = 0) -> Place:
        """Add a place (idempotent) with an optional initial token count."""
        if name in self._transitions:
            raise ValueError(f"node {name!r} already exists as a transition")
        place = self._places.get(name)
        if place is None:
            place = Place(name)
            self._places[name] = place
            self._pre.setdefault(name, set())
            self._post.setdefault(name, set())
            self._version += 1
        if tokens:
            self._initial_tokens[name] = self._initial_tokens.get(name, 0) + tokens
        return place

    def add_transition(self, name: str) -> Transition:
        """Add a transition (idempotent)."""
        if name in self._places:
            raise ValueError(f"node {name!r} already exists as a place")
        transition = self._transitions.get(name)
        if transition is None:
            transition = Transition(name)
            self._transitions[name] = transition
            self._pre.setdefault(name, set())
            self._post.setdefault(name, set())
            self._version += 1
        return transition

    def add_arc(self, source: str, target: str) -> None:
        """Add a flow arc between a place and a transition (either order)."""
        if source not in self._places and source not in self._transitions:
            raise KeyError(f"unknown node {source!r}")
        if target not in self._places and target not in self._transitions:
            raise KeyError(f"unknown node {target!r}")
        source_is_place = source in self._places
        target_is_place = target in self._places
        if source_is_place == target_is_place:
            raise ValueError(
                f"arc {source!r} -> {target!r} must connect a place and a transition"
            )
        self._post[source].add(target)
        self._pre[target].add(source)
        self._postset_cache.pop(source, None)
        self._preset_cache.pop(target, None)
        self._version += 1

    def set_initial_tokens(self, place: str, tokens: int) -> None:
        """Set the number of initial tokens of a place."""
        if place not in self._places:
            raise KeyError(f"unknown place {place!r}")
        if tokens < 0:
            raise ValueError("token count must be non-negative")
        if tokens == 0:
            self._initial_tokens.pop(place, None)
        else:
            self._initial_tokens[place] = tokens

    def remove_arc(self, source: str, target: str) -> None:
        """Remove a flow arc (used by the corpus mutation operators)."""
        if target not in self._post.get(source, ()):
            raise KeyError(f"no arc {source!r} -> {target!r}")
        self._post[source].discard(target)
        self._pre[target].discard(source)
        self._postset_cache.pop(source, None)
        self._preset_cache.pop(target, None)
        self._version += 1

    def remove_place(self, name: str) -> None:
        """Remove a place and all its arcs."""
        if name not in self._places:
            raise KeyError(f"unknown place {name!r}")
        for successor in self._post.pop(name, set()):
            self._pre[successor].discard(name)
        for predecessor in self._pre.pop(name, set()):
            self._post[predecessor].discard(name)
        del self._places[name]
        self._initial_tokens.pop(name, None)
        self._preset_cache.clear()
        self._postset_cache.clear()
        self._version += 1

    def remove_transition(self, name: str) -> None:
        """Remove a transition and all its arcs."""
        if name not in self._transitions:
            raise KeyError(f"unknown transition {name!r}")
        for successor in self._post.pop(name, set()):
            self._pre[successor].discard(name)
        for predecessor in self._pre.pop(name, set()):
            self._post[predecessor].discard(name)
        del self._transitions[name]
        self._preset_cache.clear()
        self._postset_cache.clear()
        self._version += 1

    # ------------------------------------------------------------------ #
    # Structure queries
    # ------------------------------------------------------------------ #

    @property
    def places(self) -> list[str]:
        """Place names in insertion order."""
        return list(self._places)

    @property
    def transitions(self) -> list[str]:
        """Transition names in insertion order."""
        return list(self._transitions)

    @property
    def nodes(self) -> list[str]:
        """All node names (places then transitions)."""
        return list(self._places) + list(self._transitions)

    def is_place(self, name: str) -> bool:
        """True if ``name`` is a place of the net."""
        return name in self._places

    def is_transition(self, name: str) -> bool:
        """True if ``name`` is a transition of the net."""
        return name in self._transitions

    def has_node(self, name: str) -> bool:
        """True if ``name`` is a node of the net."""
        return name in self._places or name in self._transitions

    def preset(self, node: str) -> frozenset[str]:
        """The preset (input nodes) of a node (memoised)."""
        cached = self._preset_cache.get(node)
        if cached is None:
            cached = frozenset(self._pre[node])
            self._preset_cache[node] = cached
        return cached

    def postset(self, node: str) -> frozenset[str]:
        """The postset (output nodes) of a node (memoised)."""
        cached = self._postset_cache.get(node)
        if cached is None:
            cached = frozenset(self._post[node])
            self._postset_cache[node] = cached
        return cached

    def arcs(self) -> Iterator[tuple[str, str]]:
        """Iterate over all flow arcs as (source, target) pairs."""
        for source, targets in self._post.items():
            for target in sorted(targets):
                yield source, target

    @property
    def initial_marking(self) -> Marking:
        """The initial marking of the net."""
        return Marking(self._initial_tokens)

    def num_places(self) -> int:
        """Number of places."""
        return len(self._places)

    def num_transitions(self) -> int:
        """Number of transitions."""
        return len(self._transitions)

    def num_arcs(self) -> int:
        """Number of flow arcs."""
        return sum(len(targets) for targets in self._post.values())

    # ------------------------------------------------------------------ #
    # Token-flow semantics
    # ------------------------------------------------------------------ #

    def is_enabled(self, transition: str, marking: Marking) -> bool:
        """True if every input place of the transition is marked."""
        return all(marking[place] > 0 for place in self._pre[transition])

    def enabled_transitions(self, marking: Marking) -> list[str]:
        """All transitions enabled at ``marking`` (in insertion order)."""
        return [t for t in self._transitions if self.is_enabled(t, marking)]

    def fire(self, transition: str, marking: Marking) -> Marking:
        """Fire a transition, returning the successor marking.

        Raises
        ------
        ValueError
            If the transition is not enabled at ``marking``.
        """
        if not self.is_enabled(transition, marking):
            raise ValueError(f"transition {transition!r} is not enabled")
        tokens = marking.to_dict()
        for place in self._pre[transition]:
            tokens[place] = tokens.get(place, 0) - 1
            if tokens[place] == 0:
                del tokens[place]
        for place in self._post[transition]:
            tokens[place] = tokens.get(place, 0) + 1
        return Marking(tokens)

    def fire_sequence(self, sequence: Iterable[str], marking: Optional[Marking] = None) -> Marking:
        """Fire a sequence of transitions from ``marking`` (default: initial)."""
        current = marking if marking is not None else self.initial_marking
        for transition in sequence:
            current = self.fire(transition, current)
        return current

    def is_feasible(self, sequence: Iterable[str], marking: Optional[Marking] = None) -> bool:
        """True if the transition sequence is firable from ``marking``."""
        current = marking if marking is not None else self.initial_marking
        for transition in sequence:
            if not self.is_enabled(transition, current):
                return False
            current = self.fire(transition, current)
        return True

    # ------------------------------------------------------------------ #
    # Copy / subnet helpers
    # ------------------------------------------------------------------ #

    def copy(self, name: Optional[str] = None) -> "PetriNet":
        """A deep copy of the net."""
        clone = PetriNet(name or self.name)
        for place, count in ((p, self._initial_tokens.get(p, 0)) for p in self._places):
            clone.add_place(place, count)
        for transition in self._transitions:
            clone.add_transition(transition)
        for source, target in self.arcs():
            clone.add_arc(source, target)
        return clone

    def subnet(self, nodes: Iterable[str], name: str = "subnet") -> "PetriNet":
        """Subnet induced by a set of nodes (arcs restricted to the set)."""
        selected = set(nodes)
        clone = PetriNet(name)
        for place in self._places:
            if place in selected:
                clone.add_place(place, self._initial_tokens.get(place, 0))
        for transition in self._transitions:
            if transition in selected:
                clone.add_transition(transition)
        for source, target in self.arcs():
            if source in selected and target in selected:
                clone.add_arc(source, target)
        return clone

    def __repr__(self) -> str:
        return (
            f"PetriNet({self.name!r}, |P|={self.num_places()}, "
            f"|T|={self.num_transitions()}, |F|={self.num_arcs()})"
        )


@dataclass
class NetStatistics:
    """Summary statistics of a net, used by the experiment reports."""

    places: int
    transitions: int
    arcs: int
    name: str = ""
    markings: Optional[int] = None
    extra: dict = field(default_factory=dict)

    @classmethod
    def of(cls, net: PetriNet) -> "NetStatistics":
        """Collect the statistics of a net."""
        return cls(
            places=net.num_places(),
            transitions=net.num_transitions(),
            arcs=net.num_arcs(),
            name=net.name,
        )
