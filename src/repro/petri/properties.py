"""Structural and behavioural property checks for Petri nets.

The synthesis framework assumes live, safe, irredundant free-choice nets
(Section II-B).  Free choice, marked graph and state machine are purely
structural checks.  Liveness and safeness are decided on the reachability
graph (an optional marking bound protects against state explosion); for the
net classes used in the paper this matches the polynomial structural
characterizations, and the RG-based checks double as oracles in the tests.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx

from repro.petri.net import PetriNet
from repro.petri.reachability import ReachabilityGraph, build_reachability_graph


# ---------------------------------------------------------------------- #
# Structural net classes
# ---------------------------------------------------------------------- #


def is_state_machine(net: PetriNet) -> bool:
    """True if every transition has exactly one input and one output place."""
    for transition in net.transitions:
        if len(net.preset(transition)) != 1 or len(net.postset(transition)) != 1:
            return False
    return True


def is_marked_graph(net: PetriNet) -> bool:
    """True if every place has exactly one input and one output transition."""
    for place in net.places:
        if len(net.preset(place)) != 1 or len(net.postset(place)) != 1:
            return False
    return True


def is_free_choice(net: PetriNet) -> bool:
    """Free-choice condition of the paper.

    Every arc from a place is either the unique outgoing arc of the place or
    the unique incoming arc of its target transition.  Equivalently, if a
    place has more than one output transition, each of those transitions has
    that place as its only input place.
    """
    for place in net.places:
        successors = net.postset(place)
        if len(successors) <= 1:
            continue
        for transition in successors:
            if len(net.preset(transition)) != 1:
                return False
    return True


def is_extended_free_choice(net: PetriNet) -> bool:
    """Extended free-choice: conflicting transitions share all input places."""
    for place in net.places:
        successors = net.postset(place)
        if len(successors) <= 1:
            continue
        presets = [net.preset(t) for t in successors]
        first = presets[0]
        if any(preset != first for preset in presets[1:]):
            return False
    return True


def choice_places(net: PetriNet) -> list[str]:
    """Places with more than one output transition (choice places)."""
    return [p for p in net.places if len(net.postset(p)) > 1]


def is_connected(net: PetriNet) -> bool:
    """True if the underlying undirected flow graph is connected."""
    graph = nx.Graph()
    graph.add_nodes_from(net.nodes)
    graph.add_edges_from(net.arcs())
    if graph.number_of_nodes() == 0:
        return False
    return nx.is_connected(graph)


def is_strongly_connected(net: PetriNet) -> bool:
    """True if the directed flow graph is strongly connected."""
    graph = nx.DiGraph()
    graph.add_nodes_from(net.nodes)
    graph.add_edges_from(net.arcs())
    if graph.number_of_nodes() == 0:
        return False
    return nx.is_strongly_connected(graph)


# ---------------------------------------------------------------------- #
# Behavioural properties (reachability-graph based)
# ---------------------------------------------------------------------- #


def is_safe(
    net: PetriNet,
    graph: Optional[ReachabilityGraph] = None,
    max_markings: Optional[int] = None,
) -> bool:
    """True if no reachable marking assigns more than one token to a place."""
    if graph is None:
        graph = build_reachability_graph(net, max_markings=max_markings)
    return all(marking.is_safe() for marking in graph)


def is_live(
    net: PetriNet,
    graph: Optional[ReachabilityGraph] = None,
    max_markings: Optional[int] = None,
) -> bool:
    """True if every transition stays potentially firable from every marking.

    For a bounded net, liveness holds iff every bottom strongly connected
    component of the reachability graph contains an edge for every transition.
    """
    if graph is None:
        graph = build_reachability_graph(net, max_markings=max_markings)
    digraph = nx.DiGraph()
    digraph.add_nodes_from(graph.markings)
    for source, transition, target in graph.edges():
        digraph.add_edge(source, target, transition=transition)
    all_transitions = set(net.transitions)
    condensation = nx.condensation(digraph)
    for component_id in condensation.nodes:
        if condensation.out_degree(component_id) != 0:
            continue
        members = condensation.nodes[component_id]["members"]
        fired: set[str] = set()
        for marking in members:
            for label, target in graph.successors(marking):
                if target in members:
                    fired.add(label)
        if fired != all_transitions:
            return False
    return True


def is_reversible(
    net: PetriNet,
    graph: Optional[ReachabilityGraph] = None,
) -> bool:
    """True if the initial marking is reachable from every reachable marking."""
    if graph is None:
        graph = build_reachability_graph(net)
    return graph.is_strongly_connected()


def redundant_places(
    net: PetriNet,
    graph: Optional[ReachabilityGraph] = None,
) -> list[str]:
    """Places whose removal preserves the set of feasible firing sequences.

    A place is redundant when it never constrains the enabling of its output
    transitions: whenever all *other* input places of each output transition
    are marked, the place is marked too.  This behavioural check runs on the
    reachability graph and is exact for bounded nets.
    """
    if graph is None:
        graph = build_reachability_graph(net)
    redundant: list[str] = []
    for place in net.places:
        successors = net.postset(place)
        if not successors:
            # A place with no output transitions never restricts behaviour.
            redundant.append(place)
            continue
        constrains = False
        for marking in graph:
            if marking[place] > 0:
                continue
            for transition in successors:
                others = net.preset(transition) - {place}
                if all(marking[other] > 0 for other in others):
                    constrains = True
                    break
            if constrains:
                break
        if not constrains:
            redundant.append(place)
    return redundant


def validate_synthesis_preconditions(
    net: PetriNet,
    graph: Optional[ReachabilityGraph] = None,
    require_free_choice: bool = True,
) -> list[str]:
    """Check the preconditions assumed throughout the paper.

    Returns a list of human-readable violation messages (empty if the net is
    a live, safe, irredundant free-choice net).
    """
    problems: list[str] = []
    if require_free_choice and not is_free_choice(net):
        problems.append("net is not free choice")
    if graph is None:
        graph = build_reachability_graph(net)
    if not is_safe(net, graph):
        problems.append("net is not safe")
    if not is_live(net, graph):
        problems.append("net is not live")
    extras = redundant_places(net, graph)
    if extras:
        problems.append(f"net has redundant places: {sorted(extras)}")
    return problems
