"""Petri-net kernel.

Provides the place/transition net substrate underlying signal transition
graphs: net structure and markings, token-flow semantics, reachability-graph
generation, structural property checks (free choice, state machine, marked
graph, liveness, safeness, redundant places), place invariants, and the
decomposition into strongly connected one-token state-machine components
(SM-cover) that the structural synthesis method relies on.
"""

from repro.petri.net import PetriNet, Place, Transition
from repro.petri.marking import Marking
from repro.petri.reachability import ReachabilityGraph, build_reachability_graph
from repro.petri.properties import (
    is_free_choice,
    is_marked_graph,
    is_state_machine,
    is_safe,
    is_live,
    redundant_places,
)
from repro.petri.invariants import place_invariants, minimal_place_invariants
from repro.petri.smcover import StateMachineComponent, compute_sm_components, compute_sm_cover

__all__ = [
    "PetriNet",
    "Place",
    "Transition",
    "Marking",
    "ReachabilityGraph",
    "build_reachability_graph",
    "is_free_choice",
    "is_marked_graph",
    "is_state_machine",
    "is_safe",
    "is_live",
    "redundant_places",
    "place_invariants",
    "minimal_place_invariants",
    "StateMachineComponent",
    "compute_sm_components",
    "compute_sm_cover",
]
